"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.des import (
    Environment,
    Interrupt,
    SimulationError,
)


class TestEnvironmentBasics:
    def test_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(5.0).now == 5.0

    def test_timeout_advances_clock(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.timeout(2.0)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [2.0]

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_run_until_time(self):
        env = Environment()
        log = []

        def proc(env):
            while True:
                yield env.timeout(1.0)
                log.append(env.now)

        env.process(proc(env))
        env.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_run_until_past_raises(self):
        env = Environment(10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            return "done"

        process = env.process(proc(env))
        assert env.run(until=process) == "done"

    def test_step_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(3.0)
        assert env.peek() == 3.0


class TestEventOrdering:
    def test_same_time_fifo(self):
        env = Environment()
        order = []

        def proc(env, name):
            yield env.timeout(1.0)
            order.append(name)

        for name in ("a", "b", "c"):
            env.process(proc(env, name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_chronological_order(self):
        env = Environment()
        order = []

        def proc(env, delay, name):
            yield env.timeout(delay)
            order.append(name)

        env.process(proc(env, 3.0, "late"))
        env.process(proc(env, 1.0, "early"))
        env.run()
        assert order == ["early", "late"]


class TestEvents:
    def test_succeed_delivers_value(self):
        env = Environment()
        event = env.event()
        results = []

        def waiter(env, event):
            value = yield event
            results.append(value)

        env.process(waiter(env, event))
        event.succeed(99)
        env.run()
        assert results == [99]

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_propagates_into_process(self):
        env = Environment()
        event = env.event()
        caught = []

        def waiter(env, event):
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(waiter(env, event))
        event.fail(RuntimeError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_unhandled_failure_raises_from_run(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError):
            env.run()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value


class TestProcesses:
    def test_process_waits_for_process(self):
        env = Environment()
        log = []

        def child(env):
            yield env.timeout(2.0)
            return 7

        def parent(env):
            value = yield env.process(child(env))
            log.append((env.now, value))

        env.process(parent(env))
        env.run()
        assert log == [(2.0, 7)]

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def bad(env):
            yield 42

        process = env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()
        assert process.triggered and not process.ok

    def test_interrupt(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [(1.0, "wake up")]

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(0.5)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_exception_in_process_propagates(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("inside process")

        env.process(failing(env))
        with pytest.raises(ValueError):
            env.run()

    def test_waiting_on_already_processed_event(self):
        env = Environment()
        results = []

        def first(env, event):
            yield env.timeout(1.0)
            event.succeed("early")

        def second(env, event):
            yield env.timeout(5.0)
            value = yield event  # event already processed by now
            results.append((env.now, value))

        event = env.event()
        env.process(first(env, event))
        env.process(second(env, event))
        env.run()
        assert results == [(5.0, "early")]


class TestConditions:
    def test_all_of(self):
        env = Environment()
        results = []

        def waiter(env):
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(2.0, value="b")
            values = yield env.all_of([t1, t2])
            results.append((env.now, sorted(values.values())))

        env.process(waiter(env))
        env.run()
        assert results == [(2.0, ["a", "b"])]

    def test_any_of(self):
        env = Environment()
        results = []

        def waiter(env):
            t1 = env.timeout(1.0, value="fast")
            t2 = env.timeout(5.0, value="slow")
            values = yield env.any_of([t1, t2])
            results.append((env.now, list(values.values())))

        env.process(waiter(env))
        env.run()
        assert results == [(1.0, ["fast"])]

    def test_all_of_empty(self):
        env = Environment()
        condition = env.all_of([])
        env.run()
        assert condition.triggered and condition.ok


class TestBucketedEventQueue:
    """Ordering guarantees of the bucketed (equal-key batched) event queue."""

    def test_equal_time_storm_fifo_order(self):
        env = Environment()
        order = []
        for i in range(1000):
            timeout = env.timeout(1.0)
            timeout.callbacks.append(lambda e, i=i: order.append(i))
        env.run()
        assert order == list(range(1000))

    def test_urgent_event_preempts_equal_time_batch(self):
        """An urgent same-time event fires before the rest of the batch."""
        from repro.des.core import URGENT

        env = Environment()
        order = []

        def spawn_urgent(_event):
            order.append("a")
            urgent = env.event()
            urgent._ok = True
            urgent.callbacks.append(lambda e: order.append("urgent"))
            env.schedule(urgent, priority=URGENT)

        first = env.timeout(1.0)
        first.callbacks.append(spawn_urgent)
        second = env.timeout(1.0)
        second.callbacks.append(lambda e: order.append("b"))
        env.run()
        assert order == ["a", "urgent", "b"]

    def test_same_key_schedule_during_batch_appends_fifo(self):
        """A same-(time, priority) event scheduled mid-batch fires last."""
        env = Environment()
        order = []

        def spawn_same_key(_event):
            order.append("a")
            late = env.event()
            late._ok = True
            late.callbacks.append(lambda e: order.append("late"))
            env.schedule(late)  # NORMAL priority at the current time

        first = env.timeout(1.0)
        first.callbacks.append(spawn_same_key)
        second = env.timeout(1.0)
        second.callbacks.append(lambda e: order.append("b"))
        env.run()
        assert order == ["a", "b", "late"]

    def test_run_until_event_mid_batch_then_resume(self):
        """Stopping on an event inside a batch resumes without losing events."""
        env = Environment()
        order = []
        timeouts = []
        for i in range(5):
            timeout = env.timeout(1.0)
            timeout.callbacks.append(lambda e, i=i: order.append(i))
            timeouts.append(timeout)
        env.run(until=timeouts[2])
        assert order == [0, 1, 2]
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_step_through_equal_time_storm(self):
        env = Environment()
        order = []
        for i in range(20):
            timeout = env.timeout(1.0)
            timeout.callbacks.append(lambda e, i=i: order.append(i))
        while True:
            try:
                env.step()
            except SimulationError:
                break
        assert order == list(range(20))
        assert env.peek() == float("inf")

    def test_process_storm_waking_at_same_instant(self):
        env = Environment()
        done = []

        def sleeper(env, tag):
            yield env.timeout(2.0)
            done.append(tag)

        for i in range(200):
            env.process(sleeper(env, i))
        env.run()
        assert done == list(range(200))
        assert env.now == 2.0
