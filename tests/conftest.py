"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.geometry.hexgrid import HexagonalCellLayout


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> SystemConfig:
    """A small, fast system configuration."""
    return SystemConfig.small_test_system()


@pytest.fixture
def seven_cell_layout() -> HexagonalCellLayout:
    """The 7-cell (one ring) hexagonal layout used in most tests."""
    return HexagonalCellLayout(num_rings=1, cell_radius_m=1000.0, wraparound=True)
