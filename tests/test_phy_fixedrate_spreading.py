"""Tests for the fixed-rate PHY baseline and the spreading-stage relations."""

import pytest

from repro.phy.fixedrate import FixedRatePhy
from repro.phy.modes import ModeTable, TransmissionMode
from repro.phy.spreading import (
    SpreadingConfig,
    processing_gain,
    relative_symbol_energy_ratio,
    sch_bit_rate,
    sch_power_ratio,
    sch_relative_bit_rate,
)
from repro.phy.vtaoc import VtaocCodec


class TestFixedRatePhy:
    def test_threshold_consistency(self):
        mode = TransmissionMode(index=3, bits_per_symbol=3.0)
        phy = FixedRatePhy(mode, target_ber=1e-3)
        assert phy.ber(phy.threshold) == pytest.approx(1e-3, rel=1e-9)

    def test_instantaneous_throughput_outage(self):
        mode = TransmissionMode(index=2, bits_per_symbol=2.0)
        phy = FixedRatePhy(mode)
        assert phy.instantaneous_throughput(phy.threshold * 0.5) == 0.0
        assert phy.instantaneous_throughput(phy.threshold * 2.0) == 2.0

    def test_average_throughput_below_nominal(self):
        mode = TransmissionMode(index=4, bits_per_symbol=4.0)
        phy = FixedRatePhy(mode)
        assert 0.0 < phy.average_throughput(phy.threshold) < phy.nominal_throughput

    def test_outage_probability_limits(self):
        mode = TransmissionMode(index=1, bits_per_symbol=1.0)
        phy = FixedRatePhy(mode)
        assert phy.outage_probability(0.0) == 1.0
        assert phy.outage_probability(1e9) < 1e-6

    def test_design_for_mean_csi_picks_best(self):
        table = ModeTable.default()
        mean_csi = 10 ** 1.2
        best = FixedRatePhy.design_for_mean_csi(mean_csi, table)
        best_value = best.average_throughput(mean_csi)
        for mode in table:
            other = FixedRatePhy(mode)
            assert best_value >= other.average_throughput(mean_csi) - 1e-12

    def test_adaptive_beats_fixed_rate(self):
        """The headline claim of the adaptive PHY (experiment F1)."""
        codec = VtaocCodec()
        table = ModeTable.default()
        for mean_db in (5.0, 10.0, 15.0, 20.0):
            mean = 10 ** (mean_db / 10)
            fixed = FixedRatePhy.design_for_mean_csi(mean, table)
            assert codec.average_throughput(mean) >= fixed.average_throughput(mean) - 1e-9

    def test_invalid_target(self):
        mode = TransmissionMode(index=1, bits_per_symbol=1.0)
        with pytest.raises(ValueError):
            FixedRatePhy(mode, target_ber=0.4)


class TestSpreadingRelations:
    def test_processing_gain(self):
        assert processing_gain(1.25e6, 9600.0) == pytest.approx(130.2, rel=1e-3)

    def test_sch_relative_bit_rate(self):
        assert sch_relative_bit_rate(4, 2.5) == pytest.approx(10.0)
        assert sch_relative_bit_rate(0, 2.5) == 0.0

    def test_sch_bit_rate(self):
        assert sch_bit_rate(8, 2.0, 9600.0) == pytest.approx(153_600.0)

    def test_sch_power_ratio(self):
        assert sch_power_ratio(8, 1.5) == pytest.approx(12.0)
        assert sch_power_ratio(0, 1.5) == 0.0

    def test_negative_m_rejected(self):
        with pytest.raises(ValueError):
            sch_relative_bit_rate(-1, 1.0)
        with pytest.raises(ValueError):
            sch_power_ratio(-1, 1.0)

    def test_relative_symbol_energy_ratio(self):
        assert relative_symbol_energy_ratio(2.0, 4.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            relative_symbol_energy_ratio(0.0, 1.0)


class TestSpreadingConfig:
    def test_defaults(self):
        config = SpreadingConfig()
        assert config.fch_processing_gain == pytest.approx(
            config.bandwidth_hz / config.fch_bit_rate_bps
        )

    def test_sch_rates(self):
        config = SpreadingConfig(fch_bit_rate_bps=9600.0, max_spreading_gain_ratio=16)
        assert config.sch_bit_rate(16, 2.0) == pytest.approx(307_200.0)
        assert config.max_sch_bit_rate(2.0) == pytest.approx(307_200.0)
        assert config.sch_power_ratio(4) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpreadingConfig(fch_bit_rate_bps=0.0)
        with pytest.raises(ValueError):
            SpreadingConfig(max_spreading_gain_ratio=0)
