"""Smoke and shape tests of the experiment harness (reduced sizes)."""

import numpy as np
import pytest

from repro.experiments import (
    default_scheduler_factories,
    default_scheduler_specs,
    paper_scenario,
    paper_traffic,
    run_admission_statistics,
    run_capacity,
    run_coverage,
    run_delay_vs_load,
    run_handoff_ablation,
    run_objectives_tradeoff,
    run_phy_throughput,
    run_solver_ablation,
)
from repro.experiments.common import ExperimentResult


class TestCommon:
    def test_experiment_result_helpers(self):
        result = ExperimentResult("X1", "demo")
        result.add(a=1, b=2.0)
        result.add(a=3, b=4.0)
        assert result.column("a") == [1, 3]
        assert result.filtered(a=3)[0]["b"] == 4.0
        table = result.to_table()
        assert "X1" in table and "demo" in table

    def test_default_specs(self):
        specs = default_scheduler_specs(include_greedy=True)
        assert set(specs) >= {"JABA-SD(J1)", "JABA-SD(J2)", "FCFS", "EqualShare"}

    def test_default_factories_shim(self):
        # Deprecated path: still functional, forwards to the registry.
        with pytest.warns(DeprecationWarning, match="default_scheduler_factories"):
            factories = default_scheduler_factories(include_greedy=True)
        assert set(factories) == set(default_scheduler_specs(include_greedy=True))
        for factory in factories.values():
            scheduler = factory()
            assert hasattr(scheduler, "assign")

    def test_paper_scenario_and_traffic(self):
        scenario = paper_scenario(num_data_users_per_cell=10)
        assert scenario.num_data_users_per_cell == 10
        assert scenario.traffic == paper_traffic()


class TestPhyThroughputExperiment:
    def test_shape(self):
        result = run_phy_throughput(mean_csi_db=[0.0, 10.0, 20.0],
                                    monte_carlo_samples=20_000)
        assert len(result.records) == 3
        adaptive = np.asarray(result.column("adaptive_bps_per_symbol"))
        fixed = np.asarray(result.column("fixed_bps_per_symbol"))
        assert np.all(adaptive >= fixed - 1e-9)
        assert np.all(np.diff(adaptive) > 0)
        for record in result.records:
            assert record["adaptive_mc"] == pytest.approx(
                record["adaptive_bps_per_symbol"], rel=0.05
            )


class TestSnapshotExperiments:
    def test_coverage_experiment(self):
        result = run_coverage(loads=[4], num_drops=2, scheduler_factories={
            "JABA-SD(J1)": "JABA-SD(J1)",
            "FCFS": "FCFS",
        })
        assert len(result.records) == 2
        for record in result.records:
            assert 0.0 <= record["coverage"] <= 1.0

    def test_coverage_with_radius_sweep(self):
        factories = {"JABA-SD(J1)": "JABA-SD(J1)"}
        result = run_coverage(loads=[4], cell_radii_m=[600.0], num_drops=2,
                              scheduler_factories=factories)
        radii = set(result.column("cell_radius_m"))
        assert 600.0 in radii

    def test_handoff_ablation(self):
        result = run_handoff_ablation(reduced_set_sizes=[1, 2], num_drops=2)
        assert len(result.records) == 4  # 2 sizes x 2 links
        links = set(result.column("link"))
        assert links == {"forward", "reverse"}

    def test_solver_ablation(self):
        result = run_solver_ablation(request_counts=[3], instances_per_count=2)
        record = result.records[0]
        assert record["near_optimal_quality"] <= 1.0 + 1e-9
        assert record["greedy_quality"] <= 1.0 + 1e-9
        assert record["optimal_ms"] > 0.0


@pytest.fixture(scope="module")
def tiny_scenario():
    return paper_scenario(duration_s=2.0, warmup_s=0.5, seed=3)


class TestDynamicExperiments:
    def test_delay_vs_load(self, tiny_scenario):
        factories = {
            "JABA-SD(J1)": "JABA-SD(J1)",
            "FCFS": "FCFS",
        }
        result = run_delay_vs_load(loads=[3], scenario=tiny_scenario,
                                   scheduler_factories=factories)
        assert len(result.records) == 2
        for record in result.records:
            assert record["completed_calls"] > 0
            assert record["carried_kbps"] > 0.0

    def test_admission_statistics(self, tiny_scenario):
        factories = {"JABA-SD(J1)": "JABA-SD(J1)"}
        result = run_admission_statistics(load=3, scenario=tiny_scenario,
                                          scheduler_factories=factories)
        assert result.records[0]["mean_granted_m"] >= 1.0

    def test_capacity(self, tiny_scenario):
        factories = {"JABA-SD(J1)": "JABA-SD(J1)"}
        result = run_capacity(delay_target_s=5.0, loads=[3], scenario=tiny_scenario,
                              scheduler_factories=factories)
        assert result.records[0]["capacity_users_per_cell"] == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            run_capacity(delay_target_s=0.0)

    def test_objectives_tradeoff(self, tiny_scenario):
        result = run_objectives_tradeoff(penalty_scales=[0.0, 1.0], load=3,
                                         scenario=tiny_scenario)
        assert [r["objective"] for r in result.records] == ["J1", "J2"]
        for record in result.records:
            assert record["carried_kbps"] > 0.0
