"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import (
    Histogram,
    RunningStats,
    SummaryStatistics,
    TimeWeightedStats,
    chi_square_uniformity_test,
    confidence_interval,
    ks_uniformity_test,
    max_pairwise_correlation,
    pearson_independence_test,
    stream_collision_fraction,
)


class TestRunningStats:
    def test_empty_is_nan(self):
        rs = RunningStats()
        assert math.isnan(rs.mean)
        assert math.isnan(rs.std)
        assert rs.count == 0

    def test_single_value(self):
        rs = RunningStats()
        rs.add(4.0)
        assert rs.mean == 4.0
        assert rs.min == 4.0
        assert rs.max == 4.0
        assert math.isnan(rs.variance)

    def test_known_values(self):
        rs = RunningStats()
        rs.add_many([1.0, 2.0, 3.0, 4.0])
        assert rs.mean == pytest.approx(2.5)
        assert rs.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert rs.total == pytest.approx(10.0)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=60
        )
    )
    def test_matches_numpy(self, values):
        rs = RunningStats()
        rs.add_many(values)
        assert rs.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)
        assert rs.variance == pytest.approx(
            float(np.var(values, ddof=1)), rel=1e-7, abs=1e-4
        )
        assert rs.min == min(values)
        assert rs.max == max(values)

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30),
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30),
    )
    def test_merge_equals_pooled(self, left, right):
        a = RunningStats()
        a.add_many(left)
        b = RunningStats()
        b.add_many(right)
        merged = a.merge(b)
        pooled = RunningStats()
        pooled.add_many(left + right)
        assert merged.count == pooled.count
        assert merged.mean == pytest.approx(pooled.mean, rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(pooled.variance, rel=1e-6, abs=1e-6)

    def test_merge_with_empty(self):
        a = RunningStats()
        a.add_many([1.0, 2.0])
        empty = RunningStats()
        assert a.merge(empty).mean == pytest.approx(1.5)
        assert empty.merge(a).mean == pytest.approx(1.5)


class TestTimeWeightedStats:
    def test_piecewise_constant_mean(self):
        tw = TimeWeightedStats()
        tw.record(0.0, 1.0)
        tw.record(1.0, 3.0)
        assert tw.mean(until=2.0) == pytest.approx(2.0)

    def test_rejects_decreasing_time(self):
        tw = TimeWeightedStats()
        tw.record(1.0, 1.0)
        with pytest.raises(ValueError):
            tw.record(0.5, 2.0)

    def test_empty_mean_is_nan(self):
        assert math.isnan(TimeWeightedStats().mean())

    def test_max_and_current(self):
        tw = TimeWeightedStats()
        tw.record(0.0, 5.0)
        tw.record(2.0, 1.0)
        assert tw.max == 5.0
        assert tw.current == 1.0


class TestHistogram:
    def test_counts_and_mean(self):
        h = Histogram(upper=10.0, bins=10)
        h.add_many([0.5, 1.5, 2.5, 9.5])
        assert h.count == 4
        assert h.mean == pytest.approx(3.5)

    def test_overflow_bin(self):
        h = Histogram(upper=1.0, bins=4)
        h.add(5.0)
        edges, counts = h.as_arrays()
        assert counts[-1] == 1
        assert h.max == 5.0

    def test_percentile_monotone(self):
        h = Histogram(upper=100.0, bins=100)
        h.add_many(np.linspace(0, 99, 200))
        p50 = h.percentile(50)
        p90 = h.percentile(90)
        assert p50 <= p90
        assert p50 == pytest.approx(50, abs=2)
        assert p90 == pytest.approx(90, abs=2)

    def test_percentile_never_underestimates(self):
        values = [1.0, 2.0, 3.0, 50.0]
        h = Histogram(upper=60.0, bins=30)
        h.add_many(values)
        assert h.percentile(100) >= max(values) - 1e-9

    def test_rejects_negative(self):
        h = Histogram(upper=1.0)
        with pytest.raises(ValueError):
            h.add(-0.1)

    def test_empty_percentile_nan(self):
        assert math.isnan(Histogram(upper=1.0).percentile(50))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram(upper=0.0)
        with pytest.raises(ValueError):
            Histogram(upper=1.0, bins=0)


class TestConfidenceInterval:
    def test_empty(self):
        mean, half = confidence_interval([])
        assert math.isnan(mean) and math.isnan(half)

    def test_single_sample(self):
        # One sample carries no dispersion information: an honest "unknown"
        # half-width, not a spuriously certain 0.0.
        mean, half = confidence_interval([3.0])
        assert mean == 3.0 and math.isnan(half)

    def test_interval_contains_mean_of_tight_samples(self):
        mean, half = confidence_interval([1.0, 1.1, 0.9, 1.05, 0.95])
        assert mean == pytest.approx(1.0)
        assert 0.0 < half < 0.2

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.5)


class TestSummaryStatistics:
    def test_from_running(self):
        rs = RunningStats()
        rs.add_many([1.0, 3.0])
        summary = SummaryStatistics.from_running(rs)
        assert summary.count == 2
        assert summary.mean == pytest.approx(2.0)
        assert summary.min == 1.0
        assert summary.max == 3.0


class TestHypothesisTestBattery:
    """Input validation of the seed-independence battery.

    The statistical behaviour (accepting independent uniform streams,
    rejecting skewed / correlated / colliding ones) is exercised end-to-end
    in ``tests/test_campaign.py`` on real seed-tree streams.
    """

    def test_uniform_sample_accepted(self):
        draws = np.random.default_rng(1).random(4000)
        ks = ks_uniformity_test(draws)
        assert ks.name == "ks-uniform"
        assert not ks.rejects(alpha=1e-4)
        assert not chi_square_uniformity_test(draws).rejects(alpha=1e-4)

    def test_ks_needs_two_samples(self):
        with pytest.raises(ValueError):
            ks_uniformity_test([0.5])

    def test_pearson_validates_shapes(self):
        with pytest.raises(ValueError):
            pearson_independence_test([0.1, 0.2], [0.1, 0.2, 0.3])
        with pytest.raises(ValueError):
            pearson_independence_test([0.1, 0.2], [0.3, 0.4])

    def test_chi_square_validates_input(self):
        with pytest.raises(ValueError):
            chi_square_uniformity_test(np.random.default_rng(0).random(10), bins=16)
        with pytest.raises(ValueError):
            chi_square_uniformity_test(np.full(200, 1.5), bins=2)
        with pytest.raises(ValueError):
            chi_square_uniformity_test(np.random.default_rng(0).random(200), bins=1)

    def test_pairwise_helpers_validate_shapes(self):
        with pytest.raises(ValueError):
            max_pairwise_correlation(np.zeros((1, 10)))
        with pytest.raises(ValueError):
            stream_collision_fraction(np.zeros(10))

    def test_collision_fraction_counts_duplicate_prefixes(self):
        rng = np.random.default_rng(3)
        distinct = rng.random((5, 32))
        assert stream_collision_fraction(distinct) == 0.0
        all_same = np.tile(rng.random(32), (4, 1))
        assert stream_collision_fraction(all_same) == 1.0
