"""Variance reduction: paired CRN deltas, antithetic streams, sequential stopping."""

import math
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    MetricSummary,
    PointResult,
    is_antithetic,
    replication_seed,
    rng_for_leaf,
    seed_sequence_to_int,
)
from repro.experiments.common import ExperimentResult, flag_degraded
from repro.experiments.compare import compare_schedulers, run_scheduler_comparison
from repro.experiments.executors import PoolExecutor
from repro.experiments.journal import CheckpointJournal
from repro.experiments.swarm import SwarmExecutor
from repro.utils.stats import (
    Histogram,
    confidence_interval,
    paired_confidence_interval,
    unpaired_confidence_interval,
)


# ---------------------------------------------------------------------------
# module-level toy runners (picklable, so pool/swarm executors can ship them)
# ---------------------------------------------------------------------------
def _crn_runner(params, seed):
    """Metric proportional to the shared draws: CRN makes points correlated."""
    rng = np.random.default_rng(seed)
    draws = rng.random(128)
    return {"value": (1.0 + float(params["gain"])) * float(draws.mean())}


def _leaf_runner(params, seed):
    """Monotone response drawn through rng_for_leaf (antithetic-capable)."""
    rng = rng_for_leaf(seed)
    draws = rng.random(128)
    return {"mean_exp": float(np.exp(draws).mean())}


def _nan_on_first_runner(params, seed):
    """Replication 0 of every point produces a non-finite metric."""
    rep = int(seed.spawn_key[1])
    rng = np.random.default_rng(seed)
    value = float(rng.random(16).mean())
    return {"value": math.nan if rep == 0 else value}


def _sequential_toy_campaign(ci_target=1e-9, max_replications=8, **kwargs):
    """Two shared-seed-group points; default target is unreachable -> waves."""
    return Campaign(
        "seqtoy",
        _crn_runner,
        [{"gain": 0.0}, {"gain": 0.3}],
        replications=2,
        root_seed=77,
        seed_groups=[0, 0],
        ci_target=ci_target,
        ci_metric="value",
        max_replications=max_replications,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# stats helpers: paired-t, Welch, percentile(0), n=1 half-width
# ---------------------------------------------------------------------------
class TestPairedConfidenceInterval:
    def test_analytic_case(self):
        # d = [0.5, 1.0, 1.5, 2.0]: mean 1.25, sd 0.645497, t(0.975, 3)
        mean, half = paired_confidence_interval(
            [1.0, 2.0, 3.0, 4.0], [0.5, 1.0, 1.5, 2.0]
        )
        assert mean == pytest.approx(1.25)
        sd = float(np.std([0.5, 1.0, 1.5, 2.0], ddof=1))
        expected = scipy_stats.t.ppf(0.975, 3) * sd / 2.0
        assert half == pytest.approx(expected)
        assert half == pytest.approx(1.02713, abs=1e-5)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_confidence_interval([1.0, 2.0], [1.0])

    def test_identical_samples_are_certainly_zero(self):
        mean, half = paired_confidence_interval([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert mean == 0.0 and half == 0.0

    def test_single_pair_is_nan(self):
        mean, half = paired_confidence_interval([2.0], [1.0])
        assert mean == 1.0 and math.isnan(half)


class TestUnpairedConfidenceInterval:
    def test_matches_scipy_welch(self):
        a, b = [1.0, 2.0, 3.0, 4.0, 5.0], [2.0, 4.0, 6.0]
        mean, half = unpaired_confidence_interval(a, b)
        ci = scipy_stats.ttest_ind(a, b, equal_var=False).confidence_interval(0.95)
        assert mean == pytest.approx(np.mean(a) - np.mean(b))
        assert half == pytest.approx((ci.high - ci.low) / 2.0)

    def test_small_sides_are_nan(self):
        mean, half = unpaired_confidence_interval([1.0], [2.0, 3.0])
        assert mean == pytest.approx(-1.5) and math.isnan(half)
        mean, half = unpaired_confidence_interval([], [])
        assert math.isnan(mean) and math.isnan(half)

    def test_zero_variance_is_zero(self):
        mean, half = unpaired_confidence_interval([2.0, 2.0], [1.0, 1.0])
        assert mean == 1.0 and half == 0.0


class TestHistogramPercentileMin:
    def test_percentile_zero_returns_exact_min(self):
        h = Histogram(upper=10.0, bins=10)
        h.add_many([3.7, 5.2, 9.1])
        # The rank-1 order statistic is tracked exactly — not the upper edge
        # of the first occupied bin (which would report 4.0 here).
        assert h.percentile(0) == 3.7

    def test_single_value_all_percentiles(self):
        h = Histogram(upper=10.0, bins=4)
        h.add(1.3)
        assert h.percentile(0) == 1.3
        assert h.percentile(100) >= 1.3

    def test_min_below_first_bin_edge(self):
        h = Histogram(upper=100.0, bins=2)  # bins of width 50
        h.add_many([0.25, 80.0])
        assert h.percentile(0) == 0.25


class TestSingleSampleEndToEnd:
    def test_metric_summary_n1_half_width_is_nan(self):
        summary = MetricSummary.from_samples([2.0])
        assert summary.count == 1
        assert summary.mean == 2.0
        assert math.isnan(summary.ci_half_width)

    def test_single_replication_campaign_reports_nan_ci(self):
        campaign = Campaign(
            "one", _crn_runner, [{"gain": 0.0}], replications=1, root_seed=5
        )
        summary = campaign.run().points[0].summary()["value"]
        assert summary.count == 1 and math.isnan(summary.ci_half_width)
        # n=1 used to report a spuriously certain 0.0 half-width.
        mean, half = confidence_interval([summary.mean])
        assert math.isnan(half)


# ---------------------------------------------------------------------------
# non-finite samples: counted, surfaced, flagged
# ---------------------------------------------------------------------------
class TestNonFiniteSurfacing:
    def test_from_samples_counts_all_non_finite_kinds(self):
        summary = MetricSummary.from_samples([1.0, math.nan, math.inf, 2.0])
        assert summary.count == 2
        assert summary.non_finite == 2

    def test_flag_degraded_adds_column_and_note(self):
        campaign = Campaign(
            "nan-toy",
            _nan_on_first_runner,
            [{"gain": 0.0}, {"gain": 1.0}],
            replications=3,
            root_seed=11,
        )
        outcome = campaign.run()
        result = ExperimentResult(experiment_id="X", title="toy")
        for point in outcome.points:
            result.add(value=point.summary()["value"].mean)
        flagged = flag_degraded(result, outcome)
        assert [r["n_nonfinite"] for r in flagged.records] == [1, 1]
        assert "non-finite" in flagged.notes
        assert outcome.points[0].non_finite_replications() == [0]

    def test_clean_campaign_stays_unflagged(self):
        campaign = Campaign(
            "clean-toy", _crn_runner, [{"gain": 0.0}], replications=2, root_seed=11
        )
        outcome = campaign.run()
        result = ExperimentResult(experiment_id="X", title="toy")
        result.add(value=1.0)
        flagged = flag_degraded(result, outcome)
        assert "n_nonfinite" not in flagged.records[0]
        assert flagged.notes == ""


# ---------------------------------------------------------------------------
# paired CRN deltas
# ---------------------------------------------------------------------------
class TestComparePoints:
    def _campaign(self):
        return Campaign(
            "crn",
            _crn_runner,
            [{"gain": 0.0}, {"gain": 0.3}],
            replications=8,
            root_seed=9,
            seed_groups=[0, 0],
        )

    def test_paired_strictly_tighter_than_unpaired(self):
        delta = self._campaign().run().compare_points(0, 1)["value"]
        assert delta.count == 8
        assert delta.delta == pytest.approx(delta.mean_a - delta.mean_b)
        assert delta.unpaired_ci_half_width > 0.0
        assert delta.ci_half_width < delta.unpaired_ci_half_width

    def test_different_seed_groups_refused(self):
        campaign = Campaign(
            "crn",
            _crn_runner,
            [{"gain": 0.0}, {"gain": 0.3}],
            replications=2,
            root_seed=9,
            seed_groups=[0, 1],
        )
        with pytest.raises(ValueError, match="seed group"):
            campaign.run().compare_points(0, 1)

    def test_non_finite_pairs_dropped_and_counted(self):
        campaign = Campaign(
            "nan-crn",
            _nan_on_first_runner,
            [{"gain": 0.0}, {"gain": 1.0}],
            replications=4,
            root_seed=13,
            seed_groups=[0, 0],
        )
        delta = campaign.run().compare_points(0, 1)["value"]
        assert delta.count == 3
        assert delta.non_finite == 1


class TestF5PairedAcceptance:
    """The headline acceptance: CRN pairing tightens the F5 J1-vs-J2 delta."""

    def test_paired_tighter_on_objectives_comparison(self):
        from repro.experiments.common import paper_scenario
        from repro.experiments.objectives_tradeoff import build_objectives_campaign

        campaign = build_objectives_campaign(
            penalty_scales=[0.0, 2.0],
            load=12,
            scenario=paper_scenario(duration_s=1.0, warmup_s=0.25),
            num_seeds=4,
        )
        delta = campaign.run(workers=2).compare_points(0, 1)["mean_delay_s"]
        assert delta.count == 4
        assert delta.unpaired_ci_half_width > 0.0
        assert delta.ci_half_width < delta.unpaired_ci_half_width


class TestCompareSchedulers:
    def _fake_result(self):
        rng = np.random.default_rng(5)
        base = {6: rng.random(4), 12: rng.random(4)}
        points = []
        for index, (sched, load) in enumerate(
            [("A", 6), ("B", 6), ("A", 12), ("B", 12)]
        ):
            shift = 0.0 if sched == "A" else 0.1
            points.append(
                PointResult(
                    index=index,
                    params={"scheduler": sched, "load": load},
                    replications={
                        rep: {"mean_delay_s": float(base[load][rep] + shift)}
                        for rep in range(4)
                    },
                    seed_group=0,
                )
            )
        return CampaignResult(
            name="fake",
            root_seed=1,
            replications=4,
            points=points,
            seed_groups=[0, 0, 0, 0],
        )

    def test_rows_per_load_with_both_half_widths(self):
        result = compare_schedulers(self._fake_result(), "A", "B")
        rows = result.filtered(metric="mean_delay_s")
        assert [r["data_users_per_cell"] for r in rows] == [6, 12]
        for row in rows:
            # A constant shift: the paired delta is exactly -0.1 with zero
            # paired variance, while the unpaired interval stays wide.
            assert row["delta"] == pytest.approx(-0.1)
            assert row["paired_ci"] == pytest.approx(0.0, abs=1e-12)
            assert row["unpaired_ci"] > 0.0
            assert row["n_pairs"] == 4

    def test_unknown_label_and_metric_rejected(self):
        with pytest.raises(ValueError, match="not in the campaign grid"):
            compare_schedulers(self._fake_result(), "A", "nope")
        with pytest.raises(ValueError, match="not shared"):
            compare_schedulers(self._fake_result(), "A", "B", metrics=["bogus"])

    def test_run_scheduler_comparison_small_grid(self):
        from repro.experiments.common import paper_scenario

        result = run_scheduler_comparison(
            "JABA-SD(J1)",
            "FCFS",
            loads=[4],
            scenario=paper_scenario(duration_s=1.0, warmup_s=0.25),
            num_seeds=2,
            workers=1,
        )
        rows = result.filtered(metric="mean_delay_s")
        assert len(rows) == 1
        assert rows[0]["n_pairs"] == 2
        assert rows[0]["unpaired_ci"] >= rows[0]["paired_ci"]

    def test_identical_labels_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            run_scheduler_comparison("FCFS", "FCFS")


# ---------------------------------------------------------------------------
# antithetic replication streams
# ---------------------------------------------------------------------------
class TestAntitheticStreams:
    def test_mirror_identities(self):
        primary = np.random.default_rng(replication_seed(7, 0, 2))
        leaf = replication_seed(7, 0, 2, antithetic=True)
        assert is_antithetic(leaf)
        mirror = rng_for_leaf(leaf)
        u, mu = primary.random(32), mirror.random(32)
        np.testing.assert_allclose(u + mu, 1.0)
        z, mz = primary.standard_normal(32), mirror.standard_normal(32)
        np.testing.assert_allclose(z + mz, 0.0)
        x, mx = primary.integers(3, 9, 32), mirror.integers(3, 9, 32)
        assert np.all(x + mx == 3 + 9 - 1)
        e, me = primary.exponential(2.0, 32), mirror.exponential(2.0, 32)
        # Reflection through the exponential CDF: F(x) + F(x') == 1.
        np.testing.assert_allclose(
            (1.0 - np.exp(-e / 2.0)) + (1.0 - np.exp(-me / 2.0)), 1.0
        )

    def test_leaf_cannot_collapse_to_int(self):
        with pytest.raises(ValueError, match="rng_for_leaf"):
            seed_sequence_to_int(replication_seed(7, 0, 0, antithetic=True))

    def test_odd_replications_rejected(self):
        with pytest.raises(ValueError, match="even"):
            Campaign(
                "odd", _leaf_runner, [{}], replications=3, root_seed=1,
                antithetic=True,
            )

    def test_variance_reduction_on_monotone_metric(self):
        plain = Campaign(
            "plain", _leaf_runner, [{}], replications=16, root_seed=42
        ).run()
        paired = Campaign(
            "anti", _leaf_runner, [{}], replications=16, root_seed=42,
            antithetic=True,
        ).run()
        plain_summary = plain.points[0].summary()["mean_exp"]
        paired_summary = paired.points[0].summary()["mean_exp"]
        assert plain_summary.count == 16
        assert paired_summary.count == 8  # the statistical unit is the pair
        assert paired_summary.ci_half_width < plain_summary.ci_half_width

    def test_workers_do_not_change_antithetic_results(self):
        def aggregates(workers):
            campaign = Campaign(
                "anti-par", _leaf_runner, [{}, {}], replications=8,
                root_seed=42, antithetic=True,
            )
            outcome = campaign.run(workers=workers)
            return [sorted(p.replications.items()) for p in outcome.points]

        assert aggregates(1) == aggregates(4)


# ---------------------------------------------------------------------------
# sequential stopping
# ---------------------------------------------------------------------------
class TestSequentialStopping:
    def test_unreachable_target_grows_to_cap(self):
        outcome = _sequential_toy_campaign().run()
        assert outcome.realised_replications == [8, 8]
        assert outcome.waves == 4  # 2 -> 4 -> 6 -> 8, then capped
        assert outcome.ci_target == 1e-9 and outcome.ci_metric == "value"
        assert all(len(p.replications) == 8 for p in outcome.points)

    def test_generous_target_converges_in_first_wave(self):
        outcome = _sequential_toy_campaign(ci_target=10.0).run()
        assert outcome.realised_replications == [2, 2]
        assert outcome.waves == 1

    def test_unknown_ci_metric_names_alternatives(self):
        campaign = _sequential_toy_campaign()
        campaign.ci_metric = "bogus"
        with pytest.raises(ValueError, match="value"):
            campaign.run()

    def test_configure_validation(self):
        with pytest.raises(ValueError, match="positive"):
            _sequential_toy_campaign(ci_target=-1.0)
        with pytest.raises(ValueError, match="ci_metric"):
            Campaign(
                "x", _crn_runner, [{"gain": 0.0}], replications=2, root_seed=1,
                ci_target=0.5,
            )
        with pytest.raises(ValueError, match="max_replications"):
            _sequential_toy_campaign(max_replications=1)

    def test_bit_identical_across_executors(self):
        def run_with(executor, workers):
            outcome = _sequential_toy_campaign().run(
                workers=workers, executor=executor
            )
            return (
                [sorted(p.replications.items()) for p in outcome.points],
                outcome.realised_replications,
                outcome.waves,
            )

        serial = run_with(None, 1)
        pool = run_with(PoolExecutor(workers=4), 4)
        swarm = run_with(SwarmExecutor(workers=2), 2)
        assert serial == pool == swarm
        assert serial[1] == [8, 8]

    def test_fixed_checkpoint_resumes_into_sequential(self, tmp_path):
        # The fingerprint deliberately excludes the stopping rule: a fixed
        # 2-replication checkpoint seeds wave 1 of the sequential run.
        ckpt = str(tmp_path / "ckpt.json")
        fixed = Campaign(
            "seqtoy", _crn_runner, [{"gain": 0.0}, {"gain": 0.3}],
            replications=2, root_seed=77, seed_groups=[0, 0],
        )
        fixed.run(checkpoint_path=ckpt)
        outcome = _sequential_toy_campaign().run(checkpoint_path=ckpt)
        assert outcome.reused_replications == 4
        assert outcome.realised_replications == [8, 8]
        clean = _sequential_toy_campaign().run()
        assert [p.replications for p in outcome.points] == [
            p.replications for p in clean.points
        ]

    def test_wave_notes_land_in_checkpoint(self, tmp_path):
        ckpt = str(tmp_path / "ckpt.json")
        _sequential_toy_campaign().run(checkpoint_path=ckpt)
        import json

        with open(ckpt) as handle:
            notes = json.load(handle)["notes"]
        assert [note["wave"] for note in notes] == [1, 2, 3, 4]
        assert notes[-1]["realised"] == [8, 8]
        assert notes[-1]["converged"] is True


_SEQUENTIAL_KILL_SCRIPT = """
import os, sys
sys.path.insert(0, {src!r})
import numpy as np
from repro.experiments.campaign import Campaign


def runner(params, seed):
    rng = np.random.default_rng(seed)
    draws = rng.random(128)
    return {{"value": (1.0 + float(params["gain"])) * float(draws.mean())}}


def die_after(done, total):
    # SIGKILL stand-in mid-wave-2: no unwind, no compaction — durability is
    # exactly the fsync'd WAL prefix (completed tasks + wave notes).
    if done >= 6:
        os._exit(3)


campaign = Campaign(
    "seqtoy", runner, [{{"gain": 0.0}}, {{"gain": 0.3}}],
    replications=2, root_seed=77, seed_groups=[0, 0],
    ci_target=1e-9, ci_metric="value", max_replications=8,
)
campaign.run(checkpoint_path={ckpt!r}, progress=die_after)
"""


class TestSequentialKillResume:
    def test_mid_wave_kill_resumes_bit_identically(self, tmp_path):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        ckpt = str(tmp_path / "ckpt.json")
        script = tmp_path / "killed_sequential.py"
        script.write_text(
            textwrap.dedent(
                _SEQUENTIAL_KILL_SCRIPT.format(src=os.path.abspath(src), ckpt=ckpt)
            )
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 3, proc.stderr

        clean = _sequential_toy_campaign().run()
        resumed = _sequential_toy_campaign().run(checkpoint_path=ckpt)
        assert resumed.reused_replications == 6
        assert resumed.realised_replications == clean.realised_replications == [8, 8]
        assert [p.replications for p in resumed.points] == [
            p.replications for p in clean.points
        ]


class TestJournalNotes:
    def test_notes_survive_wal_replay_and_compaction(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        journal = CheckpointJournal(path, fingerprint="f" * 16)
        journal.load()
        journal.append("0/0", {"value": 1.0})
        journal.append_note({"wave": 0, "realised": [4]})
        # No close(): only the WAL survives, as after a coordinator kill.
        journal._handle.close()

        replayed = CheckpointJournal(path, fingerprint="f" * 16)
        completed = replayed.load()
        assert completed == {"0/0": {"value": 1.0}}
        assert replayed.notes == [{"wave": 0, "realised": [4]}]
        replayed.close()  # compacts: notes land in the JSON

        compacted = CheckpointJournal(path, fingerprint="f" * 16)
        compacted.load()
        assert compacted.notes == [{"wave": 0, "realised": [4]}]
        compacted.close()
