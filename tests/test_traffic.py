"""Tests for the traffic models."""

import numpy as np
import pytest

from repro.traffic.arrivals import PoissonArrivals, exponential_interarrival
from repro.traffic.data import PacketCall, PacketCallDataSource, TruncatedParetoSize
from repro.traffic.voice import OnOffVoiceSource


class TestOnOffVoiceSource:
    def test_activity_factor_definition(self):
        source = OnOffVoiceSource(mean_talk_s=1.0, mean_silence_s=1.5,
                                  rng=np.random.default_rng(0))
        assert source.activity_factor == pytest.approx(0.4)

    def test_long_run_activity(self):
        rng = np.random.default_rng(1)
        source = OnOffVoiceSource(mean_talk_s=1.0, mean_silence_s=1.5, rng=rng)
        dt = 0.02
        active = sum(source.advance(dt) for _ in range(200_000))
        assert active / 200_000 == pytest.approx(0.4, abs=0.02)

    def test_multiple_transitions_within_step(self):
        rng = np.random.default_rng(2)
        source = OnOffVoiceSource(mean_talk_s=0.01, mean_silence_s=0.01, rng=rng)
        # A huge step spans many transitions and must not raise.
        source.advance(10.0)

    def test_start_state_override(self):
        source = OnOffVoiceSource(rng=np.random.default_rng(0), start_active=True)
        assert source.is_active

    def test_invalid(self):
        with pytest.raises(ValueError):
            OnOffVoiceSource(mean_talk_s=0.0)
        with pytest.raises(ValueError):
            OnOffVoiceSource().advance(-1.0)


class TestTruncatedParetoSize:
    def test_samples_within_bounds(self):
        dist = TruncatedParetoSize(shape=1.8, minimum_bits=1000.0, maximum_bits=50_000.0)
        rng = np.random.default_rng(0)
        samples = dist.sample(rng, size=10_000)
        assert np.all(samples >= 1000.0)
        assert np.all(samples <= 50_000.0)

    def test_mean_matches_monte_carlo(self):
        dist = TruncatedParetoSize(shape=1.8, minimum_bits=20_000.0,
                                   maximum_bits=2_000_000.0)
        rng = np.random.default_rng(1)
        samples = dist.sample(rng, size=400_000)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.03)

    def test_mean_with_unit_shape(self):
        dist = TruncatedParetoSize(shape=1.0, minimum_bits=1000.0, maximum_bits=10_000.0)
        rng = np.random.default_rng(2)
        samples = dist.sample(rng, size=400_000)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.03)

    def test_scalar_sample(self):
        dist = TruncatedParetoSize()
        value = dist.sample(np.random.default_rng(0))
        assert isinstance(value, float)

    def test_invalid(self):
        with pytest.raises(ValueError):
            TruncatedParetoSize(shape=0.0)
        with pytest.raises(ValueError):
            TruncatedParetoSize(minimum_bits=100.0, maximum_bits=50.0)


class TestPacketCallDataSource:
    def test_arrivals_in_order(self):
        source = PacketCallDataSource(mean_reading_time_s=1.0,
                                      rng=np.random.default_rng(0), initial_delay_s=0.0)
        calls = source.pull_arrivals(until_s=20.0)
        times = [c.arrival_time_s for c in calls]
        assert times == sorted(times)
        assert all(isinstance(c, PacketCall) for c in calls)
        assert all(c.size_bits > 0 for c in calls)

    def test_incremental_pulls_do_not_duplicate(self):
        source = PacketCallDataSource(mean_reading_time_s=0.5,
                                      rng=np.random.default_rng(1), initial_delay_s=0.0)
        first = source.pull_arrivals(5.0)
        second = source.pull_arrivals(10.0)
        assert all(c.arrival_time_s <= 5.0 for c in first)
        assert all(5.0 < c.arrival_time_s <= 10.0 for c in second)

    def test_arrival_rate(self):
        source = PacketCallDataSource(mean_reading_time_s=2.0,
                                      rng=np.random.default_rng(2), initial_delay_s=0.0)
        calls = source.pull_arrivals(4000.0)
        assert len(calls) == pytest.approx(2000, rel=0.1)

    def test_offered_load(self):
        source = PacketCallDataSource(mean_reading_time_s=4.0,
                                      rng=np.random.default_rng(3))
        expected = source.size_distribution.mean() / 4.0
        assert source.offered_load_bps() == pytest.approx(expected)

    def test_invalid(self):
        with pytest.raises(ValueError):
            PacketCallDataSource(mean_reading_time_s=0.0)
        with pytest.raises(ValueError):
            PacketCallDataSource(initial_delay_s=-1.0)


class TestPoissonArrivals:
    def test_rate(self):
        process = PoissonArrivals(rate_per_s=5.0, rng=np.random.default_rng(0))
        arrivals = process.pull_arrivals(1000.0)
        assert len(arrivals) == pytest.approx(5000, rel=0.05)

    def test_incremental(self):
        process = PoissonArrivals(rate_per_s=1.0, rng=np.random.default_rng(1))
        first = process.pull_arrivals(10.0)
        second = process.pull_arrivals(20.0)
        assert all(t <= 10.0 for t in first)
        assert all(10.0 < t <= 20.0 for t in second)

    def test_exponential_interarrival_mean(self):
        rng = np.random.default_rng(2)
        samples = [exponential_interarrival(rng, 4.0) for _ in range(50_000)]
        assert np.mean(samples) == pytest.approx(0.25, rel=0.03)

    def test_invalid(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate_per_s=0.0)
        with pytest.raises(ValueError):
            exponential_interarrival(np.random.default_rng(0), -1.0)
