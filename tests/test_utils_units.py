"""Tests for repro.utils.units."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.units import (
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    ratio_db,
    watt_to_dbm,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_about_two(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_of_unity(self):
        assert linear_to_db(1.0) == pytest.approx(0.0)

    def test_linear_to_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-2.0)

    def test_array_round_trip(self):
        values = np.array([0.1, 1.0, 3.7, 250.0])
        assert np.allclose(db_to_linear(linear_to_db(values)), values)

    @given(st.floats(min_value=-120.0, max_value=120.0))
    def test_round_trip_property(self, value_db):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(value_db, abs=1e-9)


class TestDbmWatt:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watt(30.0) == pytest.approx(1.0)

    def test_watt_to_dbm_of_one_watt(self):
        assert watt_to_dbm(1.0) == pytest.approx(30.0)

    def test_watt_to_dbm_rejects_non_positive(self):
        with pytest.raises(ValueError):
            watt_to_dbm(0.0)

    @given(st.floats(min_value=-100.0, max_value=60.0))
    def test_round_trip_property(self, value_dbm):
        assert watt_to_dbm(dbm_to_watt(value_dbm)) == pytest.approx(value_dbm, abs=1e-9)

    def test_array_support(self):
        arr = np.array([-30.0, 0.0, 30.0])
        watts = dbm_to_watt(arr)
        assert watts.shape == (3,)
        assert np.allclose(watt_to_dbm(watts), arr)


class TestRatioDb:
    def test_equal_powers_give_zero_db(self):
        assert ratio_db(5.0, 5.0) == pytest.approx(0.0)

    def test_factor_of_ten(self):
        assert ratio_db(10.0, 1.0) == pytest.approx(10.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ratio_db(0.0, 1.0)
        with pytest.raises(ValueError):
            ratio_db(1.0, 0.0)
