"""Tests for burst requests/grants, MAC states and the duration constraint."""

import math

import numpy as np
import pytest

from repro.config import MacConfig
from repro.mac.constraints import BurstDurationConstraint
from repro.mac.requests import BurstGrant, BurstRequest, LinkDirection
from repro.mac.states import MacState, MacStateMachine, setup_delay_penalty


class TestBurstRequest:
    def test_defaults(self):
        request = BurstRequest(mobile_index=1, link=LinkDirection.FORWARD,
                               size_bits=1000.0, arrival_time_s=2.0)
        assert request.remaining_bits == 1000.0
        assert not request.completed
        assert request.waiting_time_s(5.0) == pytest.approx(3.0)
        assert request.waiting_time_s(1.0) == 0.0

    def test_unique_ids(self):
        a = BurstRequest(0, LinkDirection.FORWARD, 100.0)
        b = BurstRequest(0, LinkDirection.FORWARD, 100.0)
        assert a.request_id != b.request_id

    def test_account_served_bits(self):
        request = BurstRequest(0, LinkDirection.REVERSE, 500.0)
        request.account_served_bits(200.0)
        assert request.remaining_bits == 300.0
        request.account_served_bits(400.0)
        assert request.remaining_bits == 0.0
        assert request.completed

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstRequest(0, LinkDirection.FORWARD, 0.0)
        with pytest.raises(ValueError):
            BurstRequest(0, LinkDirection.FORWARD, 10.0, priority=-1.0)
        request = BurstRequest(0, LinkDirection.FORWARD, 10.0)
        with pytest.raises(ValueError):
            request.account_served_bits(-1.0)


class TestBurstGrant:
    def make_grant(self, **kwargs):
        request = BurstRequest(0, LinkDirection.FORWARD, 10_000.0)
        defaults = dict(request=request, m=4, rate_bps=96_000.0, start_s=1.0,
                        duration_s=0.1, bits_to_serve=9600.0,
                        forward_power_w={0: 0.5})
        defaults.update(kwargs)
        return BurstGrant(**defaults)

    def test_end_time(self):
        grant = self.make_grant()
        assert grant.end_s == pytest.approx(1.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make_grant(m=0)
        with pytest.raises(ValueError):
            self.make_grant(rate_bps=0.0)
        with pytest.raises(ValueError):
            self.make_grant(duration_s=0.0)
        with pytest.raises(ValueError):
            self.make_grant(bits_to_serve=0.0)


class TestSetupDelayPenalty:
    def test_step_function(self):
        config = MacConfig(t2_s=1.0, t3_s=5.0, d1_penalty_s=0.04, d2_penalty_s=0.3)
        assert setup_delay_penalty(0.0, config) == 0.0
        assert setup_delay_penalty(0.99, config) == 0.0
        assert setup_delay_penalty(1.0, config) == 0.04
        assert setup_delay_penalty(4.99, config) == 0.04
        assert setup_delay_penalty(5.0, config) == 0.3
        assert setup_delay_penalty(100.0, config) == 0.3

    def test_negative_waiting_rejected(self):
        with pytest.raises(ValueError):
            setup_delay_penalty(-1.0, MacConfig())


class TestMacStateMachine:
    def test_decay_sequence(self):
        config = MacConfig(t_active_to_control_hold_s=0.1, t2_s=1.0, t3_s=5.0)
        machine = MacStateMachine(config=config)
        assert machine.state is MacState.ACTIVE
        machine.advance(0.05, active=False)
        assert machine.state is MacState.ACTIVE
        machine.advance(0.1, active=False)
        assert machine.state is MacState.CONTROL_HOLD
        machine.advance(1.0, active=False)
        assert machine.state is MacState.SUSPENDED
        machine.advance(4.0, active=False)
        assert machine.state is MacState.DORMANT

    def test_touch_resets(self):
        machine = MacStateMachine(config=MacConfig())
        machine.advance(10.0, active=False)
        assert machine.state is MacState.DORMANT
        machine.advance(0.02, active=True)
        assert machine.state is MacState.ACTIVE
        assert machine.idle_time_s == 0.0

    def test_setup_penalties_per_state(self):
        config = MacConfig(d1_penalty_s=0.04, d2_penalty_s=0.3)
        machine = MacStateMachine(config=config)
        assert machine.setup_penalty_s() == 0.0
        machine.advance(0.5, active=False)   # control hold
        assert machine.setup_penalty_s() == 0.0
        machine.advance(1.0, active=False)   # suspended
        assert machine.setup_penalty_s() == 0.04
        machine.advance(10.0, active=False)  # dormant
        assert machine.setup_penalty_s() == 0.3


class TestBurstDurationConstraint:
    def make(self, min_duration=0.08, max_m=16):
        config = MacConfig(min_burst_duration_s=min_duration,
                           max_spreading_gain_ratio=max_m)
        return BurstDurationConstraint(config=config, fch_bit_rate_bps=9600.0)

    def test_large_burst_allows_max_m(self):
        constraint = self.make()
        # 10 Mbit at delta_rho=2: even m=16 runs for ~32 s >> 80 ms.
        assert constraint.upper_bound(10e6, 2.0) == 16

    def test_small_burst_limits_m(self):
        constraint = self.make()
        # eq. (24): m <= Q / (T1 * delta_rho * Rf) = 9600/(0.08*2*9600) = 6.25.
        assert constraint.upper_bound(9600.0, 2.0) == 6

    def test_tiny_burst_still_gets_one_unit(self):
        constraint = self.make()
        assert constraint.upper_bound(100.0, 2.0) == 1

    def test_outage_user_gets_zero(self):
        constraint = self.make()
        assert constraint.upper_bound(10e6, 0.0) == 0

    def test_vectorised(self):
        constraint = self.make()
        sizes = np.array([10e6, 9600.0, 100.0])
        rho = np.array([2.0, 2.0, 2.0])
        assert list(constraint.upper_bounds(sizes, rho)) == [16, 6, 1]

    def test_vector_shape_mismatch(self):
        constraint = self.make()
        with pytest.raises(ValueError):
            constraint.upper_bounds(np.array([1.0, 2.0]), np.array([1.0]))

    def test_burst_duration(self):
        constraint = self.make()
        assert constraint.burst_duration_s(96_000.0, m=5, delta_rho=2.0) == (
            pytest.approx(1.0)
        )
        assert math.isinf(constraint.burst_duration_s(96_000.0, m=5, delta_rho=0.0))
        with pytest.raises(ValueError):
            constraint.burst_duration_s(96_000.0, m=0, delta_rho=1.0)

    def test_upper_bound_monotone_in_size(self):
        constraint = self.make()
        bounds = [constraint.upper_bound(q, 1.5) for q in (1e3, 1e4, 1e5, 1e6)]
        assert bounds == sorted(bounds)
