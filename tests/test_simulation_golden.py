"""Golden end-to-end regression of the dynamic simulation.

A short :class:`repro.simulation.DynamicSystemSimulator` run is locked — per
frame admission decisions *and* summary metrics — against a checked-in
snapshot, so the seed numerics stay bit-for-bit reproducible under the
batched admission path.  Any intentional change of the numerics must
regenerate the snapshot::

    PYTHONPATH=src python tests/test_simulation_golden.py --regen

and justify the diff in the commit message.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.mac import JabaSdScheduler
from repro.simulation import DynamicSystemSimulator, ScenarioConfig
from repro.simulation.scenario import TrafficConfig

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "golden_dynamic_admission.json"
GOLDEN_FLEET_PATH = Path(__file__).resolve().parent / "data" / "golden_dynamic_fleet.json"

SUMMARY_FIELDS = (
    "duration_s",
    "mean_packet_delay_s",
    "p90_packet_delay_s",
    "mean_forward_delay_s",
    "mean_reverse_delay_s",
    "completed_packet_calls",
    "carried_throughput_bps",
    "offered_load_bps",
    "mean_granted_m",
    "grant_rate",
    "mean_queue_length",
    "forward_utilisation",
    "reverse_rise_db",
    "fch_outage_fraction",
    "handoff_events",
)


def golden_scenario(**overrides) -> ScenarioConfig:
    return ScenarioConfig.fast_test(
        duration_s=2.0,
        warmup_s=0.5,
        traffic=TrafficConfig(
            mean_reading_time_s=1.0,
            packet_call_min_bits=24_000,
            packet_call_max_bits=200_000,
        ),
        **overrides,
    )


def _jsonable(value):
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def run_and_capture(batched_fleet: bool = False) -> dict:
    """Run the golden scenario recording every admission decision."""
    simulator = DynamicSystemSimulator(
        golden_scenario(batched_fleet=batched_fleet), JabaSdScheduler("J1")
    )
    events = []
    original_decide = simulator.controller.decide

    def recording_decide(snapshot, requests, link):
        decision, grants = original_decide(snapshot, requests, link)
        events.append(
            {
                "time_s": float(snapshot.time_s),
                "link": link.value,
                "queue": [int(r.mobile_index) for r in requests],
                "assignment": [int(m) for m in decision.assignment],
                "objective": _jsonable(float(decision.objective_value)),
            }
        )
        return decision, grants

    simulator.controller.decide = recording_decide
    result = simulator.run()
    summary = {
        field: _jsonable(getattr(result, field)) for field in SUMMARY_FIELDS
    }
    return {"events": events, "summary": summary}


@pytest.fixture(scope="module")
def captured():
    return run_and_capture()


class TestGoldenDynamicRun:
    def test_snapshot_exists(self):
        assert GOLDEN_PATH.exists(), (
            "golden snapshot missing — regenerate with "
            "`PYTHONPATH=src python tests/test_simulation_golden.py --regen`"
        )

    def test_summary_bit_identical(self, captured):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert captured["summary"] == golden["summary"]

    def test_admission_decisions_bit_identical(self, captured):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert len(captured["events"]) == len(golden["events"])
        for frame, (got, want) in enumerate(
            zip(captured["events"], golden["events"])
        ):
            assert got == want, f"admission decision diverged at event {frame}"

    def test_run_actually_grants(self, captured):
        # Guards against the golden run silently degenerating into a no-op.
        assert captured["summary"]["completed_packet_calls"] > 0
        assert any(any(e["assignment"]) for e in captured["events"])


@pytest.fixture(scope="module")
def captured_fleet():
    return run_and_capture(batched_fleet=True)


class TestGoldenFleetRun:
    """End-to-end lock of the structure-of-arrays fleet path.

    The fleets own seeded random streams, so a ``batched_fleet=True`` run is
    just as reproducible as the scalar path — the golden file locks its
    admission decisions and summary so unintended fleet-kernel changes are
    caught.  Regenerate (and justify) with::

        PYTHONPATH=src python tests/test_simulation_golden.py --regen
    """

    def test_snapshot_exists(self):
        assert GOLDEN_FLEET_PATH.exists(), (
            "fleet golden snapshot missing — regenerate with "
            "`PYTHONPATH=src python tests/test_simulation_golden.py --regen`"
        )

    def test_summary_bit_identical(self, captured_fleet):
        golden = json.loads(GOLDEN_FLEET_PATH.read_text())
        assert captured_fleet["summary"] == golden["summary"]

    def test_admission_decisions_bit_identical(self, captured_fleet):
        golden = json.loads(GOLDEN_FLEET_PATH.read_text())
        assert len(captured_fleet["events"]) == len(golden["events"])
        for frame, (got, want) in enumerate(
            zip(captured_fleet["events"], golden["events"])
        ):
            assert got == want, f"fleet admission decision diverged at event {frame}"

    def test_run_actually_grants(self, captured_fleet):
        assert captured_fleet["summary"]["completed_packet_calls"] > 0
        assert any(any(e["assignment"]) for e in captured_fleet["events"])


def main(argv=None) -> int:  # pragma: no cover - regeneration helper
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--regen", action="store_true", help="rewrite the golden snapshots"
    )
    args = parser.parse_args(argv)
    if not args.regen:
        parser.error("nothing to do (pass --regen to rewrite the snapshot)")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(run_and_capture(), indent=2) + "\n")
    print(f"golden snapshot written to {GOLDEN_PATH}")
    GOLDEN_FLEET_PATH.write_text(
        json.dumps(run_and_capture(batched_fleet=True), indent=2) + "\n"
    )
    print(f"fleet golden snapshot written to {GOLDEN_FLEET_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
