"""Tests for the path-loss models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.channel.pathloss import HataPathLoss, LogDistancePathLoss


class TestLogDistancePathLoss:
    def test_reference_distance_loss(self):
        model = LogDistancePathLoss(exponent=4.0, reference_loss_db=128.1,
                                    reference_distance_m=1000.0)
        assert model.loss_db(1000.0) == pytest.approx(128.1)

    def test_exponent_slope(self):
        model = LogDistancePathLoss(exponent=4.0, reference_loss_db=100.0,
                                    reference_distance_m=1000.0)
        # Doubling the distance adds 10*n*log10(2) ~ 12.04 dB for n = 4.
        assert model.loss_db(2000.0) - model.loss_db(1000.0) == pytest.approx(
            12.041, abs=1e-2
        )

    def test_gain_below_unity(self):
        model = LogDistancePathLoss()
        assert 0.0 < model.gain(500.0) < 1.0

    def test_near_field_clipped(self):
        model = LogDistancePathLoss()
        assert model.loss_db(0.0) == model.loss_db(model.min_distance_m)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss().loss_db(-1.0)

    def test_array_input(self):
        model = LogDistancePathLoss()
        distances = np.array([100.0, 1000.0, 5000.0])
        losses = model.loss_db(distances)
        assert losses.shape == (3,)
        assert np.all(np.diff(losses) > 0)

    @given(st.floats(min_value=10.0, max_value=50_000.0),
           st.floats(min_value=10.0, max_value=50_000.0))
    def test_monotone_in_distance(self, d1, d2):
        model = LogDistancePathLoss()
        if d1 > d2:
            d1, d2 = d2, d1
        assert model.loss_db(d1) <= model.loss_db(d2) + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(exponent=0.0)
        with pytest.raises(ValueError):
            LogDistancePathLoss(reference_distance_m=0.0)


class TestHataPathLoss:
    def test_increasing_with_distance(self):
        model = HataPathLoss()
        assert model.loss_db(500.0) < model.loss_db(2000.0)

    def test_higher_frequency_more_loss(self):
        low = HataPathLoss(carrier_frequency_hz=1.5e9)
        high = HataPathLoss(carrier_frequency_hz=2.0e9)
        assert high.loss_db(1000.0) > low.loss_db(1000.0)

    def test_taller_base_station_less_loss(self):
        short = HataPathLoss(base_height_m=30.0)
        tall = HataPathLoss(base_height_m=60.0)
        assert tall.loss_db(1000.0) < short.loss_db(1000.0)

    def test_large_city_correction(self):
        small = HataPathLoss(large_city=False)
        large = HataPathLoss(large_city=True)
        assert large.loss_db(1000.0) != small.loss_db(1000.0)

    def test_plausible_urban_value(self):
        # COST-231 at 2 GHz, 1 km, 30 m BS: roughly 130-145 dB.
        loss = HataPathLoss().loss_db(1000.0)
        assert 120.0 < loss < 160.0

    def test_array_support(self):
        model = HataPathLoss()
        losses = model.loss_db(np.array([200.0, 1000.0]))
        assert losses.shape == (2,)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HataPathLoss(carrier_frequency_hz=0.0)
        with pytest.raises(ValueError):
            HataPathLoss(base_height_m=-1.0)
