"""Hook-protocol and dispatch-count battery.

Certifies the two sides of the observability contract:

* **hot path untouched** — with the default ``hooks=None`` the dynamic
  simulator never calls a hook method, never touches the recorder, and
  never enters the instrumented stage wrapper (the scalar/vectorised fast
  paths stay allocation-free);
* **full visibility when installed** — a hooked run emits an exact,
  deterministic number of events per frame, the DES engine reports
  schedule/dispatch/error, and every executor reports issue / retry /
  quarantine / completion.
"""

from __future__ import annotations

import time
import warnings

import pytest

from repro.des import Environment
from repro.experiments.executors import (
    ResilientExecutor,
    SerialExecutor,
    TaskSpec,
)
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.mac import JabaSdScheduler
from repro.simulation import DynamicSystemSimulator, ScenarioConfig
from repro.simulation.scenario import TrafficConfig
from repro.utils.hooks import (
    CompositeHooks,
    SimHooks,
    StageTimingHooks,
    resolve_hooks,
)
from repro.utils.recorder import EventRecorder, MemorySink, RecorderHooks

STAGES = ("voice", "arrivals", "data_activity", "mac", "mobility")


def _two_frame_scenario(**overrides) -> ScenarioConfig:
    """Two 20 ms frames, no warmup — the smallest scenario with admissions."""
    defaults = dict(
        duration_s=0.04,
        warmup_s=0.0,
        traffic=TrafficConfig(
            mean_reading_time_s=1.0,
            packet_call_min_bits=24_000,
            packet_call_max_bits=200_000,
        ),
    )
    defaults.update(overrides)
    return ScenarioConfig.fast_test(**defaults)


class _CountingHooks(SimHooks):
    """Counts every hook invocation by method name."""

    def __init__(self):
        self.calls = {}
        self.stages = []

    def _bump(self, name):
        self.calls[name] = self.calls.get(name, 0) + 1

    def event_scheduled(self, time_s, priority, queue_size):
        self._bump("event_scheduled")

    def event_dispatched(self, time_s, num_callbacks):
        self._bump("event_dispatched")

    def event_error(self, time_s, error):
        self._bump("event_error")

    def run_start(self, time_s, **info):
        self._bump("run_start")

    def run_end(self, time_s, **info):
        self._bump("run_end")

    def stage_enter(self, stage, time_s):
        self._bump("stage_enter")
        self.stages.append(stage)

    def stage_exit(self, stage, time_s, elapsed_s):
        self._bump("stage_exit")

    def frame(self, frame_index, time_s, pending_requests, active_bursts):
        self._bump("frame")

    def admission(self, time_s, link, num_pending, num_granted,
                  objective_value, optimal):
        self._bump("admission")

    def task_issued(self, key, attempt):
        self._bump("task_issued")

    def task_completed(self, key, attempts, duration_s):
        self._bump("task_completed")

    def task_retry(self, key, attempt, delay_s, reason):
        self._bump("task_retry")

    def task_quarantined(self, key, attempts, reason):
        self._bump("task_quarantined")


# ---------------------------------------------------------------------------
# Protocol plumbing
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_base_hooks_are_noops(self):
        hooks = SimHooks()
        hooks.event_scheduled(0.0, 1, 3)
        hooks.event_dispatched(0.0, 2)
        hooks.event_error(0.0, ValueError("x"))
        hooks.run_start(0.0, frames=1)
        hooks.run_end(0.0)
        hooks.stage_enter("voice", 0.0)
        hooks.stage_exit("voice", 0.0, 1e-4)
        hooks.frame(0, 0.0, 0, 0)
        hooks.admission(0.0, "forward", 1, 1, 0.0, True)
        hooks.task_issued("0/0", 1)
        hooks.task_completed("0/0", 1, 0.1)
        hooks.task_retry("0/0", 1, 0.5, "x")
        hooks.task_quarantined("0/0", 2, "x")

    def test_composite_fans_out_in_order(self):
        first, second = _CountingHooks(), _CountingHooks()
        composite = CompositeHooks([first, second])
        composite.frame(0, 0.0, 1, 2)
        composite.stage_enter("mac", 0.0)
        for hooks in (first, second):
            assert hooks.calls == {"frame": 1, "stage_enter": 1}

    def test_composite_flattens_nested_composites(self):
        a, b, c = _CountingHooks(), _CountingHooks(), _CountingHooks()
        nested = CompositeHooks([CompositeHooks([a, b]), c])
        assert list(nested.children) == [a, b, c]

    def test_resolve_hooks(self):
        only = SimHooks()
        assert resolve_hooks(None, None) is None
        assert resolve_hooks(None, only, None) is only
        both = resolve_hooks(only, SimHooks())
        assert isinstance(both, CompositeHooks)
        assert len(both.children) == 2

    def test_stage_timing_hooks_accumulate(self):
        hooks = StageTimingHooks()
        hooks.stage_enter("voice", 0.0)
        hooks.stage_exit("voice", 0.0, 0.25)
        hooks.stage_exit("voice", 0.02, 0.75)
        hooks.stage_exit("mac", 0.02, 0.5)
        hooks.frame(0, 0.0, 0, 0)
        hooks.frame(1, 0.02, 0, 0)
        assert hooks.totals == {"voice": 1.0, "mac": 0.5}
        assert hooks.frames == 2
        per_frame = hooks.per_frame_ms()
        assert per_frame["voice"] == pytest.approx(500.0)
        assert per_frame["mac"] == pytest.approx(250.0)


# ---------------------------------------------------------------------------
# DES engine hooks
# ---------------------------------------------------------------------------
class TestDesHooks:
    def test_schedule_and_dispatch_observed(self):
        hooks = _CountingHooks()
        env = Environment(hooks=hooks)

        def proc(env):
            yield env.timeout(1.0)
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert hooks.calls["event_scheduled"] >= 2
        assert hooks.calls["event_dispatched"] >= 2
        assert "event_error" not in hooks.calls

    def test_error_observed_before_raise(self):
        hooks = _CountingHooks()
        env = Environment(hooks=hooks)
        event = env.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            env.run()
        assert hooks.calls["event_error"] == 1

    def test_step_path_reports_dispatch(self):
        hooks = _CountingHooks()
        env = Environment(hooks=hooks)
        env.timeout(0.5)
        env.step()
        assert hooks.calls["event_dispatched"] == 1

    def test_default_environment_has_no_hooks(self):
        assert Environment().hooks is None


# ---------------------------------------------------------------------------
# Dynamic simulator: hot path stays hook-free by default
# ---------------------------------------------------------------------------
class TestDefaultPathIsHookFree:
    @pytest.mark.parametrize("batched_fleet", [False, True])
    def test_no_hook_or_recorder_dispatch(self, monkeypatch, batched_fleet):
        calls = {"hooks": 0, "record": 0, "staged": 0}

        def forbid(bucket):
            def _touch(*args, **kwargs):
                calls[bucket] += 1
                raise AssertionError(f"{bucket} touched on the default path")
            return _touch

        # Any SimHooks method or recorder call on the default path is a bug.
        for name in [n for n in dir(SimHooks) if not n.startswith("_")]:
            monkeypatch.setattr(SimHooks, name, forbid("hooks"))
        monkeypatch.setattr(EventRecorder, "record", forbid("record"))
        monkeypatch.setattr(
            DynamicSystemSimulator, "_hooked_stage", forbid("staged")
        )

        scenario = _two_frame_scenario(batched_fleet=batched_fleet)
        sim = DynamicSystemSimulator(scenario, JabaSdScheduler("J1"))
        assert sim.hooks is None
        result = sim.run()
        assert calls == {"hooks": 0, "record": 0, "staged": 0}
        assert result.duration_s > 0.0


# ---------------------------------------------------------------------------
# Dynamic simulator: exact event counts when hooks are installed
# ---------------------------------------------------------------------------
class TestInstalledHookCounts:
    @pytest.mark.parametrize("batched_fleet", [False, True])
    def test_two_frame_run_emits_exact_counts(self, batched_fleet):
        sink = MemorySink()
        hooks = RecorderHooks(EventRecorder(sink))
        scenario = _two_frame_scenario(batched_fleet=batched_fleet)
        sim = DynamicSystemSimulator(scenario, JabaSdScheduler("J1"), hooks=hooks)
        sim.run()

        counts = sink.by_kind()
        frames = 2
        assert counts["run_start"] == 1
        assert counts["run_end"] == 1
        assert counts["frame"] == frames
        # Five pipeline stages per frame: voice, arrivals, data_activity,
        # mac and (inside CdmaNetwork.advance) mobility.
        assert counts["stage_enter"] == len(STAGES) * frames
        assert counts["stage_exit"] == len(STAGES) * frames
        # warmup_s=0 means every admission decision is also a metrics grant
        # decision, so the metrics counter cross-checks the event count.
        # (The batched fleet samples traffic in a different RNG order and
        # happens to see no burst request within two frames.)
        assert counts.get("admission", 0) == sim.metrics.grant_decisions
        if not batched_fleet:
            assert counts["admission"] == 1

    def test_stage_names_cover_the_pipeline_in_order(self):
        hooks = _CountingHooks()
        sim = DynamicSystemSimulator(
            _two_frame_scenario(), JabaSdScheduler("J1"), hooks=hooks
        )
        sim.run()
        assert hooks.stages[: len(STAGES)] == list(STAGES)
        assert set(hooks.stages) == set(STAGES)

    def test_run_start_carries_run_metadata(self):
        sink = MemorySink()
        sim = DynamicSystemSimulator(
            _two_frame_scenario(),
            JabaSdScheduler("J1"),
            hooks=RecorderHooks(EventRecorder(sink)),
        )
        sim.run()
        start = next(e for e in sink.events if e["kind"] == "run_start")
        assert start["frames"] == 2
        assert "J1" in start["scheduler"]
        assert start["batched_fleet"] is False


# ---------------------------------------------------------------------------
# collect_stage_times deprecation shim
# ---------------------------------------------------------------------------
class TestStageTimesShim:
    def test_deprecated_flag_still_fills_stage_times(self):
        sim = DynamicSystemSimulator(_two_frame_scenario(), JabaSdScheduler("J1"))
        with pytest.warns(DeprecationWarning, match="StageTimingHooks"):
            sim.run(collect_stage_times=True)
        assert sim.stage_times_s is not None
        assert set(sim.stage_times_s) == set(STAGES)
        assert all(value >= 0.0 for value in sim.stage_times_s.values())

    def test_timing_hooks_match_the_shim(self):
        timing = StageTimingHooks()
        sim = DynamicSystemSimulator(
            _two_frame_scenario(), JabaSdScheduler("J1"), hooks=timing
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sim.run(collect_stage_times=True)
        # The shim's totals are the explicit hooks' totals: same instrument.
        assert sim.stage_times_s == timing.totals or set(
            sim.stage_times_s
        ) == set(timing.totals) == set(STAGES)
        assert timing.frames == 2

    def test_default_run_leaves_stage_times_none(self):
        sim = DynamicSystemSimulator(_two_frame_scenario(), JabaSdScheduler("J1"))
        sim.run()
        assert sim.stage_times_s is None


# ---------------------------------------------------------------------------
# Executor task hooks
# ---------------------------------------------------------------------------
def _hook_execute(payload):
    plan, point_index, replication, value = payload
    plan.apply(point_index, replication)
    return {"v": float(value)}


class TestExecutorHooks:
    def test_serial_executor_reports_issue_and_completion(self):
        executor = SerialExecutor()
        hooks = _CountingHooks()
        executor.hooks = hooks
        tasks = [
            TaskSpec(point_index=0, replication=rep,
                     payload=(FaultPlan([]), 0, rep, rep))
            for rep in range(3)
        ]
        outcomes = list(executor.run(_hook_execute, tasks))
        assert len(outcomes) == 3
        assert hooks.calls["task_issued"] == 3
        assert hooks.calls["task_completed"] == 3

    def test_resilient_executor_reports_retry_and_quarantine(self, tmp_path):
        # Replication 0 fails once then succeeds (one retry); replication 1
        # fails forever (quarantined after max_retries).
        plan = FaultPlan(
            [
                FaultSpec(0, 0, "exception", times=1),
                FaultSpec(0, 1, "exception", times=10),
            ],
            token_dir=tmp_path,
        )
        executor = ResilientExecutor(workers=2, max_retries=2,
                                     backoff_base_s=0.01)
        hooks = _CountingHooks()
        executor.hooks = hooks
        tasks = [
            TaskSpec(point_index=0, replication=rep,
                     payload=(plan, 0, rep, rep))
            for rep in range(2)
        ]
        outcomes = {o.task.replication: o for o in
                    executor.run(_hook_execute, tasks)}
        assert outcomes[0].metrics == {"v": 0.0}
        assert outcomes[1].metrics is None
        # rep 0: attempts 1 (fails) + 2 (succeeds); rep 1: attempts 1..3.
        assert hooks.calls["task_issued"] == 5
        assert hooks.calls["task_completed"] == 1
        assert hooks.calls["task_retry"] == 3
        assert hooks.calls["task_quarantined"] == 1


# ---------------------------------------------------------------------------
# Overhead sanity (the hard gate lives in benchmarks/check_bench_regression)
# ---------------------------------------------------------------------------
class TestOverheadSanity:
    def test_noop_hooks_do_not_blow_up_runtime(self):
        scenario = ScenarioConfig.fast_test(duration_s=0.2, warmup_s=0.0)

        def run_once(hooks):
            sim = DynamicSystemSimulator(scenario, JabaSdScheduler("J1"),
                                         hooks=hooks)
            start = time.perf_counter()
            sim.run()
            return time.perf_counter() - start

        run_once(None)  # warm caches
        baseline = min(run_once(None) for _ in range(3))
        hooked = min(run_once(SimHooks()) for _ in range(3))
        # Generous CI-safe sanity bound; the 2% budget is bench-gated.
        assert hooked < baseline * 3.0 + 0.05
