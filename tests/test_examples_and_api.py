"""Smoke tests for the example scripts and the public package API."""

import importlib
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name):
    """Import an example script as a module without executing ``main()``."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.replace(".py", ""), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        expected = {
            "quickstart.py",
            "adaptive_phy_demo.py",
            "multicell_dynamic_simulation.py",
            "scheduler_comparison.py",
            "campaign_coverage_sweep.py",
        }
        present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert expected.issubset(present)

    def test_quickstart_runs(self, capsys):
        module = _load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "JABA-SD" in out
        assert "FCFS" in out
        assert "headroom" in out.lower()

    def test_adaptive_phy_demo_runs(self, capsys):
        module = _load_example("adaptive_phy_demo.py")
        module.main()
        out = capsys.readouterr().out
        assert "threshold" in out.lower()
        assert "Adaptive gain" in out

    def test_dynamic_examples_importable(self):
        # The long-running examples are only imported (their main() is covered
        # by the dynamic-simulation integration tests at reduced scale).
        for name in (
            "multicell_dynamic_simulation.py",
            "scheduler_comparison.py",
            "campaign_coverage_sweep.py",
        ):
            module = _load_example(name)
            assert hasattr(module, "main")


class TestPackageApi:
    def test_version_and_paper(self):
        import repro

        assert repro.__version__
        assert "Kwok" in repro.PAPER and "Lau" in repro.PAPER

    def test_top_level_reexports(self):
        import repro

        config = repro.SystemConfig()
        assert config.phy.num_modes == 6
        assert repro.PhyConfig is type(config.phy)
        assert repro.RadioConfig is type(config.radio)
        assert repro.MacConfig is type(config.mac)

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.des",
            "repro.channel",
            "repro.phy",
            "repro.geometry",
            "repro.cdma",
            "repro.traffic",
            "repro.mac",
            "repro.mac.schedulers",
            "repro.opt",
            "repro.simulation",
            "repro.experiments",
            "repro.utils",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__") and module.__all__
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_docstrings_on_public_entry_points(self):
        from repro.mac import BurstAdmissionController, JabaSdScheduler
        from repro.phy import VtaocCodec
        from repro.simulation import DynamicSystemSimulator

        for obj in (BurstAdmissionController, JabaSdScheduler, VtaocCodec,
                    DynamicSystemSimulator):
            assert obj.__doc__ and len(obj.__doc__.strip()) > 40
