"""Tests for the integer-program solvers (exhaustive, B&B, greedy, LP)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.opt import (
    BoundedIntegerProgram,
    round_lp_solution,
    solve_branch_and_bound,
    solve_exhaustive,
    solve_greedy,
    solve_lp_relaxation,
    solve_near_optimal,
)
from repro.opt import SimplexIterationLimitError, SimplexScratch, solve_children_lp
from repro.opt.exhaustive import MAX_ENUMERATION_POINTS
from repro.opt.lp import simplex_lp


def random_problem(rng, num_vars, num_constraints=3, max_bound=5):
    matrix = rng.uniform(0.0, 1.0, size=(num_constraints, num_vars))
    # Sparsify so some variables are unconstrained in some rows.
    matrix[rng.random(matrix.shape) < 0.3] = 0.0
    bounds = rng.uniform(1.0, 6.0, size=num_constraints)
    objective = rng.uniform(0.1, 3.0, size=num_vars)
    upper = rng.integers(1, max_bound + 1, size=num_vars)
    return BoundedIntegerProgram(objective, matrix, bounds, upper)


class TestExhaustive:
    def test_simple_knapsack(self):
        problem = BoundedIntegerProgram(
            objective=[5.0, 3.0],
            constraint_matrix=[[2.0, 1.0]],
            constraint_bounds=[4.0],
            upper_bounds=[2, 4],
        )
        solution = solve_exhaustive(problem)
        assert solution.objective == pytest.approx(12.0)
        assert solution.optimal

    def test_refuses_huge_space(self):
        problem = BoundedIntegerProgram(
            objective=np.ones(20),
            constraint_matrix=np.ones((1, 20)),
            constraint_bounds=[10.0],
            upper_bounds=np.full(20, 10),
        )
        assert problem.search_space_size() > MAX_ENUMERATION_POINTS
        with pytest.raises(ValueError):
            solve_exhaustive(problem)


class TestBranchAndBound:
    def test_matches_exhaustive_on_random_instances(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            problem = random_problem(rng, num_vars=4, max_bound=4)
            exact = solve_exhaustive(problem)
            bnb = solve_branch_and_bound(problem)
            assert bnb.objective == pytest.approx(exact.objective, rel=1e-9, abs=1e-9)
            assert bnb.optimal
            assert problem.is_feasible(bnb.values)

    def test_empty_problem(self):
        problem = BoundedIntegerProgram(
            objective=np.zeros(0),
            constraint_matrix=np.zeros((1, 0)),
            constraint_bounds=[1.0],
            upper_bounds=np.zeros(0),
        )
        solution = solve_branch_and_bound(problem)
        assert solution.objective == 0.0
        assert solution.optimal

    def test_zero_capacity_gives_zero(self):
        problem = BoundedIntegerProgram(
            objective=[1.0, 1.0],
            constraint_matrix=[[1.0, 1.0]],
            constraint_bounds=[0.0],
            upper_bounds=[5, 5],
        )
        solution = solve_branch_and_bound(problem)
        assert solution.objective == 0.0
        assert np.all(solution.values == 0)

    def test_node_budget_returns_feasible_incumbent(self):
        rng = np.random.default_rng(1)
        problem = random_problem(rng, num_vars=12, num_constraints=5, max_bound=8)
        solution = solve_branch_and_bound(problem, max_nodes=3)
        assert problem.is_feasible(solution.values)

    def test_gap_tolerance_not_marked_optimal(self):
        rng = np.random.default_rng(2)
        problem = random_problem(rng, num_vars=8, max_bound=6)
        solution = solve_branch_and_bound(problem, gap_tolerance=0.05)
        assert not solution.optimal
        assert problem.is_feasible(solution.values)

    def test_scipy_lp_backend_agrees(self):
        rng = np.random.default_rng(3)
        problem = random_problem(rng, num_vars=5, max_bound=4)
        a = solve_branch_and_bound(problem, use_scipy_lp=True)
        b = solve_branch_and_bound(problem, use_scipy_lp=False)
        assert a.objective == pytest.approx(b.objective, rel=1e-9)

    def test_invalid_gap(self):
        problem = BoundedIntegerProgram([1.0], [[1.0]], [1.0], [1])
        with pytest.raises(ValueError):
            solve_branch_and_bound(problem, gap_tolerance=-0.1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=10_000))
    def test_property_optimal_at_least_greedy(self, num_vars, seed):
        rng = np.random.default_rng(seed)
        problem = random_problem(rng, num_vars=num_vars, max_bound=3)
        greedy = solve_greedy(problem)
        bnb = solve_branch_and_bound(problem)
        assert bnb.objective >= greedy.objective - 1e-9


class TestGreedyAndRounding:
    def test_greedy_always_feasible(self):
        rng = np.random.default_rng(4)
        for _ in range(30):
            problem = random_problem(rng, num_vars=8, max_bound=6)
            solution = solve_greedy(problem)
            assert problem.is_feasible(solution.values)

    def test_greedy_skips_zero_value_variables(self):
        problem = BoundedIntegerProgram(
            objective=[0.0, 1.0],
            constraint_matrix=[[1.0, 1.0]],
            constraint_bounds=[3.0],
            upper_bounds=[3, 3],
        )
        solution = solve_greedy(problem)
        assert solution.values[0] == 0
        assert solution.values[1] == 3

    def test_round_lp_solution_feasible_and_at_least_floor(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            problem = random_problem(rng, num_vars=6, max_bound=6)
            lp = solve_lp_relaxation(problem)
            rounded = round_lp_solution(problem, lp.values)
            assert problem.is_feasible(rounded.values)
            floor_objective = problem.objective_value(np.floor(lp.values + 1e-9))
            assert rounded.objective >= floor_objective - 1e-9

    def test_round_lp_wrong_length(self):
        problem = BoundedIntegerProgram([1.0], [[1.0]], [1.0], [1])
        with pytest.raises(ValueError):
            round_lp_solution(problem, np.array([1.0, 2.0]))

    def test_near_optimal_quality(self):
        rng = np.random.default_rng(6)
        for _ in range(10):
            problem = random_problem(rng, num_vars=5, max_bound=4)
            exact = solve_exhaustive(problem)
            near = solve_near_optimal(problem)
            assert problem.is_feasible(near.values)
            # On adversarial random instances the heuristic can lose a few
            # percent; experiment F6 quantifies the gap on realistic
            # scheduling instances (well under 1 %).
            assert near.objective >= 0.85 * exact.objective - 1e-9

    def test_near_optimal_sandwich(self):
        """greedy <= near-optimal <= optimal."""
        rng = np.random.default_rng(7)
        for _ in range(15):
            problem = random_problem(rng, num_vars=6, max_bound=5)
            greedy = solve_greedy(problem)
            near = solve_near_optimal(problem)
            optimal = solve_branch_and_bound(problem)
            assert greedy.objective <= near.objective + 1e-9
            assert near.objective <= optimal.objective + 1e-9


class TestBatchedParity:
    """The vectorized kernels must return the scalar oracles' assignments."""

    def test_all_backends_agree_with_scalar_oracles(self):
        rng = np.random.default_rng(20)
        for _ in range(30):
            num_vars = int(rng.integers(1, 10))
            problem = random_problem(
                rng, num_vars=num_vars, num_constraints=int(rng.integers(1, 6))
            )
            greedy_s = solve_greedy(problem, batched=False)
            greedy_b = solve_greedy(problem, batched=True)
            assert np.array_equal(greedy_s.values, greedy_b.values)

            lp_s = solve_lp_relaxation(problem, use_scipy=False, batched=False)
            lp_b = solve_lp_relaxation(problem, use_scipy=False, batched=True)
            assert np.array_equal(lp_s.values, lp_b.values)

            round_s = round_lp_solution(problem, lp_s.values, batched=False)
            round_b = round_lp_solution(problem, lp_b.values, batched=True)
            assert np.array_equal(round_s.values, round_b.values)

            near_s = solve_near_optimal(problem, batched=False)
            near_b = solve_near_optimal(problem, batched=True)
            assert np.array_equal(near_s.values, near_b.values)

            bnb_s = solve_branch_and_bound(problem, batched=False)
            bnb_b = solve_branch_and_bound(problem, batched=True)
            assert np.array_equal(bnb_s.values, bnb_b.values)
            assert bnb_s.nodes_explored == bnb_b.nodes_explored

            if problem.search_space_size() <= 50_000:
                exhaustive_s = solve_exhaustive(problem, batched=False)
                exhaustive_b = solve_exhaustive(problem, batched=True)
                assert np.array_equal(exhaustive_s.values, exhaustive_b.values)
                assert exhaustive_s.nodes_explored == exhaustive_b.nodes_explored

    def test_simplex_scratch_reuse_across_boxes(self):
        """One scratch serving many node relaxations must not leak state."""
        rng = np.random.default_rng(21)
        problem = random_problem(rng, num_vars=6, num_constraints=4)
        scratch = SimplexScratch()
        boxes = []
        for _ in range(6):
            lo = rng.integers(0, 2, size=6).astype(float)
            hi = np.maximum(lo, rng.integers(1, 5, size=6).astype(float))
            boxes.append((lo, hi))
        shared = solve_children_lp(problem, boxes, scratch=scratch)
        for (lo, hi), solution in zip(boxes, shared):
            fresh = simplex_lp(problem, lo, hi, batched=False)
            assert solution.status == fresh.status
            if solution.status == "optimal":
                assert np.array_equal(solution.values, fresh.values)

    def test_children_sweep_reports_crossed_bounds_infeasible(self):
        problem = BoundedIntegerProgram([1.0, 1.0], [[1.0, 1.0]], [4.0], [3, 3])
        children = solve_children_lp(
            problem,
            [
                (np.array([2.0, 0.0]), np.array([1.0, 3.0])),  # lo > hi
                (np.zeros(2), np.array([3.0, 3.0])),
            ],
        )
        assert children[0].status == "infeasible"
        assert children[1].status == "optimal"

    def test_max_increments_prune_is_safe_under_tight_resources(self):
        # A fully saturated constraint: every greedy step sees zero room.
        problem = BoundedIntegerProgram(
            objective=[2.0, 1.0, 3.0],
            constraint_matrix=[[1.0, 2.0, 1.0]],
            constraint_bounds=[0.0],
            upper_bounds=[4, 4, 4],
        )
        scalar = solve_greedy(problem, batched=False)
        batched = solve_greedy(problem, batched=True)
        assert np.array_equal(scalar.values, batched.values)
        assert np.all(batched.values == 0)


class TestNodeBudgetAndGap:
    """Node-budget exhaustion and gap-tolerance early-stop paths."""

    def _hard_problem(self):
        rng = np.random.default_rng(22)
        return random_problem(rng, num_vars=12, num_constraints=5, max_bound=8)

    @pytest.mark.parametrize("batched", [False, True])
    def test_node_budget_exhaustion_returns_incumbent(self, batched):
        problem = self._hard_problem()
        unbounded = solve_branch_and_bound(problem, batched=batched)
        assert unbounded.nodes_explored > 3  # the budget below really binds
        budget = 2
        solution = solve_branch_and_bound(problem, max_nodes=budget, batched=batched)
        assert not solution.optimal
        # The exhausting pop is counted before the loop breaks.
        assert solution.nodes_explored == budget + 1
        assert problem.is_feasible(solution.values)
        greedy = solve_greedy(problem, batched=batched)
        assert solution.objective >= greedy.objective - 1e-9

    @pytest.mark.parametrize("batched", [False, True])
    def test_gap_tolerance_early_stop_bounds_the_gap(self, batched):
        problem = self._hard_problem()
        exact = solve_branch_and_bound(problem, batched=batched)
        tolerance = 0.25
        relaxed = solve_branch_and_bound(
            problem, gap_tolerance=tolerance, batched=batched
        )
        assert not relaxed.optimal
        assert relaxed.nodes_explored <= exact.nodes_explored
        assert problem.is_feasible(relaxed.values)
        # The returned incumbent is within the accepted relative gap.
        assert relaxed.objective * (1.0 + tolerance) >= exact.objective - 1e-9

    def test_gap_tolerance_paths_agree(self):
        problem = self._hard_problem()
        scalar = solve_branch_and_bound(problem, gap_tolerance=0.1, batched=False)
        batched = solve_branch_and_bound(problem, gap_tolerance=0.1, batched=True)
        assert np.array_equal(scalar.values, batched.values)
        assert scalar.nodes_explored == batched.nodes_explored


class TestWarmStart:
    def test_feasible_warm_start_preserves_optimality(self):
        rng = np.random.default_rng(23)
        for _ in range(10):
            problem = random_problem(rng, num_vars=5, max_bound=4)
            exact = solve_exhaustive(problem)
            for batched in (False, True):
                warm = solve_branch_and_bound(
                    problem, batched=batched, warm_start=exact.values
                )
                assert warm.objective == pytest.approx(exact.objective, rel=1e-9)
                assert warm.optimal

    def test_warm_start_never_below_seed_objective(self):
        rng = np.random.default_rng(24)
        problem = random_problem(rng, num_vars=10, num_constraints=4, max_bound=6)
        seed = solve_greedy(problem)
        # Even with a budget of one node, the warm seed survives as incumbent.
        solution = solve_branch_and_bound(
            problem, max_nodes=1, warm_start=seed.values
        )
        assert solution.objective >= seed.objective - 1e-9

    def test_infeasible_warm_start_is_dropped(self):
        problem = BoundedIntegerProgram(
            objective=[1.0, 1.0],
            constraint_matrix=[[1.0, 1.0]],
            constraint_bounds=[2.0],
            upper_bounds=[5, 5],
        )
        cold = solve_branch_and_bound(problem)
        warm = solve_branch_and_bound(problem, warm_start=np.array([5, 5]))
        assert np.array_equal(cold.values, warm.values)
        assert cold.nodes_explored == warm.nodes_explored

    def test_warm_start_wrong_length_raises(self):
        problem = BoundedIntegerProgram([1.0], [[1.0]], [1.0], [1])
        with pytest.raises(ValueError):
            solve_branch_and_bound(problem, warm_start=np.array([1, 2]))


class TestSolverAgreementSmallQ:
    """Randomized greedy / B&B / exhaustive agreement at small queue sizes."""

    def test_agreement_suite(self):
        rng = np.random.default_rng(25)
        for _ in range(25):
            num_vars = int(rng.integers(2, 7))
            problem = random_problem(rng, num_vars=num_vars, max_bound=3)
            exact = solve_exhaustive(problem)
            for batched in (False, True):
                bnb = solve_branch_and_bound(problem, batched=batched)
                greedy = solve_greedy(problem, batched=batched)
                near = solve_near_optimal(problem, batched=batched)
                assert bnb.objective == pytest.approx(exact.objective, rel=1e-9, abs=1e-9)
                assert greedy.objective <= bnb.objective + 1e-9
                assert greedy.objective <= near.objective + 1e-9
                assert near.objective <= bnb.objective + 1e-9
                for solution in (bnb, greedy, near):
                    assert problem.is_feasible(solution.values)


class TestLpRelaxation:
    def test_lp_upper_bounds_integer_optimum(self):
        rng = np.random.default_rng(8)
        for _ in range(15):
            problem = random_problem(rng, num_vars=5, max_bound=4)
            lp = solve_lp_relaxation(problem)
            exact = solve_exhaustive(problem)
            assert lp.objective >= exact.objective - 1e-6

    def test_simplex_matches_scipy(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            problem = random_problem(rng, num_vars=7, num_constraints=4, max_bound=6)
            scipy_solution = solve_lp_relaxation(problem, use_scipy=True)
            own = simplex_lp(
                problem, np.zeros(problem.num_variables), problem.upper_bounds.astype(float)
            )
            assert own.objective == pytest.approx(scipy_solution.objective, rel=1e-7, abs=1e-7)

    def test_infeasible_branch_bounds(self):
        problem = BoundedIntegerProgram([1.0], [[1.0]], [1.0], [3])
        lp = solve_lp_relaxation(problem, lower_bounds=np.array([2.0]),
                                 upper_bounds=np.array([3.0]))
        assert lp.status == "infeasible"

    def test_lower_bounds_respected(self):
        problem = BoundedIntegerProgram(
            objective=[1.0, 10.0],
            constraint_matrix=[[1.0, 1.0]],
            constraint_bounds=[3.0],
            upper_bounds=[3, 3],
        )
        lp = solve_lp_relaxation(problem, lower_bounds=np.array([2.0, 0.0]))
        assert lp.values[0] >= 2.0 - 1e-9
        assert lp.objective == pytest.approx(12.0)

    def test_crossed_bounds_infeasible(self):
        problem = BoundedIntegerProgram([1.0], [[1.0]], [5.0], [3])
        lp = solve_lp_relaxation(problem, lower_bounds=np.array([3.0]),
                                 upper_bounds=np.array([1.0]))
        assert lp.status == "infeasible"


class TestSimplexIterationLimit:
    """The pivot-budget fallthrough raises instead of returning uncertified."""

    @staticmethod
    def _problem():
        # Needs at least one pivot: the origin is feasible but not optimal.
        return BoundedIntegerProgram(
            objective=[2.0, 3.0],
            constraint_matrix=[[1.0, 1.0]],
            constraint_bounds=[4.0],
            upper_bounds=[3, 3],
        )

    @pytest.mark.parametrize("batched", [False, True])
    def test_zero_budget_raises(self, batched):
        problem = self._problem()
        with pytest.raises(SimplexIterationLimitError, match="pivot budget"):
            simplex_lp(
                problem,
                np.zeros(2),
                problem.upper_bounds.astype(float),
                batched=batched,
                max_iterations=0,
            )

    @pytest.mark.parametrize("batched", [False, True])
    def test_sufficient_budget_certifies(self, batched):
        problem = self._problem()
        solution = simplex_lp(
            problem,
            np.zeros(2),
            problem.upper_bounds.astype(float),
            batched=batched,
            max_iterations=50,
        )
        assert solution.status == "optimal"
        assert solution.objective == pytest.approx(11.0)  # x = (1, 3)

    def test_near_optimal_falls_back_to_greedy(self, monkeypatch):
        # Simulate a degenerate cycling instance: the LP leg blows its pivot
        # budget and solve_near_optimal must return the greedy solution.
        import repro.opt.lp as lp_module

        problem = self._problem()
        expected = solve_greedy(problem)

        def exhausted(*args, **kwargs):
            raise SimplexIterationLimitError("simplex exhausted its pivot budget")

        monkeypatch.setattr(lp_module, "solve_lp_relaxation", exhausted)
        solution = solve_near_optimal(problem)
        assert np.array_equal(solution.values, expected.values)
        assert solution.objective == pytest.approx(expected.objective)

    def test_scheduler_degrades_to_greedy_decision(self, monkeypatch):
        from repro.mac.schedulers import jaba_sd as jaba_module
        from repro.mac.schedulers.jaba_sd import JabaSdScheduler

        problem = self._problem()
        expected = solve_greedy(problem)

        def exhausted(*args, **kwargs):
            raise SimplexIterationLimitError("simplex exhausted its pivot budget")

        monkeypatch.setattr(jaba_module, "solve_near_optimal", exhausted)
        scheduler = JabaSdScheduler("J1", solver="near-optimal")
        solution = scheduler._solve(problem)
        assert np.array_equal(solution.values, expected.values)
        assert solution.objective == pytest.approx(expected.objective)
