"""Tests for the burst admission controller (measurement + scheduling + grants)."""

import numpy as np
import pytest

from repro.mac.admission import BurstAdmissionController
from repro.mac.requests import BurstRequest, LinkDirection
from repro.mac.schedulers import FcfsScheduler, JabaSdScheduler
from tests.test_cdma_network import build_network


@pytest.fixture(scope="module")
def environment():
    network, config = build_network(num_data=8, num_voice=6, seed=11)
    network.advance(0.5)
    return network, network.snapshot(), config


def forward_requests(count, size_bits=300_000.0, arrival=0.0):
    return [
        BurstRequest(mobile_index=j, link=LinkDirection.FORWARD,
                     size_bits=size_bits, arrival_time_s=arrival)
        for j in range(count)
    ]


class TestBuildInput:
    def test_input_consistency(self, environment):
        _, snapshot, config = environment
        controller = BurstAdmissionController(config, JabaSdScheduler("J1"))
        requests = forward_requests(6)
        problem = controller.build_input(snapshot, requests, LinkDirection.FORWARD)
        assert len(problem.requests) == 6
        assert problem.region.num_requests == 6
        assert problem.delta_rho.shape == (6,)
        assert problem.upper_bounds.shape == (6,)
        assert np.all(problem.upper_bounds <= config.mac.max_spreading_gain_ratio)
        assert np.all(problem.delta_rho >= 0.0)
        assert np.all(problem.waiting_times_s >= 0.0)

    def test_waiting_time_includes_setup_penalty(self, environment):
        _, snapshot, config = environment
        controller = BurstAdmissionController(config, JabaSdScheduler("J1"))
        stale = [
            BurstRequest(mobile_index=0, link=LinkDirection.FORWARD,
                         size_bits=1e5, arrival_time_s=snapshot.time_s - 10.0)
        ]
        problem = controller.build_input(snapshot, stale, LinkDirection.FORWARD)
        # 10 s of waiting exceeds T3, so D2 is added on top of the raw wait.
        assert problem.waiting_times_s[0] == pytest.approx(10.0 + config.mac.d2_penalty_s)

    def test_wrong_link_rejected(self, environment):
        _, snapshot, config = environment
        controller = BurstAdmissionController(config, JabaSdScheduler("J1"))
        with pytest.raises(ValueError):
            controller.build_input(snapshot, forward_requests(2), LinkDirection.REVERSE)

    @pytest.mark.parametrize("link", [LinkDirection.FORWARD, LinkDirection.REVERSE])
    def test_batched_assembly_matches_scalar_oracle(self, environment, link):
        # The whole scheduling problem — region, delta_rho, upper bounds,
        # waiting times — is bit-identical between the two paths.
        _, snapshot, config = environment
        requests = [
            BurstRequest(mobile_index=j % snapshot.num_mobiles, link=link,
                         size_bits=250_000.0, arrival_time_s=-0.5 * j)
            for j in range(9)
        ]
        batched = BurstAdmissionController(
            config, JabaSdScheduler("J1"), batched=True
        ).build_input(snapshot, requests, link)
        scalar = BurstAdmissionController(
            config, JabaSdScheduler("J1"), batched=False
        ).build_input(snapshot, requests, link)
        assert np.array_equal(batched.region.matrix, scalar.region.matrix)
        assert np.array_equal(batched.region.bounds, scalar.region.bounds)
        assert np.array_equal(batched.delta_rho, scalar.delta_rho)
        assert np.array_equal(batched.upper_bounds, scalar.upper_bounds)
        assert np.array_equal(batched.waiting_times_s, scalar.waiting_times_s)
        assert np.array_equal(batched.priorities, scalar.priorities)


class TestDecide:
    @pytest.mark.parametrize("scheduler_factory", [lambda: JabaSdScheduler("J1"),
                                                   FcfsScheduler])
    def test_grants_are_consistent(self, environment, scheduler_factory):
        _, snapshot, config = environment
        controller = BurstAdmissionController(config, scheduler_factory())
        requests = forward_requests(6)
        decision, grants = controller.decide(snapshot, requests, LinkDirection.FORWARD)
        granted_ids = {g.request.request_id for g in grants}
        assert len(granted_ids) == len(grants)
        for grant in grants:
            column = requests.index(grant.request)
            assert grant.m == decision.assignment[column]
            assert grant.m >= 1
            # Rate = m * delta_rho * Rf.
            assert grant.rate_bps > 0.0
            # Duration is a positive whole number of frames within the cap.
            frames = grant.duration_s / config.mac.frame_duration_s
            assert frames == pytest.approx(round(frames))
            assert grant.duration_s <= config.mac.max_burst_duration_s + 1e-9
            assert grant.bits_to_serve <= grant.request.remaining_bits + 1e-6
            # Forward grants commit forward power only.
            assert grant.forward_power_w and not grant.reverse_power_w
            assert all(power > 0.0 for power in grant.forward_power_w.values())

    def test_committed_power_matches_region_columns(self, environment):
        _, snapshot, config = environment
        controller = BurstAdmissionController(config, JabaSdScheduler("J1"))
        requests = forward_requests(5)
        problem = controller.build_input(snapshot, requests, LinkDirection.FORWARD)
        decision, grants = controller.decide(snapshot, requests, LinkDirection.FORWARD)
        for grant in grants:
            column = requests.index(grant.request)
            expected = problem.region.matrix[:, column] * grant.m
            for cell, power in grant.forward_power_w.items():
                assert power == pytest.approx(expected[cell])

    def test_total_commitment_within_headroom(self, environment):
        _, snapshot, config = environment
        controller = BurstAdmissionController(config, JabaSdScheduler("J1"))
        requests = forward_requests(8, size_bits=2e6)
        _, grants = controller.decide(snapshot, requests, LinkDirection.FORWARD)
        committed = np.zeros(snapshot.num_cells)
        for grant in grants:
            for cell, power in grant.forward_power_w.items():
                committed[cell] += power
        headroom = snapshot.forward_load.headroom_w() * config.mac.forward_admission_margin
        assert np.all(committed <= headroom * (1 + 1e-6))

    def test_reverse_link_grants(self, environment):
        _, snapshot, config = environment
        controller = BurstAdmissionController(config, JabaSdScheduler("J1"))
        requests = [
            BurstRequest(mobile_index=j, link=LinkDirection.REVERSE, size_bits=4e5)
            for j in range(5)
        ]
        _, grants = controller.decide(snapshot, requests, LinkDirection.REVERSE)
        assert grants, "light reverse load should admit at least one burst"
        committed = np.zeros(snapshot.num_cells)
        for grant in grants:
            assert grant.reverse_power_w and not grant.forward_power_w
            for cell, power in grant.reverse_power_w.items():
                committed[cell] += power
        headroom = snapshot.reverse_load.headroom_w() * config.mac.reverse_admission_margin
        assert np.all(committed <= headroom * (1 + 1e-6))

    def test_small_request_gets_short_burst(self, environment):
        _, snapshot, config = environment
        controller = BurstAdmissionController(config, JabaSdScheduler("J1"))
        tiny = [BurstRequest(mobile_index=0, link=LinkDirection.FORWARD, size_bits=5000.0)]
        _, grants = controller.decide(snapshot, tiny, LinkDirection.FORWARD)
        assert len(grants) == 1
        grant = grants[0]
        # Eq. (24) keeps the assigned rate low enough that the burst lasts
        # about the minimum useful duration (and not longer), and the single
        # grant drains the whole packet call.
        assert grant.duration_s <= (
            config.mac.min_burst_duration_s + 2 * config.mac.frame_duration_s + 1e-9
        )
        assert grant.bits_to_serve == pytest.approx(5000.0)

    def test_empty_request_list(self, environment):
        _, snapshot, config = environment
        controller = BurstAdmissionController(config, JabaSdScheduler("J1"))
        decision, grants = controller.decide(snapshot, [], LinkDirection.FORWARD)
        assert grants == []
        assert decision.assignment.shape == (0,)
