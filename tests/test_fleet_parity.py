"""Scalar-vs-fleet parity of the structure-of-arrays user-fleet kernels.

The fleets (:class:`repro.traffic.VoiceFleet`,
:class:`repro.traffic.DataTrafficFleet`, :class:`repro.mac.MacStateFleet`,
:class:`repro.geometry.mobility.RandomDirectionFleet`) own their own random
streams, so parity with the per-user scalar objects is *statistical* for
everything that draws randomness (activity fractions, arrival and size
distributions, kinematics) and **bit-exact** for the deterministic MAC
state machines driven by identical activity sequences.
"""

import numpy as np
import pytest

from repro.config import MacConfig
from repro.geometry.mobility import RandomDirectionFleet, RandomDirectionMobility
from repro.mac import JabaSdScheduler
from repro.mac.states import MacStateFleet, MacStateMachine
from repro.simulation import DynamicSystemSimulator, ScenarioConfig
from repro.simulation.scenario import TrafficConfig
from repro.traffic.data import DataTrafficFleet, PacketCallDataSource, TruncatedParetoSize
from repro.traffic.voice import OnOffVoiceSource, VoiceFleet


def ks_distance(samples_a, samples_b) -> float:
    """Two-sample Kolmogorov–Smirnov distance (no scipy dependency)."""
    a = np.sort(np.asarray(samples_a))
    b = np.sort(np.asarray(samples_b))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


class TestVoiceFleetParity:
    def test_activity_fraction_matches_scalar_ensemble(self):
        num, frames, dt = 400, 4000, 0.02
        sources = [
            OnOffVoiceSource(mean_talk_s=1.0, mean_silence_s=1.5,
                             rng=np.random.default_rng(1000 + i))
            for i in range(num)
        ]
        fleet = VoiceFleet(num, mean_talk_s=1.0, mean_silence_s=1.5,
                           rng=np.random.default_rng(99))
        scalar_active = fleet_active = 0
        for _ in range(frames):
            scalar_active += sum(s.advance(dt) for s in sources)
            fleet_active += int(fleet.advance(dt).sum())
        total = num * frames
        target = fleet.activity_factor
        assert scalar_active / total == pytest.approx(target, abs=0.02)
        assert fleet_active / total == pytest.approx(target, abs=0.02)
        assert fleet_active / total == pytest.approx(scalar_active / total, abs=0.03)

    def test_exact_multi_transition_handling(self):
        fleet = VoiceFleet(64, mean_talk_s=0.01, mean_silence_s=0.01,
                           rng=np.random.default_rng(0))
        active = fleet.advance(10.0)  # thousands of transitions per source
        assert active.shape == (64,)
        assert np.all(fleet._time_in_state < fleet._state_duration)

    def test_validation(self):
        with pytest.raises(ValueError):
            VoiceFleet(4, mean_talk_s=0.0)
        with pytest.raises(ValueError):
            VoiceFleet(4).advance(-1.0)
        with pytest.raises(ValueError):
            VoiceFleet(-1)

    def test_start_state_override_and_empty_fleet(self):
        fleet = VoiceFleet(8, rng=np.random.default_rng(0), start_active=True)
        assert fleet.active.all()
        empty = VoiceFleet(0, rng=np.random.default_rng(0))
        assert empty.advance(1.0).shape == (0,)


class TestDataFleetParity:
    def _scalar_ensemble_calls(self, num, until_s, traffic_kwargs):
        sizes, gaps = [], []
        for i in range(num):
            source = PacketCallDataSource(
                rng=np.random.default_rng(2000 + i), **traffic_kwargs
            )
            last = None
            for call in source.pull_arrivals(until_s):
                sizes.append(call.size_bits)
                if last is not None:
                    gaps.append(call.arrival_time_s - last)
                last = call.arrival_time_s
        return np.asarray(sizes), np.asarray(gaps)

    def test_arrival_and_size_distributions(self):
        num, until_s = 300, 200.0
        dist = TruncatedParetoSize(shape=1.8, minimum_bits=24_000.0,
                                   maximum_bits=1_200_000.0)
        kwargs = dict(mean_reading_time_s=4.0, size_distribution=dist)
        scalar_sizes, scalar_gaps = self._scalar_ensemble_calls(num, until_s, kwargs)

        fleet = DataTrafficFleet(num, rng=np.random.default_rng(7), **kwargs)
        arrivals = fleet.pull_arrivals(until_s)
        fleet_sizes = arrivals.size_bits
        order = np.lexsort((arrivals.arrival_times_s, arrivals.user_indices))
        per_user_sorted_times = arrivals.arrival_times_s[order]
        per_user = arrivals.user_indices[order]
        same_user = per_user[1:] == per_user[:-1]
        fleet_gaps = np.diff(per_user_sorted_times)[same_user]

        # Arrival counts agree with the renewal rate (and with each other).
        expected = num * until_s / kwargs["mean_reading_time_s"]
        assert len(scalar_sizes) == pytest.approx(expected, rel=0.1)
        assert len(fleet_sizes) == pytest.approx(len(scalar_sizes), rel=0.1)
        # KS-style distance between the empirical distributions.
        assert ks_distance(scalar_sizes, fleet_sizes) < 0.02
        assert ks_distance(scalar_gaps, fleet_gaps) < 0.02
        # Size moments track the closed-form truncated-Pareto mean.
        assert np.mean(fleet_sizes) == pytest.approx(dist.mean(), rel=0.05)

    def test_forward_fraction_draws(self):
        fleet = DataTrafficFleet(500, mean_reading_time_s=1.0,
                                 forward_fraction=0.7,
                                 rng=np.random.default_rng(3))
        arrivals = fleet.pull_arrivals(40.0)
        assert arrivals.is_forward.mean() == pytest.approx(0.7, abs=0.03)

    def test_incremental_pulls_do_not_duplicate(self):
        fleet = DataTrafficFleet(50, mean_reading_time_s=0.5,
                                 rng=np.random.default_rng(4))
        first = fleet.pull_arrivals(5.0)
        second = fleet.pull_arrivals(10.0)
        assert np.all(first.arrival_times_s <= 5.0)
        assert np.all(second.arrival_times_s > 5.0)
        assert np.all(second.arrival_times_s <= 10.0)
        assert np.all(np.diff(first.arrival_times_s) >= 0.0)

    def test_empty_pull(self):
        fleet = DataTrafficFleet(10, mean_reading_time_s=100.0,
                                 rng=np.random.default_rng(5),
                                 initial_delay_s=50.0)
        arrivals = fleet.pull_arrivals(1.0)
        assert len(arrivals) == 0


class TestMacFleetParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_trajectories_bit_exact(self, seed):
        """Given the same activity sequence the fleet equals J scalar machines."""
        config = MacConfig()
        num, frames, dt = 60, 600, 0.02
        fleet = MacStateFleet(num, config)
        machines = [MacStateMachine(config=config) for _ in range(num)]
        rng = np.random.default_rng(seed)
        for _ in range(frames):
            active = rng.random(num) < 0.25
            fleet.advance(dt, active)
            for machine, flag in zip(machines, active):
                machine.advance(dt, bool(flag))
            if rng.random() < 0.3:
                touched = np.flatnonzero(rng.random(num) < 0.05)
                fleet.touch(touched)
                for user in touched:
                    machines[user].touch()
        expected_codes = np.asarray(
            [fleet.STATE_OF_CODE.index(m.state) for m in machines], dtype=np.int8
        )
        assert np.array_equal(fleet.state_codes, expected_codes)
        assert np.array_equal(
            fleet.idle_times_s, np.asarray([m.idle_time_s for m in machines])
        )
        assert np.array_equal(
            fleet.setup_penalties_s(),
            np.asarray([m.setup_penalty_s() for m in machines]),
        )
        assert all(
            fleet.setup_penalty_s(i) == machines[i].setup_penalty_s()
            and fleet.state(i) is machines[i].state
            for i in range(num)
        )

    def test_holds_dedicated_channel_mask(self):
        config = MacConfig()
        fleet = MacStateFleet(4, config)
        # Decay the whole fleet deep into Dormant, then touch one user back.
        fleet.advance(10.0 * config.t3_s, np.zeros(4, dtype=bool))
        assert not fleet.holds_dedicated_channel().any()
        fleet.touch(np.array([2]))
        assert fleet.holds_dedicated_channel().tolist() == [False, False, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            MacStateFleet(-1, MacConfig())
        with pytest.raises(ValueError):
            MacStateFleet(2, MacConfig()).advance(-0.1, np.zeros(2, dtype=bool))


class TestMobilityFleetParity:
    BOUNDS = (-500.0, 500.0, -400.0, 400.0)

    def test_positions_stay_in_bounds(self):
        rng = np.random.default_rng(0)
        positions = np.column_stack(
            [rng.uniform(-500, 500, 256), rng.uniform(-400, 400, 256)]
        )
        fleet = RandomDirectionFleet(positions, self.BOUNDS, speed_m_s=(5.0, 30.0),
                                     mean_epoch_s=0.5, rng=rng)
        for _ in range(400):
            fleet.advance(0.05)
            xmin, xmax, ymin, ymax = self.BOUNDS
            assert np.all(fleet.positions[:, 0] >= xmin)
            assert np.all(fleet.positions[:, 0] <= xmax)
            assert np.all(fleet.positions[:, 1] >= ymin)
            assert np.all(fleet.positions[:, 1] <= ymax)

    def test_travelled_distance_matches_scalar_ensemble(self):
        num, frames, dt = 200, 500, 0.02
        speed = (0.83, 13.9)
        rng = np.random.default_rng(1)
        positions = np.column_stack(
            [rng.uniform(-500, 500, num), rng.uniform(-400, 400, num)]
        )
        models = [
            RandomDirectionMobility(positions[i], self.BOUNDS, speed_m_s=speed,
                                    mean_epoch_s=5.0,
                                    rng=np.random.default_rng(3000 + i))
            for i in range(num)
        ]
        fleet = RandomDirectionFleet(positions, self.BOUNDS, speed_m_s=speed,
                                     mean_epoch_s=5.0, rng=np.random.default_rng(2))
        scalar_travel = 0.0
        fleet_travel = 0.0
        moved = np.zeros(num)
        for _ in range(frames):
            scalar_travel += sum(m.advance(dt) for m in models)
            fleet.advance(dt, out_moved=moved)
            fleet_travel += float(moved.sum())
        mean_speed = 0.5 * (speed[0] + speed[1])
        duration = frames * dt
        assert scalar_travel / (num * duration) == pytest.approx(mean_speed, rel=0.05)
        assert fleet_travel / (num * duration) == pytest.approx(mean_speed, rel=0.05)

    def test_speed_redraws_cover_the_range(self):
        rng = np.random.default_rng(3)
        positions = np.zeros((128, 2))
        fleet = RandomDirectionFleet(positions, self.BOUNDS, speed_m_s=(2.0, 10.0),
                                     mean_epoch_s=0.2, rng=rng)
        for _ in range(200):
            fleet.advance(0.05)
        speeds = fleet.speed_m_s
        assert np.all(speeds >= 2.0) and np.all(speeds <= 10.0)
        assert speeds.mean() == pytest.approx(6.0, abs=0.5)

    def test_constant_speed_fleet(self):
        fleet = RandomDirectionFleet(np.zeros((8, 2)), self.BOUNDS, speed_m_s=3.0,
                                     mean_epoch_s=1.0, rng=np.random.default_rng(4))
        moved = fleet.advance(0.5)
        assert np.allclose(moved, 1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomDirectionFleet(np.zeros((4, 3)), self.BOUNDS)
        with pytest.raises(ValueError):
            RandomDirectionFleet(np.zeros((4, 2)), (1.0, 0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            RandomDirectionFleet(np.zeros((4, 2)), self.BOUNDS, speed_m_s=(5.0, 1.0))
        fleet = RandomDirectionFleet(np.zeros((4, 2)), self.BOUNDS,
                                     rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            fleet.advance(-1.0)
        with pytest.raises(ValueError):
            fleet.advance(1.0, out_moved=np.zeros(3))


def fleet_scenario(**overrides):
    defaults = dict(
        duration_s=2.0,
        warmup_s=0.5,
        batched_fleet=True,
        traffic=TrafficConfig(
            mean_reading_time_s=1.0,
            packet_call_min_bits=24_000,
            packet_call_max_bits=200_000,
        ),
    )
    defaults.update(overrides)
    return ScenarioConfig.fast_test(**defaults)


class TestFleetSimulatorEndToEnd:
    @pytest.fixture(scope="class")
    def fleet_and_scalar(self):
        fleet_sim = DynamicSystemSimulator(fleet_scenario(), JabaSdScheduler("J1"))
        scalar_sim = DynamicSystemSimulator(
            fleet_scenario(batched_fleet=False), JabaSdScheduler("J1")
        )
        return fleet_sim, scalar_sim

    def test_same_placement_as_scalar_twin(self, fleet_and_scalar):
        fleet_sim, scalar_sim = fleet_and_scalar
        np.testing.assert_array_equal(
            fleet_sim.network._positions(), scalar_sim.network._positions()
        )

    def test_fleet_run_carries_traffic(self, fleet_and_scalar):
        fleet_sim, scalar_sim = fleet_and_scalar
        fleet_result = fleet_sim.run()
        scalar_result = scalar_sim.run()
        assert fleet_result.completed_packet_calls > 0
        assert fleet_result.carried_throughput_bps > 0.0
        # Same scenario, different sample paths: offered loads must agree in
        # magnitude (the distributions are identical).
        assert fleet_result.offered_load_bps == pytest.approx(
            scalar_result.offered_load_bps, rel=0.6
        )

    def test_membership_counts_consistent_after_run(self, fleet_and_scalar):
        for simulator in fleet_and_scalar:
            bursting = {
                b.grant.request.mobile_index for b in simulator.active_bursts
            }
            waiting = set()
            for requests in simulator.pending.values():
                waiting.update(r.mobile_index for r in requests)
            count_bursting = set(np.flatnonzero(simulator._bursting_count > 0))
            count_waiting = set(np.flatnonzero(simulator._waiting_count > 0))
            assert count_bursting == bursting
            assert count_waiting == waiting
            assert np.all(simulator._bursting_count >= 0)
            assert np.all(simulator._waiting_count >= 0)

    def test_fleet_positions_are_network_positions(self, fleet_and_scalar):
        fleet_sim, _ = fleet_and_scalar
        assert fleet_sim.network._positions() is fleet_sim.mobility_fleet.positions
        member = fleet_sim.mobiles[0].mobility
        np.testing.assert_array_equal(
            member.position, fleet_sim.mobility_fleet.positions[0]
        )
        with pytest.raises(RuntimeError):
            member.advance(0.02)

    def test_scalar_objects_absent_on_fleet_path(self, fleet_and_scalar):
        fleet_sim, scalar_sim = fleet_and_scalar
        assert fleet_sim.data_sources is None
        assert fleet_sim.voice_sources is None
        assert fleet_sim.mac_states is None
        assert fleet_sim.data_fleet is not None
        assert fleet_sim.voice_fleet is not None
        assert fleet_sim.mac_fleet is not None
        assert scalar_sim.mobility_fleet is None
        assert scalar_sim.data_fleet is None
