"""Campaign engine: determinism, checkpoint resume, seed-tree independence."""

import json
import math
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.experiments.campaign import (
    Campaign,
    MetricSummary,
    replication_seed,
    seed_sequence_to_int,
)
from repro.experiments.coverage import build_coverage_campaign
from repro.experiments.delay_vs_load import build_delay_campaign
from repro.simulation.scenario import ScenarioConfig
from repro.utils.stats import (
    chi_square_uniformity_test,
    ks_uniformity_test,
    max_pairwise_correlation,
    pearson_independence_test,
    stream_collision_fraction,
)


def _toy_runner(params, seed):
    """Cheap deterministic replication: statistics of 256 uniform draws."""
    rng = np.random.default_rng(seed)
    draws = rng.random(256)
    return {
        "mean_draw": float(draws.mean()) + float(params["offset"]),
        "max_draw": float(draws.max()),
    }


_FAIL_COUNTER = {"calls": 0, "fail_after": None}


def _failing_runner(params, seed):
    """Toy runner that dies after a configured number of calls (kill test)."""
    if (
        _FAIL_COUNTER["fail_after"] is not None
        and _FAIL_COUNTER["calls"] >= _FAIL_COUNTER["fail_after"]
    ):
        raise RuntimeError("simulated crash")
    _FAIL_COUNTER["calls"] += 1
    return _toy_runner(params, seed)


def toy_campaign(replications=3, root_seed=123, seed_groups=None, runner=_toy_runner):
    points = [{"offset": 0.0}, {"offset": 10.0}, {"offset": 20.0}]
    return Campaign(
        "toy",
        runner,
        points,
        replications=replications,
        root_seed=root_seed,
        seed_groups=seed_groups,
    )


class TestSeedTree:
    def test_leaves_are_deterministic_and_coordinate_addressed(self):
        a = replication_seed(42, 3, 7)
        b = replication_seed(42, 3, 7)
        assert seed_sequence_to_int(a) == seed_sequence_to_int(b)
        assert np.array_equal(
            np.random.default_rng(a).random(16), np.random.default_rng(b).random(16)
        )

    def test_distinct_coordinates_distinct_streams(self):
        ints = {
            seed_sequence_to_int(replication_seed(42, g, r))
            for g in range(20)
            for r in range(20)
        }
        assert len(ints) == 400  # no collisions over the 20x20 grid

    def test_invalid_coordinates_rejected(self):
        with pytest.raises(ValueError):
            replication_seed(0, -1, 0)
        with pytest.raises(ValueError):
            replication_seed(0, 0, -1)

    def test_replication_streams_pass_independence_battery(self):
        # The statistical certificate of the determinism contract: streams
        # from distinct seed-tree leaves behave like independent U(0,1)
        # sources — no seed collisions, no cross-stream correlation.
        n_streams, n_samples = 40, 512
        leaves = [replication_seed(2024, g, r) for g in range(8) for r in range(5)]
        streams = np.vstack(
            [np.random.default_rng(leaf).random(n_samples) for leaf in leaves]
        )
        assert streams.shape == (n_streams, n_samples)

        # 1. No two streams share even a short leading prefix.
        assert stream_collision_fraction(streams, prefix=8) == 0.0

        # 2. Worst pairwise correlation is at noise level (expected max |r|
        #    over 780 pairs of 512 samples is ~0.16).
        assert max_pairwise_correlation(streams) < 0.25

        # 3. Each stream individually is uniform (Bonferroni-safe threshold).
        for row in streams:
            assert not ks_uniformity_test(row).rejects(alpha=1e-4 / n_streams)

        # 4. The pooled sample is uniform across bins.
        assert not chi_square_uniformity_test(streams.ravel(), bins=32).rejects(
            alpha=1e-6
        )

        # 5. Spot-check pairs with the exact correlation test.
        for i, j in [(0, 1), (0, 39), (17, 23), (5, 30)]:
            assert not pearson_independence_test(streams[i], streams[j]).rejects(
                alpha=1e-5
            )

    def test_battery_detects_violations(self):
        rng = np.random.default_rng(0)
        uniform = rng.random(2000)
        skewed = uniform**3
        assert ks_uniformity_test(skewed).rejects(alpha=1e-6)
        assert chi_square_uniformity_test(skewed, bins=16).rejects(alpha=1e-6)
        noisy_copy = uniform + 0.01 * rng.standard_normal(2000)
        assert pearson_independence_test(uniform, noisy_copy).rejects(alpha=1e-6)
        colliding = np.vstack([uniform[:64], uniform[:64], rng.random(64)])
        assert stream_collision_fraction(colliding) == pytest.approx(1.0 / 3.0)


class TestMetricSummary:
    def test_known_values(self):
        summary = MetricSummary.from_samples([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.min == 1.0 and summary.max == 3.0
        # t(0.975, df=2) * sem = 4.302653 / sqrt(3)
        assert summary.ci_half_width == pytest.approx(
            4.302652729911275 / math.sqrt(3.0), rel=1e-9
        )

    def test_empty_and_single(self):
        empty = MetricSummary.from_samples([])
        assert empty.count == 0 and math.isnan(empty.mean)
        single = MetricSummary.from_samples([5.0])
        assert single.count == 1
        assert math.isnan(single.ci_half_width)

    def test_nan_samples_excluded(self):
        summary = MetricSummary.from_samples([1.0, math.nan, 3.0])
        assert summary.count == 2
        assert summary.mean == pytest.approx(2.0)
        assert summary.non_finite == 1


class TestCampaignDeterminism:
    def test_workers_do_not_change_results(self):
        results = {}
        for workers in (1, 4):
            outcome = toy_campaign().run(workers=workers)
            results[workers] = [
                (point.index, sorted(point.replications.items()))
                for point in outcome.points
            ]
        assert results[1] == results[4]  # bit-identical, not approximately

    def test_replications_are_distinct_but_reproducible(self):
        outcome = toy_campaign().run()
        point = outcome.points[0]
        draws = [point.replications[r]["mean_draw"] for r in sorted(point.replications)]
        assert len(set(draws)) == len(draws)
        again = toy_campaign().run()
        assert again.points[0].replications == point.replications

    def test_seed_groups_share_streams(self):
        # Common-random-numbers: points in one seed group replay the same
        # draws, so their metrics differ exactly by the configured offset.
        outcome = toy_campaign(seed_groups=[0, 0, 1]).run()
        a, b, c = outcome.points
        for rep in range(outcome.replications):
            assert b.replications[rep]["mean_draw"] - a.replications[rep][
                "mean_draw"
            ] == pytest.approx(10.0, abs=1e-12)
            assert b.replications[rep]["max_draw"] == a.replications[rep]["max_draw"]
            assert c.replications[rep]["max_draw"] != a.replications[rep]["max_draw"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Campaign("x", _toy_runner, [])
        with pytest.raises(ValueError):
            Campaign("x", _toy_runner, [{"offset": 0.0}], replications=0)
        with pytest.raises(ValueError):
            Campaign("x", _toy_runner, [{"offset": 0.0}], seed_groups=[0, 1])
        with pytest.raises(ValueError):
            toy_campaign().run(workers=0)


class TestCheckpointResume:
    def test_killed_campaign_resumes_without_recompute(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        clean = toy_campaign().run()

        _FAIL_COUNTER.update(calls=0, fail_after=4)
        with pytest.raises(RuntimeError, match="simulated crash"):
            toy_campaign(runner=_failing_runner).run(workers=1, checkpoint_path=path)
        with open(path) as handle:
            assert len(json.load(handle)["completed"]) == 4

        _FAIL_COUNTER.update(calls=0, fail_after=None)
        resumed = toy_campaign(runner=_failing_runner).run(
            workers=1, checkpoint_path=path
        )
        # Only the 5 missing replications ran on resume...
        assert _FAIL_COUNTER["calls"] == 5
        assert resumed.reused_replications == 4
        # ...and the merged outcome is bit-identical to an uninterrupted run.
        assert [p.replications for p in resumed.points] == [
            p.replications for p in clean.points
        ]

    def test_finished_checkpoint_reruns_nothing(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        toy_campaign().run(workers=1, checkpoint_path=path)
        _FAIL_COUNTER.update(calls=0, fail_after=0)  # any call would raise
        outcome = toy_campaign(runner=_failing_runner).run(
            workers=1, checkpoint_path=path
        )
        assert outcome.reused_replications == 9
        assert outcome.completed_replications == 9

    def test_mismatched_checkpoint_refused(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        toy_campaign(root_seed=1).run(workers=1, checkpoint_path=path)
        with pytest.raises(ValueError, match="different campaign"):
            toy_campaign(root_seed=2).run(workers=1, checkpoint_path=path)

    def test_fingerprint_stable_for_callable_specs(self):
        # A restarted process rebuilds factory objects at new addresses; the
        # fingerprint must depend on their qualified name, not their repr,
        # or checkpoints with callable scheduler specs become unresumable.
        def build():
            def factory():
                return None

            return Campaign(
                "x", _toy_runner, [{"offset": 0.0, "scheduler_spec": factory}]
            )

        first = build()
        second = build()
        assert first.points[0]["scheduler_spec"] is not second.points[0][
            "scheduler_spec"
        ]
        assert first.fingerprint() == second.fingerprint()

    def test_checkpoint_is_atomic_json(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        toy_campaign().run(workers=1, checkpoint_path=path)
        assert not os.path.exists(path + ".tmp")
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["campaign"] == "toy"
        assert payload["root_seed"] == 123
        assert len(payload["completed"]) == 9

    def test_corrupt_checkpoint_quarantined_and_recomputed(self, tmp_path):
        # A checkpoint truncated mid-write (crash during save) must not kill
        # the resume: it is moved aside and the campaign recomputes cleanly.
        path = str(tmp_path / "ckpt.json")
        clean = toy_campaign().run(workers=1, checkpoint_path=path)
        with open(path) as handle:
            full = handle.read()
        with open(path, "w") as handle:
            handle.write(full[: len(full) // 2])

        with pytest.warns(RuntimeWarning, match="corrupt"):
            rerun = toy_campaign().run(workers=1, checkpoint_path=path)

        assert os.path.exists(path + ".corrupt")
        assert rerun.reused_replications == 0
        assert rerun.completed_replications == 9
        assert [p.replications for p in rerun.points] == [
            p.replications for p in clean.points
        ]
        # The recomputed run rewrote a valid checkpoint in the original slot.
        with open(path) as handle:
            assert len(json.load(handle)["completed"]) == 9

    def test_corrupt_checkpoint_warns_on_non_json_garbage(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        with open(path, "w") as handle:
            handle.write("[1, 2, 3]")  # valid JSON, wrong shape
        with pytest.warns(RuntimeWarning, match="corrupt"):
            outcome = toy_campaign().run(workers=1, checkpoint_path=path)
        assert outcome.completed_replications == 9
        assert os.path.exists(path + ".corrupt")


_SIGTERM_SCRIPT = """
import sys, time
sys.path.insert(0, {src!r})
import numpy as np
from repro.experiments.campaign import Campaign


def slow_runner(params, seed):
    time.sleep(1.0)
    rng = np.random.default_rng(seed)
    draws = rng.random(256)
    return {{
        "mean_draw": float(draws.mean()) + float(params["offset"]),
        "max_draw": float(draws.max()),
    }}


points = [{{"offset": 0.0}}, {{"offset": 10.0}}, {{"offset": 20.0}}]
campaign = Campaign("toy", slow_runner, points, replications=3, root_seed=123)
campaign.run(workers=2, checkpoint_path={ckpt!r})
"""


class TestSignalInterrupt:
    def _completed_entries(self, path):
        # Mid-run, completed replications live in the fsync'd WAL; the JSON
        # only materialises at compaction (periodic or on close/interrupt).
        # A resumable snapshot is therefore JSON ∪ valid WAL prefix.
        completed = {}
        if os.path.exists(path):
            try:
                with open(path) as handle:
                    completed.update(json.load(handle).get("completed", {}))
            except json.JSONDecodeError:  # pragma: no cover - atomic writes
                pass
        wal = path + ".wal"
        if os.path.exists(wal):
            try:
                with open(wal, "rb") as handle:
                    raw = handle.read()
            except OSError:  # pragma: no cover - race with compaction
                return completed
            for line in raw.splitlines(keepends=True):
                if not line.endswith(b"\n"):
                    break  # torn tail
                try:
                    body = json.loads(line.decode("utf-8").split(" ", 1)[1])
                except (ValueError, IndexError, UnicodeDecodeError):
                    break
                if "key" in body:
                    completed[body["key"]] = body.get("metrics", {})
        return completed

    def test_sigterm_flushes_checkpoint_and_resume_matches(self, tmp_path):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        ckpt = str(tmp_path / "ckpt.json")
        script = tmp_path / "campaign_script.py"
        script.write_text(
            textwrap.dedent(
                _SIGTERM_SCRIPT.format(src=os.path.abspath(src), ckpt=ckpt)
            )
        )

        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if len(self._completed_entries(ckpt)) >= 2:
                    break
                if proc.poll() is not None:
                    pytest.fail(
                        "campaign subprocess exited before the kill: "
                        f"{proc.stderr.read()}"
                    )
                time.sleep(0.05)
            else:
                pytest.fail("checkpoint never reached 2 completed replications")

            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()

        # The interrupted run died by signal, after flushing its progress.
        assert proc.returncode != 0
        completed = self._completed_entries(ckpt)
        assert 2 <= len(completed) < 9

        # The checkpoint resumes in a fresh campaign object (the fingerprint
        # covers the grid, not the runner) and the merged outcome is
        # bit-identical to an uninterrupted run.
        clean = toy_campaign().run()
        resumed = toy_campaign().run(workers=1, checkpoint_path=ckpt)
        assert resumed.reused_replications == len(completed)
        assert [p.replications for p in resumed.points] == [
            p.replications for p in clean.points
        ]


_COORDINATOR_KILL_SCRIPT = """
import os, sys
sys.path.insert(0, {src!r})
import numpy as np
from repro.experiments.campaign import Campaign


def runner(params, seed):
    rng = np.random.default_rng(seed)
    draws = rng.random(256)
    return {{
        "mean_draw": float(draws.mean()) + float(params["offset"]),
        "max_draw": float(draws.max()),
    }}


def die_after(done, total):
    # SIGKILL stand-in: no unwind, no journal.close(), no compaction —
    # whatever survives is exactly the fsync'd WAL prefix.
    if done >= 3:
        os._exit(3)


points = [{{"offset": 0.0}}, {{"offset": 10.0}}, {{"offset": 20.0}}]
campaign = Campaign("toy", runner, points, replications=3, root_seed=123)
campaign.run(checkpoint_path={ckpt!r}, progress=die_after)
"""


class TestCoordinatorKillResume:
    """A coordinator killed at any point resumes from the WAL, no recompute."""

    def _killed_run(self, tmp_path):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        ckpt = str(tmp_path / "ckpt.json")
        script = tmp_path / "killed_campaign.py"
        script.write_text(
            textwrap.dedent(
                _COORDINATOR_KILL_SCRIPT.format(src=os.path.abspath(src), ckpt=ckpt)
            )
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 3, proc.stderr
        return ckpt

    def test_kill_mid_run_leaves_wal_only_and_resumes(self, tmp_path):
        ckpt = self._killed_run(tmp_path)
        # Died before the first compaction: durability is the WAL alone.
        assert not os.path.exists(ckpt)
        assert os.path.exists(ckpt + ".wal")

        clean = toy_campaign().run()
        resumed = toy_campaign().run(checkpoint_path=ckpt)
        assert resumed.reused_replications == 3
        assert [p.replications for p in resumed.points] == [
            p.replications for p in clean.points
        ]
        # The resume closed cleanly: compacted JSON, WAL gone.
        assert os.path.exists(ckpt)
        assert not os.path.exists(ckpt + ".wal")
        with open(ckpt) as handle:
            assert len(json.load(handle)["completed"]) == 9

    def test_kill_mid_append_torn_tail_is_discarded(self, tmp_path):
        ckpt = self._killed_run(tmp_path)
        with open(ckpt + ".wal", "ab") as handle:
            handle.write(b'deadbeef {"key": "2/2", "metrics"')  # torn record

        clean = toy_campaign().run()
        resumed = toy_campaign().run(checkpoint_path=ckpt)
        assert resumed.reused_replications == 3  # the torn tail reused nothing
        assert [p.replications for p in resumed.points] == [
            p.replications for p in clean.points
        ]

    def test_kill_mid_compaction_replays_idempotently(self, tmp_path):
        # Crash window: compaction published the JSON but died before the
        # WAL reset — resume sees every record twice and must merge.
        ckpt = self._killed_run(tmp_path)
        with open(ckpt + ".wal", "rb") as handle:
            stale_wal = handle.read()
        toy_campaign().run(checkpoint_path=ckpt)  # completes: JSON, WAL gone
        with open(ckpt + ".wal", "wb") as handle:
            handle.write(stale_wal)  # resurrect the pre-compaction WAL

        clean = toy_campaign().run()
        resumed = toy_campaign().run(checkpoint_path=ckpt)
        assert resumed.reused_replications == 9  # nothing recomputed
        assert [p.replications for p in resumed.points] == [
            p.replications for p in clean.points
        ]


class TestExperimentCampaigns:
    """The ported paper experiments on the engine (tiny configurations)."""

    def test_coverage_campaign_worker_parity(self):
        def aggregates(workers):
            campaign = build_coverage_campaign(
                loads=[2],
                num_drops=2,
                config=SystemConfig.small_test_system(),
                scheduler_factories={"JABA-SD(J1)": "JABA-SD(J1)", "FCFS": "FCFS"},
                num_replications=2,
                seed=11,
            )
            outcome = campaign.run(workers=workers)
            return [sorted(p.replications.items()) for p in outcome.points]

        assert aggregates(1) == aggregates(4)

    def test_dynamic_campaign_worker_parity(self):
        def aggregates(workers):
            campaign = build_delay_campaign(
                loads=[2],
                scenario=ScenarioConfig.fast_test(),
                scheduler_factories={"FCFS": "FCFS"},
                num_seeds=2,
            )
            outcome = campaign.run(workers=workers)
            return [sorted(p.replications.items()) for p in outcome.points]

        assert aggregates(1) == aggregates(2)

    def test_coverage_scheduler_points_share_drops(self):
        # Paired comparisons: at one load every scheduler sees the same
        # drops, so per-drop outage (scheduler-independent) must agree.
        campaign = build_coverage_campaign(
            loads=[2],
            num_drops=2,
            config=SystemConfig.small_test_system(),
            scheduler_factories={"JABA-SD(J1)": "JABA-SD(J1)", "FCFS": "FCFS"},
            num_replications=2,
            seed=11,
        )
        outcome = campaign.run()
        jaba, fcfs = outcome.points
        for rep in range(2):
            assert jaba.replications[rep]["fch_outage"] == pytest.approx(
                fcfs.replications[rep]["fch_outage"], abs=1e-12
            )
