"""Tests for the VTAOC mode table and adaptation thresholds."""

import numpy as np
import pytest

from repro.phy.modes import ModeTable, TransmissionMode
from repro.phy.thresholds import constant_ber_thresholds, threshold_for_mode


class TestTransmissionMode:
    def test_valid_mode(self):
        mode = TransmissionMode(index=2, bits_per_symbol=2.0, label="m2")
        assert mode.throughput == 2.0

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            TransmissionMode(index=0, bits_per_symbol=1.0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            TransmissionMode(index=1, bits_per_symbol=0.0)


class TestModeTable:
    def test_default_table(self):
        table = ModeTable.default()
        assert len(table) == 6
        assert table.throughputs() == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert table.max_throughput == 6.0
        assert table.min_throughput == 1.0

    def test_indexing_is_one_based(self):
        table = ModeTable.default()
        assert table[1].bits_per_symbol == 1.0
        assert table[6].bits_per_symbol == 6.0
        with pytest.raises(IndexError):
            _ = table[0]
        with pytest.raises(IndexError):
            _ = table[7]

    def test_from_throughputs(self):
        table = ModeTable.from_throughputs([0.5, 1.0, 2.0])
        assert len(table) == 3
        assert table[2].bits_per_symbol == 1.0

    def test_requires_increasing_throughput(self):
        with pytest.raises(ValueError):
            ModeTable.from_throughputs([1.0, 1.0])
        with pytest.raises(ValueError):
            ModeTable.from_throughputs([2.0, 1.0])

    def test_requires_consecutive_indices(self):
        modes = [
            TransmissionMode(index=1, bits_per_symbol=1.0),
            TransmissionMode(index=3, bits_per_symbol=2.0),
        ]
        with pytest.raises(ValueError):
            ModeTable(modes)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ModeTable([])

    def test_iteration(self):
        table = ModeTable.default(3)
        assert [m.index for m in table] == [1, 2, 3]


class TestThresholds:
    def test_thresholds_strictly_increasing(self):
        table = ModeTable.default()
        thresholds = constant_ber_thresholds(table, target_ber=1e-3)
        assert np.all(np.diff(thresholds) > 0.0)

    def test_tighter_ber_raises_thresholds(self):
        table = ModeTable.default()
        loose = constant_ber_thresholds(table, target_ber=1e-2)
        tight = constant_ber_thresholds(table, target_ber=1e-6)
        assert np.all(tight > loose)

    def test_coding_gain_lowers_thresholds(self):
        table = ModeTable.default()
        plain = constant_ber_thresholds(table, target_ber=1e-3)
        coded = constant_ber_thresholds(table, target_ber=1e-3, coding_gain_db=3.0)
        assert np.all(coded < plain)
        assert coded[0] == pytest.approx(plain[0] / 10 ** 0.3, rel=1e-9)

    def test_threshold_for_mode_matches_table(self):
        table = ModeTable.default()
        thresholds = constant_ber_thresholds(table, target_ber=1e-3)
        assert thresholds[2] == pytest.approx(threshold_for_mode(3.0, 1e-3))
