"""Tests for the composite channel and the CSI feedback models."""

import numpy as np
import pytest

from repro.channel.composite import ChannelSample, CompositeChannel
from repro.channel.csi import CsiEstimator, CsiFeedbackChannel
from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.shadowing import ConstantShadowing


class TestChannelSample:
    def test_gain_decomposition(self):
        sample = ChannelSample(path_gain=1e-10, shadowing_gain=2.0, fading_gain=0.5)
        assert sample.local_mean_gain == pytest.approx(2e-10)
        assert sample.instantaneous_gain == pytest.approx(1e-10)


class TestCompositeChannel:
    def test_default_components(self):
        channel = CompositeChannel()
        sample = channel.sample()
        assert sample.shadowing_gain == pytest.approx(1.0)
        assert sample.fading_gain == pytest.approx(1.0)

    def test_distance_setting(self):
        channel = CompositeChannel(path_loss=LogDistancePathLoss())
        channel.set_distance(500.0)
        near = channel.sample().path_gain
        channel.set_distance(5000.0)
        far = channel.sample().path_gain
        assert near > far

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            CompositeChannel().set_distance(-1.0)

    def test_advance_moves_processes(self):
        rng = np.random.default_rng(0)
        channel = CompositeChannel.standard(rng, doppler_hz=100.0)
        channel.set_distance(1000.0)
        s1 = channel.advance(moved_m=20.0, dt_s=0.1)
        s2 = channel.advance(moved_m=20.0, dt_s=0.1)
        # Fast fading decorrelates quickly at 100 Hz Doppler over 100 ms.
        assert s1.fading_gain != pytest.approx(s2.fading_gain)

    def test_advance_with_new_distance(self):
        channel = CompositeChannel(shadowing=ConstantShadowing())
        sample = channel.advance(moved_m=0.0, dt_s=0.0, new_distance_m=2000.0)
        assert channel.distance_m == 2000.0
        assert sample.path_gain == pytest.approx(
            float(channel.path_loss.gain(2000.0))
        )

    def test_standard_factory_statistics(self):
        rng = np.random.default_rng(11)
        channel = CompositeChannel.standard(rng, doppler_hz=50.0, shadowing_std_db=8.0)
        gains = [channel.advance(5.0, 0.02).fading_gain for _ in range(5000)]
        assert np.mean(gains) == pytest.approx(1.0, rel=0.2)


class TestCsiEstimator:
    def test_perfect_estimation(self):
        estimator = CsiEstimator(error_std_db=0.0)
        assert estimator.estimate(3.5) == 3.5

    def test_noisy_estimation_unbiased_in_db(self):
        estimator = CsiEstimator(error_std_db=2.0, rng=np.random.default_rng(0))
        estimates = np.array([estimator.estimate(10.0) for _ in range(20_000)])
        db_errors = 10 * np.log10(estimates / 10.0)
        assert abs(np.mean(db_errors)) < 0.1
        assert np.std(db_errors) == pytest.approx(2.0, rel=0.05)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CsiEstimator().estimate(-1.0)


class TestCsiFeedbackChannel:
    def test_delayed_delivery(self):
        channel = CsiFeedbackChannel(delay_s=0.01, quantisation_bits=None)
        channel.report(0.0, 5.0)
        assert channel.transmitter_csi(0.005) is None
        assert channel.transmitter_csi(0.02) == pytest.approx(5.0)

    def test_latest_report_wins(self):
        channel = CsiFeedbackChannel(delay_s=0.0, quantisation_bits=None)
        channel.report(0.0, 1.0)
        channel.report(1.0, 2.0)
        assert channel.transmitter_csi(2.0) == pytest.approx(2.0)

    def test_quantisation_grid(self):
        channel = CsiFeedbackChannel(quantisation_bits=4, csi_range_db=(-10.0, 30.0))
        value = channel.quantise(10.0 ** 1.23)
        value_db = 10 * np.log10(value)
        step = 40.0 / 15
        assert abs((value_db + 10.0) / step - round((value_db + 10.0) / step)) < 1e-9

    def test_quantisation_clipping(self):
        channel = CsiFeedbackChannel(quantisation_bits=4, csi_range_db=(-10.0, 30.0))
        assert 10 * np.log10(channel.quantise(1e9)) == pytest.approx(30.0)
        assert channel.quantise(0.0) == 0.0

    def test_no_quantisation(self):
        channel = CsiFeedbackChannel(quantisation_bits=None)
        assert channel.quantise(3.3) == 3.3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CsiFeedbackChannel(delay_s=-0.1)
        with pytest.raises(ValueError):
            CsiFeedbackChannel(quantisation_bits=0)
        with pytest.raises(ValueError):
            CsiFeedbackChannel(csi_range_db=(10.0, -10.0))
