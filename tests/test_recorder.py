"""Property/invariant suite for the telemetry recorder and its sinks.

Locks the recorder contract the observability layer rests on:

* events carry the versioned envelope and validate against
  :data:`repro.utils.recorder.EVENT_SCHEMA`;
* ``seq`` increases by one per event and ``time_s`` is non-decreasing
  within one recorder's stream;
* :class:`AsyncSink` never blocks the emitter — a saturated bounded queue
  drops events and reports the **exact** drop count;
* sink ``close`` is idempotent and flushes buffered events;
* concurrent emitters never interleave partial JSONL lines;
* campaign tracing only observes: aggregates of a traced run are
  bit-identical to an untraced one, and every trace line is schema-valid.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.utils.recorder import (
    EVENT_SCHEMA,
    SCHEMA_VERSION,
    WALL_CLOCK_FIELDS,
    AsyncSink,
    EventRecorder,
    JsonlSink,
    MemorySink,
    RecorderHooks,
    Sink,
    current_recorder,
    normalize_event,
    read_jsonl,
    use_recorder,
    validate_event,
)


# ---------------------------------------------------------------------------
# Envelope and schema
# ---------------------------------------------------------------------------
class TestSchema:
    def test_recorded_events_are_schema_valid(self):
        sink = MemorySink()
        recorder = EventRecorder(sink)
        hooks = RecorderHooks(recorder)
        hooks.run_start(0.0, frames=3)
        hooks.stage_enter("voice", 0.0)
        hooks.stage_exit("voice", 0.0, 1.5e-4)
        hooks.frame(0, 0.0, pending_requests=2, active_bursts=1)
        hooks.admission(0.02, "forward", 3, 2, 12.5, True)
        hooks.event_scheduled(0.04, 1, 7)
        hooks.event_dispatched(0.04, 2)
        hooks.event_error(0.04, ValueError("boom"))
        hooks.task_issued("0/1", 1)
        hooks.task_completed("0/1", 1, 0.25)
        hooks.task_retry("0/2", 1, 0.5, "TimeoutError")
        hooks.task_quarantined("0/2", 3, "TimeoutError")
        hooks.run_end(0.06)
        assert sink.events
        for event in sink.events:
            assert validate_event(event) == []

    def test_envelope_fields(self):
        sink = MemorySink()
        recorder = EventRecorder(sink)
        event = recorder.record("frame", 1.5, frame_index=0,
                                pending_requests=0, active_bursts=0)
        assert event["schema"] == SCHEMA_VERSION
        assert event["seq"] == 0
        assert event["kind"] == "frame"
        assert event["time_s"] == 1.5

    def test_validate_event_catches_violations(self):
        assert validate_event("not a dict")
        assert validate_event({}) != []
        assert any(
            "unknown kind" in problem
            for problem in validate_event(
                {"schema": SCHEMA_VERSION, "seq": 0, "time_s": 0.0, "kind": "nope"}
            )
        )
        missing = validate_event(
            {"schema": SCHEMA_VERSION, "seq": 0, "time_s": 0.0, "kind": "stage_exit"}
        )
        assert any("stage" in problem for problem in missing)
        assert any("elapsed_s" in problem for problem in missing)
        wrong_schema = validate_event(
            {"schema": 99, "seq": 0, "time_s": 0.0, "kind": "run_start"}
        )
        assert any("schema" in problem for problem in wrong_schema)

    def test_every_kind_has_a_schema_entry_in_hooks_bridge(self):
        # The bridge must only emit kinds the schema knows.
        assert set(EVENT_SCHEMA) >= {
            "des_schedule", "des_dispatch", "des_error",
            "run_start", "run_end", "stage_enter", "stage_exit", "frame",
            "admission", "campaign_start", "campaign_end",
            "replication_start", "replication_end",
            "task_issued", "task_completed", "task_retry", "task_quarantined",
        }

    def test_normalize_drops_wall_clock_fields_only(self):
        event = {
            "schema": SCHEMA_VERSION, "seq": 3, "kind": "stage_exit",
            "time_s": 0.04, "stage": "mac", "elapsed_s": 1.25e-3,
        }
        normalized = normalize_event(event)
        assert "elapsed_s" not in normalized
        assert normalized["stage"] == "mac"
        assert normalized["time_s"] == 0.04
        for field in WALL_CLOCK_FIELDS:
            assert field not in normalized


# ---------------------------------------------------------------------------
# Ordering invariants
# ---------------------------------------------------------------------------
class TestOrdering:
    def test_seq_is_dense_and_time_monotone(self):
        sink = MemorySink()
        recorder = EventRecorder(sink)
        recorder.record("run_start", 0.0)
        recorder.record("stage_enter", 0.0, stage="voice")
        recorder.record("task_issued", key="0/0", attempt=1)  # no sim time
        recorder.record("frame", 0.02, frame_index=0,
                        pending_requests=0, active_bursts=0)
        recorder.record("run_end", 0.04)
        seqs = [event["seq"] for event in sink.events]
        assert seqs == list(range(len(sink.events)))
        times = [event["time_s"] for event in sink.events]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_events_without_sim_time_inherit_last_time(self):
        recorder = EventRecorder(MemorySink())
        recorder.record("frame", 2.5, frame_index=0,
                        pending_requests=0, active_bursts=0)
        event = recorder.record("task_completed", key="0/0",
                                attempts=1, duration_s=0.1)
        assert event["time_s"] == 2.5
        assert recorder.last_time_s == 2.5


# ---------------------------------------------------------------------------
# AsyncSink: never block, exact drop counts
# ---------------------------------------------------------------------------
class _GatedSink(Sink):
    """Inner sink whose emit blocks until released (writer-stall model)."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()
        self.events = []

    def emit(self, event):
        self.entered.set()
        assert self.release.wait(timeout=10.0), "gated sink never released"
        self.events.append(event)

    def close(self):
        pass


class TestAsyncSink:
    def test_saturated_queue_never_blocks_and_counts_exact_drops(self):
        inner = _GatedSink()
        sink = AsyncSink(inner, maxsize=4)
        recorder = EventRecorder(sink)

        # First event: wait until the writer thread holds it inside emit(),
        # so the queue is empty and its capacity is exactly maxsize.
        recorder.record("run_start", 0.0)
        assert inner.entered.wait(timeout=10.0)
        # Fill the queue to capacity, then overflow by exactly 7.
        for index in range(4):
            recorder.record("frame", float(index), frame_index=index,
                            pending_requests=0, active_bursts=0)
        assert sink.dropped == 0
        started = time.perf_counter()
        for index in range(7):
            recorder.record("frame", 10.0 + index, frame_index=index,
                            pending_requests=0, active_bursts=0)
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0, "emit must not block on a saturated queue"
        assert sink.dropped == 7

        inner.release.set()
        sink.close()
        # Everything that was not dropped reached the inner sink.
        assert len(inner.events) == 1 + 4
        assert sink.dropped == 7

    def test_close_flushes_queued_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = AsyncSink(JsonlSink(str(path)), maxsize=256)
        recorder = EventRecorder(sink)
        for index in range(100):
            recorder.record("frame", float(index), frame_index=index,
                            pending_requests=0, active_bursts=0)
        sink.close()
        events = read_jsonl(str(path))
        assert len(events) == 100 - sink.dropped == 100
        assert [event["seq"] for event in events] == list(range(100))

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = AsyncSink(JsonlSink(str(path)), maxsize=8)
        sink.emit({"schema": SCHEMA_VERSION, "seq": 0, "kind": "run_start",
                   "time_s": 0.0})
        sink.close()
        sink.close()  # must not raise, deadlock or duplicate
        assert len(read_jsonl(str(path))) == 1

    def test_emit_after_close_counts_as_dropped(self):
        sink = AsyncSink(MemorySink(), maxsize=8)
        sink.close()
        sink.emit({"schema": SCHEMA_VERSION, "seq": 0, "kind": "run_start",
                   "time_s": 0.0})
        assert sink.dropped == 1

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            AsyncSink(MemorySink(), maxsize=0)


# ---------------------------------------------------------------------------
# JsonlSink: atomicity of lines and of files
# ---------------------------------------------------------------------------
class TestJsonlSink:
    def test_concurrent_emit_never_interleaves_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        recorder = EventRecorder(sink)
        threads, per_thread = 8, 200

        def worker(worker_id):
            for index in range(per_thread):
                recorder.record(
                    "task_completed",
                    key=f"{worker_id}/{index}",
                    attempts=1,
                    duration_s=0.0,
                    blob="x" * 256,  # long enough to tear if writes interleave
                )

        pool = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        sink.close()

        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        assert len(lines) == threads * per_thread
        events = [json.loads(line) for line in lines]  # raises on a torn line
        assert sorted(event["seq"] for event in events) == list(
            range(threads * per_thread)
        )
        keys = {event["key"] for event in events}
        assert len(keys) == threads * per_thread

    def test_close_is_idempotent_and_emit_after_close_is_noop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"schema": SCHEMA_VERSION, "seq": 0, "kind": "run_start",
                   "time_s": 0.0})
        sink.close()
        sink.close()
        sink.emit({"schema": SCHEMA_VERSION, "seq": 1, "kind": "run_end",
                   "time_s": 0.0})
        assert len(read_jsonl(str(path))) == 1

    def test_atomic_sink_publishes_only_on_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path), atomic=True)
        sink.emit({"schema": SCHEMA_VERSION, "seq": 0, "kind": "run_start",
                   "time_s": 0.0})
        assert not path.exists(), "atomic sink must not publish before close"
        sink.close()
        assert path.exists()
        assert len(read_jsonl(str(path))) == 1
        assert not list(tmp_path.glob("*.tmp-*")), "side file must be renamed away"

    def test_unencodable_event_is_stringified_not_raised(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"kind": "run_start", "bad": object()})
        sink.close()
        events = read_jsonl(str(path))
        assert len(events) == 1 and "object" in events[0]["bad"]


# ---------------------------------------------------------------------------
# Ambient recorder
# ---------------------------------------------------------------------------
class TestAmbientRecorder:
    def test_use_recorder_installs_and_restores(self):
        assert current_recorder() is None
        recorder = EventRecorder(MemorySink())
        with use_recorder(recorder) as installed:
            assert installed is recorder
            assert current_recorder() is recorder
        assert current_recorder() is None

    def test_nested_contexts_restore_outer(self):
        outer, inner = EventRecorder(MemorySink()), EventRecorder(MemorySink())
        with use_recorder(outer):
            with use_recorder(inner):
                assert current_recorder() is inner
            assert current_recorder() is outer


# ---------------------------------------------------------------------------
# Campaign tracing: observe-only, schema-valid
# ---------------------------------------------------------------------------
def _traced_runner(params, seed: np.random.SeedSequence) -> dict:
    """Tiny dynamic run driven by the campaign seed leaf (module-level for
    pool pickling)."""
    from repro.experiments.campaign import seed_sequence_to_int
    from repro.mac import JabaSdScheduler
    from repro.simulation import DynamicSystemSimulator, ScenarioConfig

    scenario = ScenarioConfig.fast_test(
        duration_s=0.1,
        warmup_s=0.0,
        num_data_users_per_cell=int(params["load"]),
        seed=seed_sequence_to_int(seed),
    )
    result = DynamicSystemSimulator(scenario, JabaSdScheduler("J1")).run()
    return {
        "delay": float(result.mean_packet_delay_s),
        "throughput": float(result.carried_throughput_bps),
    }


class TestCampaignTracing:
    def _campaign(self):
        from repro.experiments.campaign import Campaign

        return Campaign(
            name="trace-test",
            runner=_traced_runner,
            points=[{"load": 1}, {"load": 2}],
            replications=2,
            root_seed=42,
        )

    @staticmethod
    def _aggregate(result):
        return [
            [point.replications[rep] for rep in sorted(point.replications)]
            for point in result.points
        ]

    def test_traced_aggregates_bit_identical_and_traces_schema_valid(self, tmp_path):
        untraced = self._campaign().run()
        trace_dir = tmp_path / "traces"
        traced = self._campaign().run(trace_dir=str(trace_dir))
        assert self._aggregate(traced) == self._aggregate(untraced)

        campaign_trace = read_jsonl(str(trace_dir / "campaign.jsonl"))
        kinds = [event["kind"] for event in campaign_trace]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        assert kinds.count("task_issued") == 4
        assert kinds.count("task_completed") == 4
        for event in campaign_trace:
            assert validate_event(event) == []

        rep_paths = sorted(trace_dir.glob("point*_rep*.jsonl"))
        assert len(rep_paths) == 4
        for path in rep_paths:
            events = read_jsonl(str(path))
            for event in events:
                assert validate_event(event) == []
            kinds = [event["kind"] for event in events]
            assert kinds[0] == "replication_start"
            assert kinds[-1] == "replication_end"
            # The ambient recorder captured the dynamic run's pipeline.
            assert "run_start" in kinds
            assert "frame" in kinds
            assert "stage_enter" in kinds
            times = [event["time_s"] for event in events]
            assert all(a <= b for a, b in zip(times, times[1:]))

    def test_trace_path_scenario_field_records_a_run(self, tmp_path):
        from repro.mac import JabaSdScheduler
        from repro.simulation import DynamicSystemSimulator, ScenarioConfig

        path = tmp_path / "run.jsonl"
        scenario = ScenarioConfig.fast_test(
            duration_s=0.1, warmup_s=0.0, trace_path=str(path)
        )
        DynamicSystemSimulator(scenario, JabaSdScheduler("J1")).run()
        events = read_jsonl(str(path))
        assert events, "trace_path run must publish its trace on completion"
        for event in events:
            assert validate_event(event) == []
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
