"""Tests for the shadowing models."""

import numpy as np
import pytest

from repro.channel.shadowing import ConstantShadowing, GudmundsonShadowing


class TestConstantShadowing:
    def test_fixed_value(self):
        shadow = ConstantShadowing(gain_db=3.0)
        assert shadow.current_db() == 3.0
        assert shadow.current_linear() == pytest.approx(10 ** 0.3)
        shadow.advance(100.0)
        assert shadow.current_db() == 3.0

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            ConstantShadowing().advance(-1.0)


class TestGudmundsonShadowing:
    def test_correlation_decay(self):
        shadow = GudmundsonShadowing(std_db=8.0, decorrelation_distance_m=50.0,
                                     rng=np.random.default_rng(0))
        assert shadow.correlation(0.0) == pytest.approx(1.0)
        assert shadow.correlation(50.0) == pytest.approx(np.exp(-1.0))
        assert shadow.correlation(500.0) < 1e-4

    def test_initial_value_override(self):
        shadow = GudmundsonShadowing(rng=np.random.default_rng(0), initial_db=2.5)
        assert shadow.current_db() == 2.5

    def test_zero_distance_keeps_value(self):
        shadow = GudmundsonShadowing(rng=np.random.default_rng(0), initial_db=1.0)
        assert shadow.advance(0.0) == 1.0

    def test_zero_std_is_constant(self):
        shadow = GudmundsonShadowing(std_db=0.0, rng=np.random.default_rng(0),
                                     initial_db=0.0)
        assert shadow.advance(100.0) == 0.0

    def test_stationary_statistics(self):
        """The AR(1) update must preserve the marginal N(0, sigma^2)."""
        rng = np.random.default_rng(42)
        shadow = GudmundsonShadowing(std_db=8.0, decorrelation_distance_m=50.0, rng=rng)
        samples = shadow.sample_path_db(step_m=200.0, num_steps=4000)
        # Steps of 4 decorrelation distances: nearly independent samples.
        assert abs(np.mean(samples)) < 1.0
        assert np.std(samples) == pytest.approx(8.0, rel=0.12)

    def test_small_steps_are_correlated(self):
        rng = np.random.default_rng(1)
        shadow = GudmundsonShadowing(std_db=8.0, decorrelation_distance_m=50.0, rng=rng)
        path = shadow.sample_path_db(step_m=1.0, num_steps=2000)
        diffs = np.abs(np.diff(path))
        # Successive values 1 m apart must move much less than sigma.
        assert np.mean(diffs) < 3.0

    def test_linear_gain_consistency(self):
        shadow = GudmundsonShadowing(rng=np.random.default_rng(0), initial_db=6.0)
        assert shadow.current_linear() == pytest.approx(10 ** 0.6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GudmundsonShadowing(std_db=-1.0)
        with pytest.raises(ValueError):
            GudmundsonShadowing(decorrelation_distance_m=0.0)
        with pytest.raises(ValueError):
            GudmundsonShadowing(rng=np.random.default_rng(0)).advance(-5.0)

    def test_sample_path_validation(self):
        shadow = GudmundsonShadowing(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            shadow.sample_path_db(step_m=0.0, num_steps=5)
        with pytest.raises(ValueError):
            shadow.sample_path_db(step_m=1.0, num_steps=-1)
