"""Tests for the snapshot (drop) simulator and the sweep runner."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.mac import FcfsScheduler, JabaSdScheduler
from repro.mac.requests import LinkDirection
from repro.simulation import ScenarioConfig, SnapshotSimulator
from repro.simulation.runner import run_scenario, sweep_parameter
from repro.simulation.scenario import TrafficConfig


@pytest.fixture(scope="module")
def config():
    return SystemConfig.small_test_system()


class TestSnapshotSimulator:
    def test_result_fields(self, config):
        simulator = SnapshotSimulator(config, JabaSdScheduler("J1"),
                                      num_data_users_per_cell=4,
                                      num_voice_users_per_cell=4, seed=1)
        result = simulator.run_drops(3)
        assert result.num_drops == 3
        assert 0.0 <= result.coverage <= 1.0
        assert 0.0 <= result.grant_fraction <= 1.0
        assert result.mean_granted_rate_bps >= 0.0
        assert result.per_user_rates_bps.shape == (3 * 4 * 7,)
        record = result.as_record()
        assert record["scheduler"] == simulator.scheduler.name

    def test_reproducible(self, config):
        a = SnapshotSimulator(config, JabaSdScheduler("J1"), num_data_users_per_cell=3,
                              seed=5).run_drops(2)
        b = SnapshotSimulator(config, JabaSdScheduler("J1"), num_data_users_per_cell=3,
                              seed=5).run_drops(2)
        assert a.coverage == pytest.approx(b.coverage)
        assert np.allclose(a.per_user_rates_bps, b.per_user_rates_bps)

    def test_reverse_link_supported(self, config):
        result = SnapshotSimulator(config, JabaSdScheduler("J1"),
                                   num_data_users_per_cell=3,
                                   link=LinkDirection.REVERSE, seed=2).run_drops(2)
        assert result.grant_fraction > 0.0

    def test_more_users_less_coverage(self, config):
        light = SnapshotSimulator(config, JabaSdScheduler("J1"),
                                  num_data_users_per_cell=2, seed=3).run_drops(4)
        heavy = SnapshotSimulator(config, JabaSdScheduler("J1"),
                                  num_data_users_per_cell=16, seed=3).run_drops(4)
        assert heavy.coverage <= light.coverage + 1e-9

    def test_validation(self, config):
        with pytest.raises(ValueError):
            SnapshotSimulator(config, JabaSdScheduler("J1"), num_data_users_per_cell=0)
        with pytest.raises(ValueError):
            SnapshotSimulator(config, JabaSdScheduler("J1"), burst_size_bits=0.0)
        simulator = SnapshotSimulator(config, JabaSdScheduler("J1"))
        with pytest.raises(ValueError):
            simulator.run_drops(0)


class TestRunner:
    @pytest.fixture(scope="class")
    def scenario(self):
        return ScenarioConfig.fast_test(
            duration_s=2.0, warmup_s=0.5,
            traffic=TrafficConfig(mean_reading_time_s=1.0,
                                  packet_call_min_bits=24_000,
                                  packet_call_max_bits=200_000),
        )

    def test_run_scenario_multiple_seeds(self, scenario):
        results = run_scenario(scenario, lambda: JabaSdScheduler("J1"), num_seeds=2)
        assert len(results) == 2
        assert results[0].scheduler == results[1].scheduler

    def test_run_scenario_invalid_seeds(self, scenario):
        with pytest.raises(ValueError):
            run_scenario(scenario, FcfsScheduler, num_seeds=0)

    def test_sweep_parameter(self, scenario):
        sweep = sweep_parameter(
            scenario,
            {"jaba": lambda: JabaSdScheduler("J1"), "fcfs": FcfsScheduler},
            loads=[2, 3],
            num_seeds=1,
        )
        assert set(sweep) == {"jaba", "fcfs"}
        assert len(sweep["jaba"]) == 2
        assert sweep["jaba"][0].num_data_users == 2 * 7
        assert sweep["jaba"][1].num_data_users == 3 * 7
