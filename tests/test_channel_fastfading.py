"""Tests for the fast-fading models."""

import numpy as np
import pytest

from repro.channel.fastfading import (
    JakesFading,
    NoFading,
    RayleighBlockFading,
    doppler_frequency_hz,
    rayleigh_power_samples,
)


class TestDopplerFrequency:
    def test_typical_vehicular(self):
        # 30 km/h at 2 GHz -> ~55 Hz.
        fd = doppler_frequency_hz(8.33, 2.0e9)
        assert fd == pytest.approx(55.6, rel=0.02)

    def test_zero_speed(self):
        assert doppler_frequency_hz(0.0, 2.0e9) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            doppler_frequency_hz(-1.0, 2e9)
        with pytest.raises(ValueError):
            doppler_frequency_hz(1.0, 0.0)


class TestRayleighPowerSamples:
    def test_unit_mean(self):
        rng = np.random.default_rng(0)
        samples = rayleigh_power_samples(rng, 200_000)
        assert np.mean(samples) == pytest.approx(1.0, rel=0.02)

    def test_exponential_distribution(self):
        rng = np.random.default_rng(1)
        samples = rayleigh_power_samples(rng, 100_000)
        # P(X > 1) = exp(-1) for a unit-mean exponential.
        assert np.mean(samples > 1.0) == pytest.approx(np.exp(-1.0), abs=0.01)

    def test_invalid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            rayleigh_power_samples(rng, -1)
        with pytest.raises(ValueError):
            rayleigh_power_samples(rng, 10, mean=0.0)


class TestNoFading:
    def test_always_unity(self):
        fading = NoFading()
        assert fading.current_power() == 1.0
        assert fading.advance(1.0) == 1.0


class TestRayleighBlockFading:
    def test_unit_mean_power(self):
        rng = np.random.default_rng(3)
        fading = RayleighBlockFading(doppler_hz=100.0, rng=rng)
        powers = fading.sample_block_powers(dt_s=0.1, num_blocks=30_000)
        assert np.mean(powers) == pytest.approx(1.0, rel=0.05)

    def test_correlation_bounds(self):
        fading = RayleighBlockFading(doppler_hz=10.0, rng=np.random.default_rng(0))
        assert fading.correlation(0.0) == 1.0
        assert 0.0 <= fading.correlation(1.0) <= 1.0

    def test_zero_doppler_freezes_channel(self):
        fading = RayleighBlockFading(doppler_hz=0.0, rng=np.random.default_rng(0))
        first = fading.current_power()
        assert fading.advance(10.0) == pytest.approx(first)

    def test_slow_fading_is_correlated(self):
        rng = np.random.default_rng(5)
        fading = RayleighBlockFading(doppler_hz=1.0, rng=rng)
        powers = fading.sample_block_powers(dt_s=0.001, num_blocks=100)
        # Within a millisecond at 1 Hz Doppler the channel barely moves.
        assert np.std(np.diff(powers)) < 0.2

    def test_invalid(self):
        with pytest.raises(ValueError):
            RayleighBlockFading(doppler_hz=-1.0)
        fading = RayleighBlockFading(doppler_hz=1.0, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            fading.sample_block_powers(0.1, -2)


class TestJakesFading:
    def test_unit_mean_power_over_time(self):
        fading = JakesFading(doppler_hz=50.0, rng=np.random.default_rng(7))
        t = np.linspace(0.0, 20.0, 40_000)
        powers = fading.power(t)
        assert np.mean(powers) == pytest.approx(1.0, rel=0.15)

    def test_scalar_and_array_interfaces(self):
        fading = JakesFading(doppler_hz=10.0, rng=np.random.default_rng(0))
        scalar = fading.power(0.5)
        array = fading.power(np.array([0.5, 1.0]))
        assert isinstance(scalar, float)
        assert array.shape == (2,)
        assert array[0] == pytest.approx(scalar)

    def test_coherence_time(self):
        fading = JakesFading(doppler_hz=42.3, rng=np.random.default_rng(0))
        assert fading.coherence_time_s() == pytest.approx(0.01, rel=1e-3)

    def test_deterministic_given_seed(self):
        a = JakesFading(doppler_hz=10.0, rng=np.random.default_rng(9))
        b = JakesFading(doppler_hz=10.0, rng=np.random.default_rng(9))
        assert a.power(1.234) == pytest.approx(b.power(1.234))

    def test_invalid(self):
        with pytest.raises(ValueError):
            JakesFading(doppler_hz=0.0)
        with pytest.raises(ValueError):
            JakesFading(doppler_hz=10.0, num_oscillators=0)
