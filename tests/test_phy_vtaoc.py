"""Tests for the VTAOC adaptive codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.modes import ModeTable
from repro.phy.vtaoc import VtaocCodec, instantaneous_csi


class TestInstantaneousCsi:
    def test_product_form(self):
        assert instantaneous_csi(0.5, 10.0) == pytest.approx(5.0)

    def test_array(self):
        out = instantaneous_csi(np.array([0.5, 2.0]), 10.0)
        assert np.allclose(out, [5.0, 20.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            instantaneous_csi(-0.1, 1.0)


class TestModeSelection:
    def test_outage_below_first_threshold(self):
        codec = VtaocCodec()
        assert codec.select_mode(0.0) == 0
        assert codec.select_mode(codec.thresholds[0] * 0.99) == 0

    def test_mode_boundaries(self):
        codec = VtaocCodec()
        thresholds = codec.thresholds
        for q in range(1, codec.num_modes + 1):
            assert codec.select_mode(thresholds[q - 1]) == q
            if q < codec.num_modes:
                midpoint = 0.5 * (thresholds[q - 1] + thresholds[q])
                assert codec.select_mode(midpoint) == q

    def test_top_mode_at_high_csi(self):
        codec = VtaocCodec()
        assert codec.select_mode(1e6) == codec.num_modes

    def test_constant_ber_property(self):
        """In every mode region the BER never exceeds the target."""
        codec = VtaocCodec(target_ber=1e-3)
        for csi in np.linspace(codec.thresholds[0], codec.thresholds[-1] * 3, 500):
            assert codec.ber(float(csi)) <= 1e-3 * (1 + 1e-9)

    def test_instantaneous_throughput_steps(self):
        codec = VtaocCodec()
        csi = np.concatenate(([0.0], codec.thresholds * 1.001))
        throughput = codec.instantaneous_throughput(csi)
        assert throughput[0] == 0.0
        assert list(throughput[1:]) == codec.mode_table.throughputs()


class TestAverageThroughput:
    def test_zero_at_zero_csi(self):
        assert VtaocCodec().average_throughput(0.0) == 0.0

    def test_monotone_in_mean_csi(self):
        codec = VtaocCodec()
        means = np.linspace(0.1, 1000.0, 100)
        avg = codec.average_throughput(means)
        assert np.all(np.diff(avg) >= -1e-12)

    def test_saturates_at_max_mode(self):
        codec = VtaocCodec()
        assert codec.average_throughput(1e9) == pytest.approx(
            codec.max_throughput, rel=1e-6
        )

    def test_matches_monte_carlo(self):
        codec = VtaocCodec()
        rng = np.random.default_rng(0)
        for mean_db in (5.0, 12.0, 20.0):
            mean = 10 ** (mean_db / 10)
            closed = codec.average_throughput(mean)
            mc = codec.average_throughput_mc(mean, rng, num_samples=200_000)
            assert mc == pytest.approx(closed, rel=0.02)

    def test_mode_probabilities_sum_to_one(self):
        codec = VtaocCodec()
        for mean in (0.0, 1.0, 20.0, 500.0):
            probs = codec.mode_probabilities(mean)
            assert probs.shape == (codec.num_modes + 1,)
            assert probs.sum() == pytest.approx(1.0)
            assert np.all(probs >= 0.0)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.01, max_value=1e4))
    def test_average_bounded_by_extremes(self, mean_csi):
        codec = VtaocCodec()
        avg = codec.average_throughput(mean_csi)
        assert 0.0 <= avg <= codec.max_throughput

    def test_relative_average_throughput(self):
        codec = VtaocCodec()
        assert codec.relative_average_throughput(100.0, fch_throughput=2.0) == (
            pytest.approx(codec.average_throughput(100.0) / 2.0)
        )

    def test_outage_probability(self):
        codec = VtaocCodec()
        assert codec.outage_probability(0.0) == 1.0
        assert codec.outage_probability(1e9) < 1e-6

    def test_mean_csi_for_throughput_inverse(self):
        codec = VtaocCodec()
        target = 2.5
        mean = codec.mean_csi_for_throughput(target)
        assert codec.average_throughput(mean) == pytest.approx(target, rel=1e-4)

    def test_mean_csi_for_unreachable_throughput(self):
        codec = VtaocCodec()
        with pytest.raises(ValueError):
            codec.mean_csi_for_throughput(codec.max_throughput)


class TestConstruction:
    def test_custom_table(self):
        codec = VtaocCodec(mode_table=ModeTable.from_throughputs([0.5, 1.0]))
        assert codec.num_modes == 2

    def test_invalid_target_ber(self):
        with pytest.raises(ValueError):
            VtaocCodec(target_ber=0.5)

    def test_thresholds_are_copies(self):
        codec = VtaocCodec()
        thresholds = codec.thresholds
        thresholds[0] = -1.0
        assert codec.thresholds[0] > 0.0
