"""Tests for the bounded integer program container."""

import numpy as np
import pytest

from repro.opt.problem import BoundedIntegerProgram, IntegerSolution


def simple_problem():
    return BoundedIntegerProgram(
        objective=[3.0, 2.0],
        constraint_matrix=[[1.0, 1.0], [2.0, 0.5]],
        constraint_bounds=[4.0, 5.0],
        upper_bounds=[3, 3],
    )


class TestConstruction:
    def test_shapes(self):
        problem = simple_problem()
        assert problem.num_variables == 2
        assert problem.num_constraints == 2

    def test_rejects_negative_matrix(self):
        with pytest.raises(ValueError):
            BoundedIntegerProgram([1.0], [[-1.0]], [1.0], [1])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            BoundedIntegerProgram([1.0, 2.0], [[1.0]], [1.0], [1])
        with pytest.raises(ValueError):
            BoundedIntegerProgram([1.0], [[1.0]], [1.0, 2.0], [1])
        with pytest.raises(ValueError):
            BoundedIntegerProgram([1.0], [[1.0]], [1.0], [1, 2])

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            BoundedIntegerProgram([np.inf], [[1.0]], [1.0], [1])

    def test_negative_bounds_clamped(self):
        problem = BoundedIntegerProgram([1.0], [[1.0]], [-0.5], [4])
        assert problem.constraint_bounds[0] == 0.0

    def test_fractional_upper_bounds_floored(self):
        problem = BoundedIntegerProgram([1.0], [[1.0]], [10.0], [2.7])
        assert problem.upper_bounds[0] == 2

    def test_rejects_negative_upper_bounds(self):
        with pytest.raises(ValueError):
            BoundedIntegerProgram([1.0], [[1.0]], [1.0], [-1])


class TestEvaluation:
    def test_objective_value(self):
        problem = simple_problem()
        assert problem.objective_value([1, 2]) == pytest.approx(7.0)

    def test_feasibility(self):
        problem = simple_problem()
        assert problem.is_feasible([1, 1])
        assert not problem.is_feasible([3, 3])  # violates both constraints
        assert not problem.is_feasible([-1, 0])
        assert not problem.is_feasible([4, 0])  # above upper bound

    def test_slack(self):
        problem = simple_problem()
        slack = problem.slack([1, 1])
        assert np.allclose(slack, [2.0, 2.5])

    def test_max_increment(self):
        problem = simple_problem()
        values = np.zeros(2)
        # Variable 0 is limited by constraint 1 (2x <= 5 -> 2) and its bound 3.
        assert problem.max_increment(values, 0) == 2
        # Variable 1 is limited by its own bound.
        assert problem.max_increment(values, 1) == 3

    def test_max_increment_from_partial(self):
        problem = simple_problem()
        assert problem.max_increment(np.array([1.0, 0.0]), 0) == 1

    def test_search_space_size(self):
        assert simple_problem().search_space_size() == 16.0

    def test_wrong_length_rejected(self):
        problem = simple_problem()
        with pytest.raises(ValueError):
            problem.objective_value([1])
        with pytest.raises(ValueError):
            problem.is_feasible([1, 2, 3])


class TestMaxIncrements:
    def test_matches_scalar_oracle_randomized(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            num_vars = int(rng.integers(1, 9))
            num_constraints = int(rng.integers(1, 5))
            matrix = rng.uniform(0.0, 1.0, size=(num_constraints, num_vars))
            matrix[rng.random(matrix.shape) < 0.4] = 0.0
            problem = BoundedIntegerProgram(
                objective=rng.uniform(0.1, 2.0, size=num_vars),
                constraint_matrix=matrix,
                constraint_bounds=rng.uniform(0.5, 5.0, size=num_constraints),
                upper_bounds=rng.integers(0, 6, size=num_vars),
            )
            values = rng.integers(0, 3, size=num_vars).astype(float)
            batched = problem.max_increments(values)
            for index in range(num_vars):
                assert batched[index] == problem.max_increment(values, index)

    def test_unconstrained_problem_limited_by_box_only(self):
        problem = BoundedIntegerProgram(
            objective=[1.0, 2.0],
            constraint_matrix=np.zeros((0, 2)),
            constraint_bounds=np.zeros(0),
            upper_bounds=[3, 5],
        )
        assert np.array_equal(problem.max_increments(np.zeros(2)), [3, 5])

    def test_zero_column_variable_limited_by_box(self):
        problem = BoundedIntegerProgram(
            objective=[1.0, 1.0],
            constraint_matrix=[[1.0, 0.0]],
            constraint_bounds=[2.0],
            upper_bounds=[5, 4],
        )
        assert np.array_equal(problem.max_increments(np.zeros(2)), [2, 4])

    def test_rooms_never_recover_as_values_grow(self):
        """The monotonicity the batched greedy prune relies on."""
        rng = np.random.default_rng(12)
        matrix = rng.uniform(0.0, 1.0, size=(3, 5))
        problem = BoundedIntegerProgram(
            objective=np.ones(5),
            constraint_matrix=matrix,
            constraint_bounds=rng.uniform(1.0, 4.0, size=3),
            upper_bounds=np.full(5, 6),
        )
        values = np.zeros(5)
        rooms = problem.max_increments(values)
        values[0] += rooms[0]
        shrunk = problem.max_increments(values)
        assert np.all(shrunk[1:] <= rooms[1:])


class TestIntegerSolution:
    def test_values_are_int_copies(self):
        values = np.array([1.0, 2.0])
        solution = IntegerSolution(values=values, objective=3.0, optimal=True)
        assert solution.values.dtype.kind == "i"
        values[0] = 9
        assert solution.values[0] == 1
