"""Tests for the bounded integer program container."""

import numpy as np
import pytest

from repro.opt.problem import BoundedIntegerProgram, IntegerSolution


def simple_problem():
    return BoundedIntegerProgram(
        objective=[3.0, 2.0],
        constraint_matrix=[[1.0, 1.0], [2.0, 0.5]],
        constraint_bounds=[4.0, 5.0],
        upper_bounds=[3, 3],
    )


class TestConstruction:
    def test_shapes(self):
        problem = simple_problem()
        assert problem.num_variables == 2
        assert problem.num_constraints == 2

    def test_rejects_negative_matrix(self):
        with pytest.raises(ValueError):
            BoundedIntegerProgram([1.0], [[-1.0]], [1.0], [1])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            BoundedIntegerProgram([1.0, 2.0], [[1.0]], [1.0], [1])
        with pytest.raises(ValueError):
            BoundedIntegerProgram([1.0], [[1.0]], [1.0, 2.0], [1])
        with pytest.raises(ValueError):
            BoundedIntegerProgram([1.0], [[1.0]], [1.0], [1, 2])

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            BoundedIntegerProgram([np.inf], [[1.0]], [1.0], [1])

    def test_negative_bounds_clamped(self):
        problem = BoundedIntegerProgram([1.0], [[1.0]], [-0.5], [4])
        assert problem.constraint_bounds[0] == 0.0

    def test_fractional_upper_bounds_floored(self):
        problem = BoundedIntegerProgram([1.0], [[1.0]], [10.0], [2.7])
        assert problem.upper_bounds[0] == 2

    def test_rejects_negative_upper_bounds(self):
        with pytest.raises(ValueError):
            BoundedIntegerProgram([1.0], [[1.0]], [1.0], [-1])


class TestEvaluation:
    def test_objective_value(self):
        problem = simple_problem()
        assert problem.objective_value([1, 2]) == pytest.approx(7.0)

    def test_feasibility(self):
        problem = simple_problem()
        assert problem.is_feasible([1, 1])
        assert not problem.is_feasible([3, 3])  # violates both constraints
        assert not problem.is_feasible([-1, 0])
        assert not problem.is_feasible([4, 0])  # above upper bound

    def test_slack(self):
        problem = simple_problem()
        slack = problem.slack([1, 1])
        assert np.allclose(slack, [2.0, 2.5])

    def test_max_increment(self):
        problem = simple_problem()
        values = np.zeros(2)
        # Variable 0 is limited by constraint 1 (2x <= 5 -> 2) and its bound 3.
        assert problem.max_increment(values, 0) == 2
        # Variable 1 is limited by its own bound.
        assert problem.max_increment(values, 1) == 3

    def test_max_increment_from_partial(self):
        problem = simple_problem()
        assert problem.max_increment(np.array([1.0, 0.0]), 0) == 1

    def test_search_space_size(self):
        assert simple_problem().search_space_size() == 16.0

    def test_wrong_length_rejected(self):
        problem = simple_problem()
        with pytest.raises(ValueError):
            problem.objective_value([1])
        with pytest.raises(ValueError):
            problem.is_feasible([1, 2, 3])


class TestIntegerSolution:
    def test_values_are_int_copies(self):
        values = np.array([1.0, 2.0])
        solution = IntegerSolution(values=values, objective=3.0, optimal=True)
        assert solution.values.dtype.kind == "i"
        values[0] = 9
        assert solution.values[0] == 1
