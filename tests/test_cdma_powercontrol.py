"""Tests for the forward/reverse power-control solvers."""

import numpy as np
import pytest

from repro.cdma.powercontrol import ForwardLinkPowerControl, ReverseLinkPowerControl


def two_cell_gains():
    """Two mobiles, two cells; mobile j is close to cell j."""
    return np.array([[1e-12, 1e-14], [1e-14, 1e-12]])


class TestReverseLinkPowerControl:
    def make(self, **kwargs):
        defaults = dict(processing_gain=128.0, ebio_target=5.0, pilot_overhead=0.25,
                        max_tx_power_w=0.2, iterations=50)
        defaults.update(kwargs)
        return ReverseLinkPowerControl(**defaults)

    def test_targets_met_in_light_load(self):
        pc = self.make()
        gains = two_cell_gains()
        result = pc.solve(
            gains=gains,
            serving_cells=np.array([0, 1]),
            active=np.array([True, True]),
            noise_power_w=np.full(2, 1e-13),
        )
        assert np.all(result.achieved_sir >= 5.0 * 0.99)
        assert not result.power_limited.any()
        assert np.all(result.tx_power_w > 0.0)

    def test_inactive_mobile_transmits_nothing(self):
        pc = self.make()
        result = pc.solve(
            gains=two_cell_gains(),
            serving_cells=np.array([0, 1]),
            active=np.array([True, False]),
            noise_power_w=np.full(2, 1e-13),
        )
        assert result.tx_power_w[1] == 0.0
        assert np.isnan(result.achieved_sir[1])

    def test_total_power_includes_noise_and_extra(self):
        pc = self.make()
        extra = np.array([5e-13, 0.0])
        result = pc.solve(
            gains=two_cell_gains(),
            serving_cells=np.array([0, 1]),
            active=np.array([False, False]),
            noise_power_w=np.full(2, 1e-13),
            extra_received_power_w=extra,
        )
        assert result.total_power_w[0] == pytest.approx(6e-13)
        assert result.total_power_w[1] == pytest.approx(1e-13)

    def test_power_limited_mobile_flagged(self):
        pc = self.make(max_tx_power_w=1e-6)
        # Very weak link: even the maximum power cannot reach the target.
        gains = np.array([[1e-16, 1e-18]])
        result = pc.solve(
            gains=gains,
            serving_cells=np.array([0]),
            active=np.array([True]),
            noise_power_w=np.full(2, 1e-13),
        )
        assert result.power_limited[0]
        assert result.achieved_sir[0] < 5.0

    def test_rate_factor_reduces_power(self):
        pc = self.make()
        gains = two_cell_gains()
        full = pc.solve(gains, np.array([0, 1]), np.array([True, True]),
                        np.full(2, 1e-13), rate_factor=np.array([1.0, 1.0]))
        eighth = pc.solve(gains, np.array([0, 1]), np.array([True, True]),
                          np.full(2, 1e-13), rate_factor=np.array([0.125, 0.125]))
        assert np.all(eighth.tx_power_w < full.tx_power_w)
        # Both still achieve the Eb/Io target at their own rate.
        assert np.all(eighth.achieved_sir >= 5.0 * 0.99)

    def test_interference_coupling_raises_power(self):
        """More active users per cell -> each needs more transmit power."""
        pc = self.make()
        gains_single = np.array([[1e-12, 1e-14]])
        single = pc.solve(gains_single, np.array([0]), np.array([True]),
                          np.full(2, 1e-13))
        gains_many = np.vstack([gains_single] * 8)
        many = pc.solve(gains_many, np.zeros(8, dtype=int), np.full(8, True),
                        np.full(2, 1e-13))
        assert many.tx_power_w[0] > single.tx_power_w[0]

    def test_rate_factor_validation(self):
        pc = self.make()
        with pytest.raises(ValueError):
            pc.solve(two_cell_gains(), np.array([0, 1]), np.array([True, True]),
                     np.full(2, 1e-13), rate_factor=np.array([0.0, 1.0]))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ReverseLinkPowerControl(processing_gain=0.0, ebio_target=5.0)
        with pytest.raises(ValueError):
            ReverseLinkPowerControl(processing_gain=128.0, ebio_target=5.0,
                                    pilot_overhead=-0.1)
        with pytest.raises(ValueError):
            ReverseLinkPowerControl(processing_gain=128.0, ebio_target=5.0, iterations=0)


class TestForwardLinkPowerControl:
    def make(self, **kwargs):
        defaults = dict(processing_gain=128.0, ebio_target=5.0, orthogonality_factor=0.6,
                        mobile_noise_power_w=1e-13, iterations=50)
        defaults.update(kwargs)
        return ForwardLinkPowerControl(**defaults)

    def solve_basic(self, pc, gains, active_set=None, active=None, **kwargs):
        num_mobiles, num_cells = gains.shape
        if active_set is None:
            active_set = np.zeros_like(gains, dtype=bool)
            active_set[np.arange(num_mobiles), np.argmax(gains, axis=1)] = True
        if active is None:
            active = np.full(num_mobiles, True)
        return pc.solve(
            gains=gains,
            active_set=active_set,
            active=active,
            base_power_w=np.full(num_cells, 2.0),
            max_traffic_power_w=np.full(num_cells, 16.0),
            **kwargs,
        )

    def test_targets_met_in_light_load(self):
        pc = self.make()
        result = self.solve_basic(pc, two_cell_gains())
        assert np.all(result.achieved_sir >= 5.0 * 0.99)
        assert not result.power_limited.any()

    def test_edge_user_costs_more(self):
        pc = self.make()
        gains = np.array([[1e-12, 1e-13], [2e-14, 1.5e-14]])  # user 1 at cell edge
        result = self.solve_basic(pc, gains)
        assert result.tx_power_w[1].sum() > result.tx_power_w[0].sum()

    def test_soft_handoff_splits_power_across_legs(self):
        pc = self.make()
        gains = np.array([[5e-13, 5e-13]])
        active_set = np.array([[True, True]])
        result = self.solve_basic(pc, gains, active_set=active_set)
        assert result.tx_power_w[0, 0] > 0.0
        assert result.tx_power_w[0, 1] > 0.0
        assert np.all(result.achieved_sir >= 5.0 * 0.99)

    def test_budget_scaling_flags_outage(self):
        pc = self.make()
        # Many far users exceed the per-cell budget.
        gains = np.full((200, 1), 3e-15)
        active_set = np.full((200, 1), True)
        result = pc.solve(
            gains=gains,
            active_set=active_set,
            active=np.full(200, True),
            base_power_w=np.array([2.0]),
            max_traffic_power_w=np.array([16.0]),
        )
        traffic_power = result.tx_power_w.sum()
        assert traffic_power <= 16.0 + 1e-6
        assert result.power_limited.any()

    def test_extra_traffic_power_reduces_headroom(self):
        pc = self.make()
        gains = two_cell_gains()
        no_extra = self.solve_basic(pc, gains)
        with_extra = self.solve_basic(
            pc, gains, extra_traffic_power_w=np.array([5.0, 0.0])
        )
        assert with_extra.total_power_w[0] > no_extra.total_power_w[0]
        # The higher interference makes the FCH allocations grow as well.
        assert with_extra.tx_power_w.sum() > no_extra.tx_power_w.sum()

    def test_per_link_cap(self):
        pc = self.make()
        gains = np.array([[1e-15, 1e-16]])
        result = self.solve_basic(pc, gains, max_link_power_w=0.1)
        assert result.tx_power_w.max() <= 0.1 + 1e-12
        assert result.power_limited[0]

    def test_rate_factor_reduces_allocation(self):
        pc = self.make()
        gains = two_cell_gains()
        full = self.solve_basic(pc, gains, rate_factor=np.array([1.0, 1.0]))
        eighth = self.solve_basic(pc, gains, rate_factor=np.array([0.125, 0.125]))
        assert eighth.tx_power_w.sum() < full.tx_power_w.sum()
        assert np.all(eighth.achieved_sir >= 5.0 * 0.99)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ForwardLinkPowerControl(processing_gain=128.0, ebio_target=5.0,
                                    orthogonality_factor=1.5)
        with pytest.raises(ValueError):
            ForwardLinkPowerControl(processing_gain=128.0, ebio_target=5.0,
                                    mobile_noise_power_w=0.0)


class TestWarmStart:
    """Warm-started solves: same fixed point, fewer (or equal) iterations."""

    def _reverse(self, iterations=300, tolerance=1e-10):
        return ReverseLinkPowerControl(
            processing_gain=128.0, ebio_target=5.0, pilot_overhead=0.25,
            max_tx_power_w=0.2, iterations=iterations, tolerance=tolerance,
        )

    def _forward(self, iterations=300, tolerance=1e-10):
        return ForwardLinkPowerControl(
            processing_gain=128.0, ebio_target=5.0, orthogonality_factor=0.6,
            mobile_noise_power_w=1e-13, iterations=iterations, tolerance=tolerance,
        )

    def _random_scenario(self, seed, num_mobiles=24, num_cells=4):
        rng = np.random.default_rng(seed)
        gains = 10.0 ** rng.uniform(-14.0, -11.0, size=(num_mobiles, num_cells))
        serving = np.argmax(gains, axis=1)
        active_set = np.zeros_like(gains, dtype=bool)
        active_set[np.arange(num_mobiles), serving] = True
        # Some users in two-leg soft hand-off.
        second = np.argsort(gains, axis=1)[:, -2]
        soft = rng.random(num_mobiles) < 0.3
        active_set[np.flatnonzero(soft), second[soft]] = True
        active = rng.random(num_mobiles) < 0.85
        rate = np.where(rng.random(num_mobiles) < 0.3, 0.125, 1.0)
        return gains, serving, active_set, active, rate

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reverse_warm_start_reaches_same_fixed_point(self, seed):
        pc = self._reverse()
        gains, serving, _, active, rate = self._random_scenario(seed)
        noise = np.full(gains.shape[1], 1e-13)
        cold = pc.solve(gains, serving, active, noise, rate_factor=rate)
        warm = pc.solve(
            gains, serving, active, noise, rate_factor=rate,
            initial_total_power_w=cold.total_power_w,
        )
        np.testing.assert_allclose(
            warm.tx_power_w, cold.tx_power_w, rtol=1e-6, atol=0.0
        )
        np.testing.assert_allclose(
            warm.total_power_w, cold.total_power_w, rtol=1e-6, atol=0.0
        )
        assert warm.iterations <= cold.iterations

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_forward_warm_start_reaches_same_fixed_point(self, seed):
        pc = self._forward()
        gains, _, active_set, active, rate = self._random_scenario(seed)
        num_cells = gains.shape[1]
        kwargs = dict(
            active_set=active_set,
            active=active,
            base_power_w=np.full(num_cells, 2.0),
            max_traffic_power_w=np.full(num_cells, 16.0),
            rate_factor=rate,
        )
        cold = pc.solve(gains=gains, **kwargs)
        warm = pc.solve(
            gains=gains, initial_total_power_w=cold.total_power_w, **kwargs
        )
        np.testing.assert_allclose(
            warm.total_power_w, cold.total_power_w, rtol=1e-6, atol=0.0
        )
        np.testing.assert_allclose(
            warm.tx_power_w, cold.tx_power_w, rtol=1e-6, atol=1e-18
        )
        assert warm.iterations <= cold.iterations

    def test_warm_start_from_perturbed_solution_converges(self):
        """A stale (previous-frame-like) guess still lands on the fixed point."""
        pc = self._reverse()
        gains, serving, _, active, rate = self._random_scenario(3)
        noise = np.full(gains.shape[1], 1e-13)
        cold = pc.solve(gains, serving, active, noise, rate_factor=rate)
        stale = cold.total_power_w * 1.05  # ~a frame's worth of drift
        warm = pc.solve(
            gains, serving, active, noise, rate_factor=rate,
            initial_total_power_w=stale,
        )
        np.testing.assert_allclose(
            warm.total_power_w, cold.total_power_w, rtol=1e-6, atol=0.0
        )

    def _saturated_committed_power_scenario(self):
        """Cell 0 saturates its traffic budget *with* committed SCH power."""
        rng = np.random.default_rng(7)
        weak = np.column_stack(
            [10 ** rng.uniform(-14.5, -14.0, 40), 10 ** rng.uniform(-16.0, -15.5, 40)]
        )
        light = np.column_stack(
            [10 ** rng.uniform(-16.0, -15.5, 6), 10 ** rng.uniform(-12.5, -12.0, 6)]
        )
        gains = np.vstack([weak, light])
        num_mobiles = gains.shape[0]
        serving = np.argmax(gains, axis=1)
        active_set = np.zeros_like(gains, dtype=bool)
        active_set[np.arange(num_mobiles), serving] = True
        kwargs = dict(
            active_set=active_set,
            active=np.full(num_mobiles, True),
            base_power_w=np.full(2, 2.0),
            max_traffic_power_w=np.full(2, 16.0),
            extra_traffic_power_w=np.array([8.0, 0.0]),
        )
        return gains, serving, kwargs

    def test_forward_seed_exact_for_saturated_cell_with_committed_power(self):
        """Regression: the direct seed models ``extra_traffic_power_w`` exactly.

        With committed SCH burst power the proportional down-scaling of a
        saturated cell converges to ``base + extra + budget*s/(s+extra)``,
        *not* to ``base + budget`` (the former approximation, off by ~25%
        in this scenario).  The seed must land on the Yates fixed point so
        the warm-started solve only certifies.
        """
        from repro.cdma.powercontrol import _forward_direct_seed

        pc = self._forward(iterations=500, tolerance=1e-12)
        gains, serving, kwargs = self._saturated_committed_power_scenario()
        cold = pc.solve(gains=gains, **kwargs)
        extra = kwargs["extra_traffic_power_w"]
        budget = kwargs["max_traffic_power_w"]
        traffic = cold.tx_power_w.sum(axis=0)
        # The scenario must actually exercise the regression: cell 0
        # saturated with nonzero committed power, totals beyond base+budget.
        assert traffic[0] + extra[0] >= budget[0] - 1e-9
        assert cold.total_power_w[0] > kwargs["base_power_w"][0] + budget[0] + 1.0

        num_mobiles = gains.shape[0]
        active_set = kwargs["active_set"]
        seed = _forward_direct_seed(
            gains=gains,
            serving=serving,
            allocatable=active_set & kwargs["active"][:, np.newaxis] & (gains > 0.0),
            q=pc.ebio_target * np.ones(num_mobiles) / pc.processing_gain,
            legs=np.maximum(active_set.sum(axis=1), 1),
            own_fraction=1.0 - pc.orthogonality_factor,
            mobile_noise_power_w=pc.mobile_noise_power_w,
            base_extra=kwargs["base_power_w"] + extra,
            budget=budget,
            extra=extra,
            max_link_power_w=None,
            initial=cold.total_power_w * 1.05,
        )
        np.testing.assert_allclose(seed, cold.total_power_w, rtol=1e-8)

    def test_forward_warm_start_with_committed_power_certifies_quickly(self):
        pc = self._forward(iterations=500, tolerance=1e-12)
        gains, _, kwargs = self._saturated_committed_power_scenario()
        cold = pc.solve(gains=gains, **kwargs)
        warm = pc.solve(
            gains=gains, initial_total_power_w=cold.total_power_w * 1.05, **kwargs
        )
        np.testing.assert_allclose(
            warm.total_power_w, cold.total_power_w, rtol=1e-9, atol=0.0
        )
        # An exact pin leaves the Yates loop only the certification passes.
        assert warm.iterations <= 5 < cold.iterations

    def test_negative_initial_guess_rejected(self):
        pc = self._reverse(iterations=10, tolerance=1e-6)
        gains = two_cell_gains()
        with pytest.raises(ValueError):
            pc.solve(
                gains, np.array([0, 1]), np.array([True, True]),
                np.full(2, 1e-13), initial_total_power_w=np.array([-1.0, 1e-13]),
            )
        fpc = self._forward(iterations=10, tolerance=1e-6)
        with pytest.raises(ValueError):
            fpc.solve(
                gains=gains,
                active_set=np.eye(2, dtype=bool),
                active=np.array([True, True]),
                base_power_w=np.full(2, 2.0),
                max_traffic_power_w=np.full(2, 16.0),
                initial_total_power_w=np.array([-1.0, 2.0]),
            )

    def test_cold_start_unaffected_by_warm_support(self):
        """Cold solves ignore the warm machinery entirely (same result twice)."""
        pc = self._reverse(iterations=40, tolerance=1e-6)
        gains, serving, _, active, rate = self._random_scenario(4)
        noise = np.full(gains.shape[1], 1e-13)
        first = pc.solve(gains, serving, active, noise, rate_factor=rate)
        second = pc.solve(gains, serving, active, noise, rate_factor=rate)
        assert np.array_equal(first.tx_power_w, second.tx_power_w)
        assert first.iterations == second.iterations


class TestCappedWarmSolveConsistency:
    """An iteration-capped warm solve still returns a consistent pair."""

    def test_reverse_totals_consistent_with_tx_at_cap(self):
        pc = ReverseLinkPowerControl(
            processing_gain=128.0, ebio_target=5.0, pilot_overhead=0.25,
            max_tx_power_w=0.2, iterations=4, tolerance=1e-12,
        )
        rng = np.random.default_rng(8)
        gains = 10.0 ** rng.uniform(-14.0, -11.0, size=(30, 3))
        serving = np.argmax(gains, axis=1)
        active = np.full(30, True)
        noise = np.full(3, 1e-13)
        warm = pc.solve(
            gains, serving, active, noise,
            initial_total_power_w=np.full(3, 5e-13),
        )
        assert warm.iterations <= 4
        overhead = 1.0 + pc.pilot_overhead
        recomputed = noise + (gains * (warm.tx_power_w * overhead)[:, None]).sum(
            axis=0
        )
        np.testing.assert_allclose(warm.total_power_w, recomputed, rtol=1e-12)

    def test_forward_totals_consistent_with_alloc_at_cap(self):
        pc = ForwardLinkPowerControl(
            processing_gain=128.0, ebio_target=5.0, orthogonality_factor=0.6,
            mobile_noise_power_w=1e-13, iterations=4, tolerance=1e-12,
        )
        rng = np.random.default_rng(9)
        gains = 10.0 ** rng.uniform(-14.0, -11.0, size=(30, 3))
        active_set = np.zeros_like(gains, dtype=bool)
        active_set[np.arange(30), np.argmax(gains, axis=1)] = True
        base = np.full(3, 2.0)
        warm = pc.solve(
            gains=gains,
            active_set=active_set,
            active=np.full(30, True),
            base_power_w=base,
            max_traffic_power_w=np.full(3, 16.0),
            initial_total_power_w=np.full(3, 3.0),
        )
        assert warm.iterations <= 4
        recomputed = base + warm.tx_power_w.sum(axis=0)
        np.testing.assert_allclose(warm.total_power_w, recomputed, rtol=1e-12)
