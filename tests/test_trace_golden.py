"""Golden regression of the telemetry event stream.

A short seeded dynamic run's full event trace — normalized by dropping the
wall-clock timing fields (:data:`repro.utils.recorder.WALL_CLOCK_FIELDS`),
which are the only nondeterministic ones — is locked against a checked-in
snapshot for both the scalar and the batched-fleet pipeline.  The goldens
pin event order, kinds, sim-times, per-frame state and admission outcomes
bit for bit, so any change to what the hooks emit (or when) is a visible,
reviewed diff.  Intentional changes regenerate with::

    PYTHONPATH=src python tests/test_trace_golden.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.mac import JabaSdScheduler
from repro.simulation import DynamicSystemSimulator, ScenarioConfig
from repro.simulation.scenario import TrafficConfig
from repro.utils.recorder import (
    EventRecorder,
    MemorySink,
    RecorderHooks,
    normalize_event,
    validate_event,
)

DATA_DIR = Path(__file__).resolve().parent / "data"
GOLDEN_PATHS = {
    False: DATA_DIR / "golden_trace_scalar.json",
    True: DATA_DIR / "golden_trace_fleet.json",
}


def trace_scenario(batched_fleet: bool) -> ScenarioConfig:
    """20 frames with enough traffic to exercise every event kind."""
    return ScenarioConfig.fast_test(
        duration_s=0.3,
        warmup_s=0.1,
        batched_fleet=batched_fleet,
        traffic=TrafficConfig(
            mean_reading_time_s=1.0,
            packet_call_min_bits=24_000,
            packet_call_max_bits=200_000,
        ),
    )


def record_trace(batched_fleet: bool) -> list:
    """Raw event stream of one seeded run (normalize before comparing)."""
    sink = MemorySink()
    simulator = DynamicSystemSimulator(
        trace_scenario(batched_fleet),
        JabaSdScheduler("J1"),
        hooks=RecorderHooks(EventRecorder(sink)),
    )
    simulator.run()
    return sink.events


@pytest.mark.parametrize(
    "batched_fleet", [False, True], ids=["scalar", "batched_fleet"]
)
class TestTraceGolden:
    def test_trace_matches_golden(self, batched_fleet):
        golden_path = GOLDEN_PATHS[batched_fleet]
        if not golden_path.exists():  # pragma: no cover - bootstrap guard
            pytest.fail(
                f"missing golden {golden_path.name}; regenerate with "
                "PYTHONPATH=src python tests/test_trace_golden.py --regen"
            )
        golden = json.loads(golden_path.read_text())
        trace = [normalize_event(event) for event in record_trace(batched_fleet)]
        assert len(trace) == len(golden["events"])
        for index, (got, want) in enumerate(zip(trace, golden["events"])):
            assert got == want, f"event {index} diverged from golden"

    def test_trace_is_schema_valid_and_ordered(self, batched_fleet):
        trace = record_trace(batched_fleet)
        for event in trace:
            assert validate_event(event) == []
        assert [event["seq"] for event in trace] == list(range(len(trace)))
        times = [event["time_s"] for event in trace]
        assert all(a <= b for a, b in zip(times, times[1:]))
        kinds = {event["kind"] for event in trace}
        assert {"run_start", "stage_enter", "stage_exit", "frame",
                "admission", "run_end"} <= kinds


def _regen() -> None:  # pragma: no cover - manual tool
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    for batched_fleet, path in GOLDEN_PATHS.items():
        trace = [normalize_event(event) for event in record_trace(batched_fleet)]
        payload = {
            "scenario": "fast_test duration_s=0.3 warmup_s=0.1 "
            f"batched_fleet={batched_fleet}",
            "events": trace,
        }
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {path} ({len(trace)} events)")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
