"""Tests for the assembled CDMA network substrate."""

import numpy as np
import pytest

from repro.cdma.entities import MobileStation, UserClass
from repro.cdma.network import CdmaNetwork
from repro.config import SystemConfig
from repro.geometry.hexgrid import HexagonalCellLayout
from repro.geometry.mobility import RandomDirectionMobility


def build_network(num_data=6, num_voice=6, seed=0, config=None):
    config = config or SystemConfig.small_test_system()
    layout = HexagonalCellLayout(config.radio.num_rings, config.radio.cell_radius_m)
    rng = np.random.default_rng(seed)
    bounds = layout.bounding_box()
    mobiles = []
    for i in range(num_data + num_voice):
        position = layout.random_position(rng)
        mobiles.append(
            MobileStation(
                index=i,
                user_class=UserClass.DATA if i < num_data else UserClass.VOICE,
                mobility=RandomDirectionMobility(position, bounds, rng=rng),
            )
        )
    return CdmaNetwork(config, mobiles, rng, layout), config


class TestCdmaNetworkBasics:
    def test_dimensions(self):
        network, _ = build_network()
        assert network.num_cells == 7
        assert network.num_mobiles == 12
        assert len(network.data_mobile_indices()) == 6
        assert len(network.voice_mobile_indices()) == 6

    def test_snapshot_shapes(self):
        network, _ = build_network()
        snapshot = network.snapshot()
        assert snapshot.gains.shape == (12, 7)
        assert snapshot.forward_load.fch_power_w.shape == (12, 7)
        assert snapshot.reverse_load.reverse_pilot_strength.shape == (12, 7)
        assert snapshot.sch_mean_csi_forward.shape == (12,)
        assert len(snapshot.handoff_states) == 12
        assert snapshot.num_mobiles == 12
        assert snapshot.num_cells == 7

    def test_step_advances_time(self):
        network, _ = build_network()
        assert network.time_s == 0.0
        network.step(0.02)
        assert network.time_s == pytest.approx(0.02)
        network.advance(0.02)
        assert network.time_s == pytest.approx(0.04)

    def test_negative_dt_rejected(self):
        network, _ = build_network()
        with pytest.raises(ValueError):
            network.advance(-0.1)

    def test_loading_within_budgets_at_light_load(self):
        network, config = build_network(num_data=4, num_voice=4)
        snapshot = network.snapshot()
        budget = config.radio.bs_max_tx_power_w * (
            1.0 - config.radio.bs_common_channel_fraction
        )
        assert np.all(snapshot.forward_load.current_power_w <= budget + 1e-9)
        assert np.all(snapshot.forward_load.headroom_w() >= 0.0)
        assert np.all(snapshot.reverse_load.current_interference_w > 0.0)

    def test_sch_csi_bounded_by_reference(self):
        network, config = build_network()
        snapshot = network.snapshot()
        reference = config.phy.sch_reference_csi
        assert np.all(snapshot.sch_mean_csi_forward <= reference + 1e-9)
        assert np.all(snapshot.sch_mean_csi_reverse <= reference + 1e-9)
        assert np.all(snapshot.sch_mean_csi_forward >= 0.0)

    def test_serving_cell_is_in_active_set(self):
        network, _ = build_network()
        snapshot = network.snapshot()
        for state in snapshot.handoff_states:
            assert state.serving_cell in state.active_set
            assert set(state.reduced_active_set).issubset(set(state.active_set))


class TestBurstPowerBookkeeping:
    def test_commit_and_release_forward(self):
        network, _ = build_network()
        before = network.snapshot().forward_load.current_power_w[0]
        network.commit_forward_burst_power(0, 2.0)
        during = network.snapshot().forward_load.current_power_w[0]
        assert during >= before + 2.0 - 1e-6
        network.release_forward_burst_power(0, 2.0)
        after = network.snapshot().forward_load.current_power_w[0]
        assert after == pytest.approx(before, rel=0.05)

    def test_commit_and_release_reverse(self):
        network, _ = build_network()
        base = network.snapshot().reverse_load.current_interference_w[0]
        network.commit_reverse_burst_power(0, base)  # double the interference
        during = network.snapshot().reverse_load.current_interference_w[0]
        assert during > base
        network.release_reverse_burst_power(0, base)
        after = network.snapshot().reverse_load.current_interference_w[0]
        assert after == pytest.approx(base, rel=0.1)

    def test_release_never_goes_negative(self):
        network, _ = build_network()
        network.release_forward_burst_power(0, 100.0)
        assert network.forward_burst_power_w[0] == 0.0
        network.release_reverse_burst_power(0, 100.0)
        assert network.reverse_burst_power_w[0] == 0.0

    def test_negative_commit_rejected(self):
        network, _ = build_network()
        with pytest.raises(ValueError):
            network.commit_forward_burst_power(0, -1.0)
        with pytest.raises(ValueError):
            network.commit_reverse_burst_power(0, -1.0)

    def test_forward_burst_power_raises_interference_and_lowers_quality(self):
        network, config = build_network(num_data=8, num_voice=8)
        clean = network.snapshot()
        # Commit a large burst in every cell and observe the FCH allocations rise.
        for k in range(network.num_cells):
            network.commit_forward_burst_power(k, 6.0)
        loaded = network.snapshot()
        assert loaded.forward_load.current_power_w.sum() > clean.forward_load.current_power_w.sum()
        assert np.nanmean(loaded.forward_pc.achieved_sir) <= np.nanmean(
            clean.forward_pc.achieved_sir
        ) * 1.01


class TestMobility:
    def test_users_move_and_gains_change(self):
        network, _ = build_network()
        before = network.snapshot().gains.copy()
        for _ in range(50):
            network.advance(0.1)
        after = network.snapshot().gains
        assert not np.allclose(before, after)

    def test_handoff_events_accumulate(self):
        network, _ = build_network(num_data=10, num_voice=10, seed=3)
        for _ in range(200):
            network.advance(0.1)
        assert network.handoff.handoff_events > 0


class TestFramePipelineRegressions:
    """Guards for the vectorised structure-of-arrays frame pipeline."""

    def test_one_gain_build_per_step(self):
        # Hand-off update and snapshot share a single local-mean gain build
        # per frame (the 10**(dB/10) matrix used to be computed twice).
        network, _ = build_network()
        network.snapshot()
        builds = network.link_gains.local_mean_builds
        network.step(0.02)
        assert network.link_gains.local_mean_builds == builds + 1
        network.step(0.02)
        assert network.link_gains.local_mean_builds == builds + 2

    def test_mobile_index_caches(self):
        network, _ = build_network(num_data=3, num_voice=5)
        first = network.data_mobile_indices()
        assert network.data_mobile_indices() is first  # cached, not rebuilt
        assert list(first) == [0, 1, 2]
        assert list(network.voice_mobile_indices()) == [3, 4, 5, 6, 7]
        with pytest.raises(ValueError):
            first[0] = 99  # read-only view

    def test_fch_state_write_through(self):
        # The MAC layer toggles FCH activity by plain attribute assignment;
        # the network's arrays must observe it without re-scanning mobiles.
        network, _ = build_network()
        network.mobiles[0].fch_active = False
        network.mobiles[1].fch_rate_factor = 0.125
        snapshot = network.snapshot()
        assert np.isnan(snapshot.forward_pc.achieved_sir[0])
        assert snapshot.reverse_pc.tx_power_w[0] == 0.0
        # A low-rate control channel needs less power than a full-rate FCH.
        network.mobiles[1].fch_rate_factor = 1.0
        full = network.snapshot()
        assert (
            snapshot.reverse_pc.tx_power_w[1] < full.reverse_pc.tx_power_w[1]
        )

    def test_bulk_fch_write_back_parity(self):
        # The bulk writer must leave entities, its own arrays and any other
        # observing network in exactly the state per-attribute writes produce.
        network, _ = build_network(num_data=5, num_voice=5, seed=3)
        twin, _ = build_network(num_data=5, num_voice=5, seed=3)
        rng = np.random.default_rng(42)
        indices = np.arange(10)
        active = rng.random(10) < 0.5
        rate = np.where(rng.random(10) < 0.5, 1.0, 0.125)

        network.set_fch_state(indices, active, rate)
        for j in indices:
            twin.mobiles[j].fch_active = bool(active[j])
            twin.mobiles[j].fch_rate_factor = float(rate[j])

        assert np.array_equal(network._fch_active_mask(), twin._fch_active_mask())
        assert np.array_equal(network._fch_rate_factors(), twin._fch_rate_factors())
        for m_bulk, m_scalar in zip(network.mobiles, twin.mobiles):
            assert m_bulk.fch_active == m_scalar.fch_active
            assert m_bulk.fch_rate_factor == m_scalar.fch_rate_factor

    def test_bulk_fch_write_back_skips_observer_dispatch(self, monkeypatch):
        # Before: every changed mobile paid two observed attribute writes
        # (the ~50 ms first-frame transient at J=1e5).  After: the bulk
        # writer performs zero observer dispatches when this network is the
        # only observer.
        network, _ = build_network(num_data=5, num_voice=5, seed=3)
        calls = []
        original = MobileStation._notify_fch_observers
        monkeypatch.setattr(
            MobileStation,
            "_notify_fch_observers",
            lambda self: (calls.append(1), original(self))[1],
        )
        flipped = ~network._fch_active_mask()
        network.set_fch_state(
            np.arange(10), flipped, network._fch_rate_factors().copy()
        )
        assert calls == []  # scalar path would have dispatched 10 times
        assert np.array_equal(network._fch_active_mask(), flipped)
        # The scalar write path still dispatches (write-through contract).
        network.mobiles[0].fch_active = not network.mobiles[0].fch_active
        assert len(calls) == 1

    def test_bulk_fch_write_back_notifies_foreign_networks(self):
        # Two networks sharing one mobile population (ablation sweeps): a
        # bulk write on one must propagate to the other's arrays.
        config = SystemConfig.small_test_system()
        layout = HexagonalCellLayout(config.radio.num_rings, config.radio.cell_radius_m)
        rng = np.random.default_rng(5)
        bounds = layout.bounding_box()
        mobiles = [
            MobileStation(
                index=i,
                user_class=UserClass.DATA,
                mobility=RandomDirectionMobility(layout.random_position(rng), bounds, rng=rng),
            )
            for i in range(6)
        ]
        net_a = CdmaNetwork(config, mobiles, np.random.default_rng(1), layout)
        net_b = CdmaNetwork(config, mobiles, np.random.default_rng(2), layout)
        flipped = ~net_a._fch_active_mask()
        rates = np.where(flipped, 1.0, 0.125)
        net_a.set_fch_state(np.arange(6), flipped, rates)
        assert np.array_equal(net_b._fch_active_mask(), flipped)
        assert np.array_equal(net_b._fch_rate_factors(), rates)

    def test_positions_array_tracks_mobility(self):
        network, _ = build_network()
        network.advance(0.5)
        expected = np.vstack([m.position for m in network.mobiles])
        assert np.array_equal(network._positions(), expected)

    def test_warm_start_matches_cold_within_tolerance(self):
        from dataclasses import replace

        config = SystemConfig.small_test_system()
        config = replace(
            config,
            radio=replace(
                config.radio,
                power_control_iterations=300,
                power_control_tolerance=1e-10,
            ),
        )
        cold, _ = build_network(seed=5, config=config)
        warm_net, _ = build_network(seed=5, config=config)
        warm_net.warm_start_power_control = True
        for _ in range(6):
            a = cold.step(0.02)
            b = warm_net.step(0.02)
            np.testing.assert_allclose(
                b.reverse_pc.total_power_w, a.reverse_pc.total_power_w, rtol=1e-6
            )
            np.testing.assert_allclose(
                b.forward_pc.total_power_w, a.forward_pc.total_power_w, rtol=1e-6
            )
            np.testing.assert_allclose(
                b.sch_mean_csi_forward, a.sch_mean_csi_forward, rtol=1e-5
            )

    def test_snapshot_gains_stable_across_frames(self):
        # Each frame publishes a fresh gain matrix; earlier snapshots must
        # not be mutated by later frames.
        network, _ = build_network()
        first = network.snapshot()
        held = first.gains
        before = held.copy()
        network.step(0.02)
        assert np.array_equal(held, before)
