"""Tests for the DES queues, resources and monitors."""

import pytest

from repro.des import Environment, Monitor, PriorityStore, Resource, Store


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env, store):
            yield store.put("item-1")
            yield env.timeout(1.0)
            yield store.put("item-2")

        def consumer(env, store):
            for _ in range(2):
                item = yield store.get()
                received.append((env.now, item))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert received == [(0.0, "item-1"), (1.0, "item-2")]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer(env, store):
            item = yield store.get()
            received.append((env.now, item))

        def producer(env, store):
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert received == [(3.0, "late")]

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer(env, store):
            yield env.timeout(2.0)
            item = yield store.get()
            log.append((f"got-{item}", env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert ("put-a", 0.0) in log
        assert ("put-b", 2.0) in log

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        assert len(store) == 1


class TestPriorityStore:
    def test_priority_order(self):
        env = Environment()
        store = PriorityStore(env)
        received = []

        def producer(env, store):
            yield store.put_item(5, "low")
            yield store.put_item(1, "high")
            yield store.put_item(3, "mid")

        def consumer(env, store):
            yield env.timeout(1.0)
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert received == ["high", "mid", "low"]

    def test_requires_tuples(self):
        env = Environment()
        store = PriorityStore(env)
        with pytest.raises(TypeError):
            store.put("not a tuple")


class TestResource:
    def test_mutual_exclusion(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def user(env, resource, name, hold):
            request = resource.request()
            yield request
            log.append((name, "start", env.now))
            yield env.timeout(hold)
            resource.release(request)
            log.append((name, "end", env.now))

        env.process(user(env, resource, "a", 2.0))
        env.process(user(env, resource, "b", 1.0))
        env.run()
        assert ("a", "start", 0.0) in log
        assert ("b", "start", 2.0) in log

    def test_context_manager_releases(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        log = []

        def user(env, resource, name):
            with resource.request() as request:
                yield request
                log.append((name, env.now))
                yield env.timeout(1.0)

        env.process(user(env, resource, "first"))
        env.process(user(env, resource, "second"))
        env.run()
        assert log == [("first", 0.0), ("second", 1.0)]

    def test_capacity_two(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        starts = []

        def user(env, resource, name):
            with resource.request() as request:
                yield request
                starts.append((name, env.now))
                yield env.timeout(1.0)

        for name in "abc":
            env.process(user(env, resource, name))
        env.run()
        assert starts[0][1] == 0.0 and starts[1][1] == 0.0
        assert starts[2][1] == 1.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_count(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        request = resource.request()
        assert resource.count == 1
        resource.release(request)
        assert resource.count == 0


class TestMonitor:
    def test_records_with_env_clock(self):
        env = Environment()
        monitor = Monitor(env, name="queue")

        def proc(env, monitor):
            monitor.record(1.0)
            yield env.timeout(2.0)
            monitor.record(3.0)

        env.process(proc(env, monitor))
        env.run()
        times, values = monitor.series()
        assert list(times) == [0.0, 2.0]
        assert list(values) == [1.0, 3.0]
        assert monitor.mean == pytest.approx(2.0)

    def test_requires_time_without_env(self):
        monitor = Monitor()
        with pytest.raises(ValueError):
            monitor.record(1.0)
        monitor.record(1.0, time=0.5)
        assert monitor.count == 1

    def test_no_series_when_disabled(self):
        monitor = Monitor(keep_series=False)
        monitor.record(1.0, time=0.0)
        with pytest.raises(RuntimeError):
            monitor.series()
