"""Tests for the measurement sub-layer (admissible regions)."""

import numpy as np
import pytest

from repro.cdma.handoff import ActiveSetState
from repro.cdma.loading import ForwardLinkLoad, ReverseLinkLoad
from repro.cdma.network import NetworkSnapshot
from repro.mac.measurement import (
    AdmissibleRegion,
    ForwardLinkMeasurement,
    ReverseLinkMeasurement,
    relative_path_loss,
)
from repro.mac.requests import BurstRequest, LinkDirection
from tests.test_cdma_network import build_network


@pytest.fixture(scope="module")
def snapshot_and_config():
    network, config = build_network(num_data=8, num_voice=6, seed=5)
    network.advance(0.5)
    return network.snapshot(), config


def make_requests(link, mobiles):
    return [
        BurstRequest(mobile_index=j, link=link, size_bits=200_000.0)
        for j in mobiles
    ]


class TestAdmissibleRegion:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissibleRegion(matrix=np.ones(3), bounds=np.ones(3),
                             link=LinkDirection.FORWARD)
        with pytest.raises(ValueError):
            AdmissibleRegion(matrix=np.ones((2, 3)), bounds=np.ones(3),
                             link=LinkDirection.FORWARD)
        with pytest.raises(ValueError):
            AdmissibleRegion(matrix=-np.ones((2, 3)), bounds=np.ones(2),
                             link=LinkDirection.FORWARD)

    def test_negative_bounds_clamped(self):
        region = AdmissibleRegion(matrix=np.ones((1, 2)), bounds=np.array([-1.0]),
                                  link=LinkDirection.FORWARD)
        assert region.bounds[0] == 0.0

    def test_admits_and_usage(self):
        region = AdmissibleRegion(
            matrix=np.array([[1.0, 2.0], [0.5, 0.0]]),
            bounds=np.array([4.0, 1.0]),
            link=LinkDirection.FORWARD,
        )
        assert region.admits(np.array([2, 1]))
        assert not region.admits(np.array([3, 1]))
        assert np.allclose(region.resource_usage(np.array([2, 1])), [4.0, 1.0])
        with pytest.raises(ValueError):
            region.admits(np.array([1, 2, 3]))


class TestRelativePathLoss:
    def test_ratio_of_pilot_strengths(self):
        pilots = np.array([0.05, 0.01, 0.002])
        assert relative_path_loss(pilots, host_cell=0, neighbor_cell=1) == pytest.approx(0.2)
        assert relative_path_loss(pilots, host_cell=0, neighbor_cell=2) == pytest.approx(0.04)

    def test_host_must_be_positive(self):
        with pytest.raises(ValueError):
            relative_path_loss(np.array([0.0, 0.1]), 0, 1)


class TestForwardLinkMeasurement:
    def test_region_shape_and_sign(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ForwardLinkMeasurement(config.phy, config.mac)
        requests = make_requests(LinkDirection.FORWARD, range(5))
        region = measurement.build(snapshot, requests)
        assert region.matrix.shape == (snapshot.num_cells, 5)
        assert np.all(region.matrix >= 0.0)
        assert np.all(region.bounds >= 0.0)
        assert region.link is LinkDirection.FORWARD

    def test_costs_only_in_reduced_active_set(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ForwardLinkMeasurement(config.phy, config.mac)
        requests = make_requests(LinkDirection.FORWARD, range(5))
        region = measurement.build(snapshot, requests)
        for column, request in enumerate(requests):
            reduced = set(snapshot.handoff_states[request.mobile_index].reduced_active_set)
            nonzero = set(np.nonzero(region.matrix[:, column])[0].tolist())
            assert nonzero.issubset(reduced)
            assert len(nonzero) >= 1

    def test_cost_scales_with_gamma_s(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        requests = make_requests(LinkDirection.FORWARD, range(4))
        base = ForwardLinkMeasurement(config.phy, config.mac).build(snapshot, requests)
        from dataclasses import replace
        doubled_phy = replace(config.phy, gamma_s_forward=2.0 * config.phy.gamma_s_forward)
        doubled = ForwardLinkMeasurement(doubled_phy, config.mac).build(snapshot, requests)
        assert np.allclose(doubled.matrix, 2.0 * base.matrix)

    def test_bounds_follow_admission_margin(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        requests = make_requests(LinkDirection.FORWARD, range(3))
        region = ForwardLinkMeasurement(config.phy, config.mac).build(snapshot, requests)
        expected = snapshot.forward_load.headroom_w() * config.mac.forward_admission_margin
        assert np.allclose(region.bounds, np.maximum(expected, 0.0))

    def test_rejects_wrong_link(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ForwardLinkMeasurement(config.phy, config.mac)
        with pytest.raises(ValueError):
            measurement.build(snapshot, make_requests(LinkDirection.REVERSE, [0]))


class TestReverseLinkMeasurement:
    def test_region_shape_and_sign(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ReverseLinkMeasurement(config.phy, config.mac)
        requests = make_requests(LinkDirection.REVERSE, range(5))
        region = measurement.build(snapshot, requests)
        assert region.matrix.shape == (snapshot.num_cells, 5)
        assert np.all(region.matrix >= 0.0)
        assert np.all(region.bounds >= 0.0)
        assert region.link is LinkDirection.REVERSE

    def test_host_cell_cost_positive(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ReverseLinkMeasurement(config.phy, config.mac)
        requests = make_requests(LinkDirection.REVERSE, range(5))
        region = measurement.build(snapshot, requests)
        for column, request in enumerate(requests):
            host = snapshot.handoff_states[request.mobile_index].serving_cell
            assert region.matrix[host, column] > 0.0

    def test_neighbor_projection_uses_margin(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        requests = make_requests(LinkDirection.REVERSE, range(6))
        from dataclasses import replace
        base_mac = replace(config.mac, neighbor_margin=1.0)
        big_mac = replace(config.mac, neighbor_margin=3.0)
        base = ReverseLinkMeasurement(config.phy, base_mac).build(snapshot, requests)
        inflated = ReverseLinkMeasurement(config.phy, big_mac).build(snapshot, requests)
        # Soft hand-off rows are identical; non-soft-hand-off neighbour rows scale.
        for column, request in enumerate(requests):
            in_handoff = set(snapshot.handoff_states[request.mobile_index].active_set)
            for k in range(snapshot.num_cells):
                if k in in_handoff:
                    assert inflated.matrix[k, column] == pytest.approx(base.matrix[k, column])
                elif base.matrix[k, column] > 0:
                    assert inflated.matrix[k, column] == pytest.approx(
                        3.0 * base.matrix[k, column]
                    )

    def test_scrm_limits_constrained_neighbors(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        requests = make_requests(LinkDirection.REVERSE, range(4))
        tight = ReverseLinkMeasurement(config.phy, config.mac, scrm_max_pilots=1).build(
            snapshot, requests
        )
        loose = ReverseLinkMeasurement(config.phy, config.mac, scrm_max_pilots=8).build(
            snapshot, requests
        )
        # Reporting more pilots can only add constrained cells.
        assert np.count_nonzero(tight.matrix) <= np.count_nonzero(loose.matrix)

    def test_rejects_wrong_link(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ReverseLinkMeasurement(config.phy, config.mac)
        with pytest.raises(ValueError):
            measurement.build(snapshot, make_requests(LinkDirection.FORWARD, [0]))

    def test_invalid_scrm_size(self, snapshot_and_config):
        _, config = snapshot_and_config
        with pytest.raises(ValueError):
            ReverseLinkMeasurement(config.phy, config.mac, scrm_max_pilots=0)


# ---------------------------------------------------------------------------
# batched-vs-scalar parity
# ---------------------------------------------------------------------------
def synthetic_snapshot(
    rng,
    num_cells,
    num_mobiles,
    zero_fch_fraction=0.0,
    zero_host_pilot_fraction=0.0,
    pilot_tie_levels=None,
    with_membership_matrices=False,
):
    """A hand-built snapshot with controllable pathologies.

    ``pilot_tie_levels`` quantises the forward pilot strengths to a few
    discrete values, forcing ties at the SCRM top-``scrm_max_pilots``
    selection boundary; ``zero_fch_fraction`` zeroes random FCH legs;
    ``zero_host_pilot_fraction`` zeroes the host-cell forward pilot of random
    mobiles (deep shadowing).
    """
    states = []
    for _ in range(num_mobiles):
        size = int(rng.integers(1, min(num_cells, 4) + 1))
        cells = [int(c) for c in rng.choice(num_cells, size=size, replace=False)]
        states.append(
            ActiveSetState(
                active_set=cells,
                reduced_active_set=cells[:2],
                serving_cell=cells[0],
            )
        )
    serving = np.asarray([s.serving_cell for s in states], dtype=int)

    fch_power = rng.uniform(0.05, 2.0, size=(num_mobiles, num_cells))
    if zero_fch_fraction > 0.0:
        fch_power[rng.random(fch_power.shape) < zero_fch_fraction] = 0.0
    forward_load = ForwardLinkLoad(
        max_traffic_power_w=rng.uniform(10.0, 20.0, size=num_cells),
        current_power_w=rng.uniform(0.0, 15.0, size=num_cells),
        fch_power_w=fch_power,
    )

    if pilot_tie_levels is not None:
        t_fl = rng.choice(pilot_tie_levels, size=(num_mobiles, num_cells))
    else:
        t_fl = rng.uniform(0.0, 0.05, size=(num_mobiles, num_cells))
    if zero_host_pilot_fraction > 0.0:
        shadowed = rng.random(num_mobiles) < zero_host_pilot_fraction
        t_fl[shadowed, serving[shadowed]] = 0.0
    reverse_load = ReverseLinkLoad(
        max_interference_w=rng.uniform(5e-13, 1e-12, size=num_cells),
        current_interference_w=rng.uniform(1e-13, 6e-13, size=num_cells),
        reverse_pilot_strength=rng.uniform(1e-4, 5e-2, size=(num_mobiles, num_cells)),
        forward_pilot_strength=t_fl,
        fch_pilot_power_ratio=rng.uniform(2.0, 6.0, size=num_mobiles),
    )

    snapshot = NetworkSnapshot(
        time_s=0.0,
        gains=np.zeros((num_mobiles, num_cells)),
        forward_load=forward_load,
        reverse_load=reverse_load,
        handoff_states=states,
        serving_cells=serving,
        sch_mean_csi_forward=rng.uniform(0.0, 40.0, size=num_mobiles),
        sch_mean_csi_reverse=rng.uniform(0.0, 40.0, size=num_mobiles),
        forward_pc=None,
        reverse_pc=None,
    )
    if with_membership_matrices:
        snapshot.active_membership()
        snapshot.reduced_membership()
    return snapshot


def random_queue(rng, num_mobiles, link, max_length=40):
    length = int(rng.integers(0, max_length + 1))
    return [
        BurstRequest(mobile_index=int(j), link=link, size_bits=200_000.0)
        for j in rng.integers(0, num_mobiles, size=length)
    ]


def assert_regions_identical(scalar_region, batched_region):
    assert scalar_region.matrix.shape == batched_region.matrix.shape
    assert np.array_equal(scalar_region.matrix, batched_region.matrix)
    assert np.array_equal(scalar_region.bounds, batched_region.bounds)
    assert scalar_region.link is batched_region.link


class TestBatchedScalarParity:
    """Property-style suite: the batched kernels are bit-identical oracles."""

    @pytest.mark.parametrize("seed", range(12))
    def test_randomised_snapshots(self, seed, small_config):
        rng = np.random.default_rng(1000 + seed)
        num_cells = int(rng.integers(3, 20))
        num_mobiles = int(rng.integers(1, 40))
        snapshot = synthetic_snapshot(
            rng,
            num_cells,
            num_mobiles,
            zero_fch_fraction=float(rng.choice([0.0, 0.3])),
            zero_host_pilot_fraction=float(rng.choice([0.0, 0.25])),
            pilot_tie_levels=(
                [0.0, 0.005, 0.01, 0.02] if seed % 2 == 0 else None
            ),
            with_membership_matrices=bool(seed % 3 == 0),
        )
        config = small_config
        scrm = int(rng.integers(1, 9))
        fwd_requests = random_queue(rng, num_mobiles, LinkDirection.FORWARD)
        rev_requests = random_queue(rng, num_mobiles, LinkDirection.REVERSE)

        fwd_scalar = ForwardLinkMeasurement(config.phy, config.mac, batched=False)
        fwd_batched = ForwardLinkMeasurement(config.phy, config.mac, batched=True)
        assert_regions_identical(
            fwd_scalar.build(snapshot, fwd_requests),
            fwd_batched.build(snapshot, fwd_requests),
        )

        rev_scalar = ReverseLinkMeasurement(
            config.phy, config.mac, scrm_max_pilots=scrm, batched=False
        )
        rev_batched = ReverseLinkMeasurement(
            config.phy, config.mac, scrm_max_pilots=scrm, batched=True
        )
        assert_regions_identical(
            rev_scalar.build(snapshot, rev_requests),
            rev_batched.build(snapshot, rev_requests),
        )

    def test_real_network_snapshot(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        rng = np.random.default_rng(99)
        for _ in range(3):
            fwd = random_queue(rng, snapshot.num_mobiles, LinkDirection.FORWARD)
            rev = random_queue(rng, snapshot.num_mobiles, LinkDirection.REVERSE)
            assert_regions_identical(
                ForwardLinkMeasurement(config.phy, config.mac, batched=False).build(
                    snapshot, fwd
                ),
                ForwardLinkMeasurement(config.phy, config.mac, batched=True).build(
                    snapshot, fwd
                ),
            )
            assert_regions_identical(
                ReverseLinkMeasurement(config.phy, config.mac, batched=False).build(
                    snapshot, rev
                ),
                ReverseLinkMeasurement(config.phy, config.mac, batched=True).build(
                    snapshot, rev
                ),
            )

    def test_empty_queue(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        for cls, link in (
            (ForwardLinkMeasurement, LinkDirection.FORWARD),
            (ReverseLinkMeasurement, LinkDirection.REVERSE),
        ):
            scalar = cls(config.phy, config.mac, batched=False).build(snapshot, [])
            batched = cls(config.phy, config.mac, batched=True).build(snapshot, [])
            assert batched.matrix.shape == (snapshot.num_cells, 0)
            assert_regions_identical(scalar, batched)

    def test_batched_rejects_wrong_link(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        with pytest.raises(ValueError):
            ForwardLinkMeasurement(config.phy, config.mac, batched=True).build(
                snapshot, make_requests(LinkDirection.REVERSE, [0])
            )
        with pytest.raises(ValueError):
            ReverseLinkMeasurement(config.phy, config.mac, batched=True).build(
                snapshot, make_requests(LinkDirection.FORWARD, [0])
            )

    def test_membership_matrices_match_states(self, snapshot_and_config):
        # The matrices the network attaches to its snapshots agree with the
        # lazily-materialised fallback used for hand-built snapshots.
        snapshot, _ = snapshot_and_config
        provided_active = snapshot.active_membership()
        provided_reduced = snapshot.reduced_membership()
        fallback = NetworkSnapshot(
            time_s=snapshot.time_s,
            gains=snapshot.gains,
            forward_load=snapshot.forward_load,
            reverse_load=snapshot.reverse_load,
            handoff_states=snapshot.handoff_states,
            serving_cells=snapshot.serving_cells,
            sch_mean_csi_forward=snapshot.sch_mean_csi_forward,
            sch_mean_csi_reverse=snapshot.sch_mean_csi_reverse,
            forward_pc=snapshot.forward_pc,
            reverse_pc=snapshot.reverse_pc,
        )
        assert np.array_equal(provided_active, fallback.active_membership())
        assert np.array_equal(provided_reduced, fallback.reduced_membership())


class TestZeroHostPilotRegression:
    """A deep-shadowed mobile (zero host-cell forward pilot) must not crash."""

    @pytest.fixture()
    def shadowed_snapshot(self):
        rng = np.random.default_rng(7)
        snapshot = synthetic_snapshot(rng, num_cells=7, num_mobiles=6)
        # Mobile 0: zero forward pilot at its own serving cell.
        host = int(snapshot.serving_cells[0])
        snapshot.reverse_load.forward_pilot_strength[0, :] = 0.02
        snapshot.reverse_load.forward_pilot_strength[0, host] = 0.0
        return snapshot, host

    @pytest.mark.parametrize("batched", [False, True])
    def test_build_does_not_raise(self, shadowed_snapshot, small_config, batched):
        snapshot, host = shadowed_snapshot
        requests = make_requests(LinkDirection.REVERSE, [0])
        region = ReverseLinkMeasurement(
            small_config.phy, small_config.mac, batched=batched
        ).build(snapshot, requests)
        # Soft-hand-off cells are still constrained through the reverse
        # pilot; the projected (non-soft-hand-off) cells stay unconstrained.
        soft = set(snapshot.handoff_states[0].active_set)
        for k in range(snapshot.num_cells):
            if k in soft:
                assert region.matrix[k, 0] > 0.0
            else:
                assert region.matrix[k, 0] == 0.0

    def test_paths_agree(self, shadowed_snapshot, small_config):
        snapshot, _ = shadowed_snapshot
        requests = make_requests(LinkDirection.REVERSE, [0, 1, 2])
        assert_regions_identical(
            ReverseLinkMeasurement(
                small_config.phy, small_config.mac, batched=False
            ).build(snapshot, requests),
            ReverseLinkMeasurement(
                small_config.phy, small_config.mac, batched=True
            ).build(snapshot, requests),
        )

    def test_relative_path_loss_still_guards(self):
        # The public eq. (14) helper keeps rejecting non-positive hosts; the
        # builders guard before calling it.
        with pytest.raises(ValueError):
            relative_path_loss(np.array([0.0, 0.1]), 0, 1)
