"""Tests for the measurement sub-layer (admissible regions)."""

import numpy as np
import pytest

from repro.cdma.network import CdmaNetwork
from repro.config import SystemConfig
from repro.mac.measurement import (
    AdmissibleRegion,
    ForwardLinkMeasurement,
    ReverseLinkMeasurement,
    relative_path_loss,
)
from repro.mac.requests import BurstRequest, LinkDirection
from tests.test_cdma_network import build_network


@pytest.fixture(scope="module")
def snapshot_and_config():
    network, config = build_network(num_data=8, num_voice=6, seed=5)
    network.advance(0.5)
    return network.snapshot(), config


def make_requests(link, mobiles):
    return [
        BurstRequest(mobile_index=j, link=link, size_bits=200_000.0)
        for j in mobiles
    ]


class TestAdmissibleRegion:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissibleRegion(matrix=np.ones(3), bounds=np.ones(3),
                             link=LinkDirection.FORWARD)
        with pytest.raises(ValueError):
            AdmissibleRegion(matrix=np.ones((2, 3)), bounds=np.ones(3),
                             link=LinkDirection.FORWARD)
        with pytest.raises(ValueError):
            AdmissibleRegion(matrix=-np.ones((2, 3)), bounds=np.ones(2),
                             link=LinkDirection.FORWARD)

    def test_negative_bounds_clamped(self):
        region = AdmissibleRegion(matrix=np.ones((1, 2)), bounds=np.array([-1.0]),
                                  link=LinkDirection.FORWARD)
        assert region.bounds[0] == 0.0

    def test_admits_and_usage(self):
        region = AdmissibleRegion(
            matrix=np.array([[1.0, 2.0], [0.5, 0.0]]),
            bounds=np.array([4.0, 1.0]),
            link=LinkDirection.FORWARD,
        )
        assert region.admits(np.array([2, 1]))
        assert not region.admits(np.array([3, 1]))
        assert np.allclose(region.resource_usage(np.array([2, 1])), [4.0, 1.0])
        with pytest.raises(ValueError):
            region.admits(np.array([1, 2, 3]))


class TestRelativePathLoss:
    def test_ratio_of_pilot_strengths(self):
        pilots = np.array([0.05, 0.01, 0.002])
        assert relative_path_loss(pilots, host_cell=0, neighbor_cell=1) == pytest.approx(0.2)
        assert relative_path_loss(pilots, host_cell=0, neighbor_cell=2) == pytest.approx(0.04)

    def test_host_must_be_positive(self):
        with pytest.raises(ValueError):
            relative_path_loss(np.array([0.0, 0.1]), 0, 1)


class TestForwardLinkMeasurement:
    def test_region_shape_and_sign(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ForwardLinkMeasurement(config.phy, config.mac)
        requests = make_requests(LinkDirection.FORWARD, range(5))
        region = measurement.build(snapshot, requests)
        assert region.matrix.shape == (snapshot.num_cells, 5)
        assert np.all(region.matrix >= 0.0)
        assert np.all(region.bounds >= 0.0)
        assert region.link is LinkDirection.FORWARD

    def test_costs_only_in_reduced_active_set(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ForwardLinkMeasurement(config.phy, config.mac)
        requests = make_requests(LinkDirection.FORWARD, range(5))
        region = measurement.build(snapshot, requests)
        for column, request in enumerate(requests):
            reduced = set(snapshot.handoff_states[request.mobile_index].reduced_active_set)
            nonzero = set(np.nonzero(region.matrix[:, column])[0].tolist())
            assert nonzero.issubset(reduced)
            assert len(nonzero) >= 1

    def test_cost_scales_with_gamma_s(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        requests = make_requests(LinkDirection.FORWARD, range(4))
        base = ForwardLinkMeasurement(config.phy, config.mac).build(snapshot, requests)
        from dataclasses import replace
        doubled_phy = replace(config.phy, gamma_s_forward=2.0 * config.phy.gamma_s_forward)
        doubled = ForwardLinkMeasurement(doubled_phy, config.mac).build(snapshot, requests)
        assert np.allclose(doubled.matrix, 2.0 * base.matrix)

    def test_bounds_follow_admission_margin(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        requests = make_requests(LinkDirection.FORWARD, range(3))
        region = ForwardLinkMeasurement(config.phy, config.mac).build(snapshot, requests)
        expected = snapshot.forward_load.headroom_w() * config.mac.forward_admission_margin
        assert np.allclose(region.bounds, np.maximum(expected, 0.0))

    def test_rejects_wrong_link(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ForwardLinkMeasurement(config.phy, config.mac)
        with pytest.raises(ValueError):
            measurement.build(snapshot, make_requests(LinkDirection.REVERSE, [0]))


class TestReverseLinkMeasurement:
    def test_region_shape_and_sign(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ReverseLinkMeasurement(config.phy, config.mac)
        requests = make_requests(LinkDirection.REVERSE, range(5))
        region = measurement.build(snapshot, requests)
        assert region.matrix.shape == (snapshot.num_cells, 5)
        assert np.all(region.matrix >= 0.0)
        assert np.all(region.bounds >= 0.0)
        assert region.link is LinkDirection.REVERSE

    def test_host_cell_cost_positive(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ReverseLinkMeasurement(config.phy, config.mac)
        requests = make_requests(LinkDirection.REVERSE, range(5))
        region = measurement.build(snapshot, requests)
        for column, request in enumerate(requests):
            host = snapshot.handoff_states[request.mobile_index].serving_cell
            assert region.matrix[host, column] > 0.0

    def test_neighbor_projection_uses_margin(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        requests = make_requests(LinkDirection.REVERSE, range(6))
        from dataclasses import replace
        base_mac = replace(config.mac, neighbor_margin=1.0)
        big_mac = replace(config.mac, neighbor_margin=3.0)
        base = ReverseLinkMeasurement(config.phy, base_mac).build(snapshot, requests)
        inflated = ReverseLinkMeasurement(config.phy, big_mac).build(snapshot, requests)
        # Soft hand-off rows are identical; non-soft-hand-off neighbour rows scale.
        for column, request in enumerate(requests):
            in_handoff = set(snapshot.handoff_states[request.mobile_index].active_set)
            for k in range(snapshot.num_cells):
                if k in in_handoff:
                    assert inflated.matrix[k, column] == pytest.approx(base.matrix[k, column])
                elif base.matrix[k, column] > 0:
                    assert inflated.matrix[k, column] == pytest.approx(
                        3.0 * base.matrix[k, column]
                    )

    def test_scrm_limits_constrained_neighbors(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        requests = make_requests(LinkDirection.REVERSE, range(4))
        tight = ReverseLinkMeasurement(config.phy, config.mac, scrm_max_pilots=1).build(
            snapshot, requests
        )
        loose = ReverseLinkMeasurement(config.phy, config.mac, scrm_max_pilots=8).build(
            snapshot, requests
        )
        # Reporting more pilots can only add constrained cells.
        assert np.count_nonzero(tight.matrix) <= np.count_nonzero(loose.matrix)

    def test_rejects_wrong_link(self, snapshot_and_config):
        snapshot, config = snapshot_and_config
        measurement = ReverseLinkMeasurement(config.phy, config.mac)
        with pytest.raises(ValueError):
            measurement.build(snapshot, make_requests(LinkDirection.FORWARD, [0]))

    def test_invalid_scrm_size(self, snapshot_and_config):
        _, config = snapshot_and_config
        with pytest.raises(ValueError):
            ReverseLinkMeasurement(config.phy, config.mac, scrm_max_pilots=0)
