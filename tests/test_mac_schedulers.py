"""Tests for the scheduling policies (JABA-SD and baselines)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MacConfig
from repro.mac.admission import SchedulingInput
from repro.mac.measurement import AdmissibleRegion
from repro.mac.objectives import ThroughputObjective
from repro.mac.requests import BurstRequest, LinkDirection
from repro.mac.schedulers import (
    EqualShareScheduler,
    FcfsScheduler,
    JabaSdScheduler,
    MaxMinFairScheduler,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    TemporalExtensionScheduler,
)


def make_problem(
    costs,
    bounds,
    delta_rho=None,
    upper=16,
    waiting=None,
    arrival_times=None,
    link=LinkDirection.FORWARD,
):
    """Build a SchedulingInput from a cost matrix (cells x requests)."""
    costs = np.asarray(costs, dtype=float)
    num_cells, num_requests = costs.shape
    requests = [
        BurstRequest(
            mobile_index=j,
            link=link,
            size_bits=1e7,
            arrival_time_s=(arrival_times[j] if arrival_times is not None else float(j)),
        )
        for j in range(num_requests)
    ]
    region = AdmissibleRegion(matrix=costs, bounds=np.asarray(bounds, dtype=float), link=link)
    delta_rho = (
        np.asarray(delta_rho, dtype=float)
        if delta_rho is not None
        else np.ones(num_requests)
    )
    upper_bounds = np.full(num_requests, upper, dtype=int)
    waiting = (
        np.asarray(waiting, dtype=float) if waiting is not None else np.zeros(num_requests)
    )
    return SchedulingInput(
        requests=requests,
        region=region,
        delta_rho=delta_rho,
        upper_bounds=upper_bounds,
        waiting_times_s=waiting,
        priorities=np.zeros(num_requests),
        config=MacConfig(),
        now_s=10.0,
    )


ALL_SCHEDULERS = [
    JabaSdScheduler("J1"),
    JabaSdScheduler("J2"),
    JabaSdScheduler("J1", solver="greedy"),
    JabaSdScheduler("J1", solver="optimal"),
    FcfsScheduler(),
    EqualShareScheduler(),
    RoundRobinScheduler(),
    TemporalExtensionScheduler(defer_threshold=2),
    ProportionalFairScheduler(),
    MaxMinFairScheduler(),
]


class TestAllSchedulersContract:
    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
    def test_feasible_and_bounded(self, scheduler):
        problem = make_problem(
            costs=[[1.0, 0.5, 2.0], [0.0, 1.0, 0.5]],
            bounds=[10.0, 8.0],
            delta_rho=[2.0, 1.0, 0.5],
        )
        decision = scheduler.assign(problem)
        assert decision.assignment.shape == (3,)
        assert np.all(decision.assignment >= 0)
        assert np.all(decision.assignment <= problem.upper_bounds)
        assert problem.region.admits(decision.assignment)

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
    def test_empty_request_list(self, scheduler):
        problem = make_problem(costs=np.zeros((2, 0)), bounds=[1.0, 1.0],
                               delta_rho=np.zeros(0))
        decision = scheduler.assign(problem)
        assert decision.assignment.shape == (0,)

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
    def test_zero_capacity_grants_nothing(self, scheduler):
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[0.0])
        decision = scheduler.assign(problem)
        assert np.all(decision.assignment == 0)


class TestJabaSd:
    def test_optimal_beats_or_matches_baselines(self):
        rng = np.random.default_rng(0)
        metric = ThroughputObjective()
        for _ in range(10):
            costs = rng.uniform(0.05, 1.0, size=(3, 6))
            costs[rng.random(costs.shape) < 0.5] = 0.0
            costs[0, costs.sum(axis=0) == 0.0] = 0.3  # every request costs something
            problem = make_problem(costs=costs, bounds=[4.0, 4.0, 4.0],
                                   delta_rho=rng.uniform(0.5, 3.0, 6))
            weights = metric.weights(problem.delta_rho, problem.priorities,
                                     problem.waiting_times_s, problem.config)
            optimal = JabaSdScheduler("J1", solver="optimal").assign(problem)
            for baseline in (FcfsScheduler(), EqualShareScheduler(),
                             JabaSdScheduler("J1", solver="greedy")):
                other = baseline.assign(problem)
                assert optimal.assignment @ weights >= other.assignment @ weights - 1e-9

    def test_near_optimal_close_to_optimal(self):
        rng = np.random.default_rng(1)
        metric = ThroughputObjective()
        for _ in range(10):
            costs = rng.uniform(0.05, 1.0, size=(3, 5))
            problem = make_problem(costs=costs, bounds=[5.0, 5.0, 5.0],
                                   delta_rho=rng.uniform(0.5, 3.0, 5))
            weights = metric.weights(problem.delta_rho, problem.priorities,
                                     problem.waiting_times_s, problem.config)
            optimal = JabaSdScheduler("J1", solver="optimal").assign(problem)
            near = JabaSdScheduler("J1", solver="near-optimal").assign(problem)
            assert near.assignment @ weights >= 0.95 * (optimal.assignment @ weights) - 1e-9

    def test_j1_prefers_good_channel_users(self):
        # Two requests with identical cost; one has twice the delta_rho.
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[16.0], delta_rho=[2.0, 1.0])
        decision = JabaSdScheduler("J1", solver="optimal").assign(problem)
        assert decision.assignment[0] == 16
        assert decision.assignment[1] == 0

    def test_j2_boosts_long_waiting_request(self):
        config = MacConfig(delay_penalty_scale=5.0, delay_forgetting_factor=0.5)
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[16.0],
                               delta_rho=[2.0, 1.0], waiting=[0.0, 20.0])
        problem.config = config
        j1 = JabaSdScheduler("J1", solver="optimal").assign(problem)
        j2 = JabaSdScheduler("J2", solver="optimal").assign(problem)
        # Under J1 the better-channel request takes everything; under J2 the
        # stale request wins because of its delay-penalty boost.
        assert j1.assignment[0] == 16 and j1.assignment[1] == 0
        assert j2.assignment[1] == 16 and j2.assignment[0] == 0

    def test_exhaustive_solver_small_instance(self):
        problem = make_problem(costs=[[1.0, 2.0]], bounds=[4.0], upper=3)
        decision = JabaSdScheduler("J1", solver="exhaustive").assign(problem)
        assert problem.region.admits(decision.assignment)
        assert decision.optimal

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            JabaSdScheduler("J3")
        with pytest.raises(ValueError):
            JabaSdScheduler("J1", solver="magic")
        with pytest.raises(ValueError):
            JabaSdScheduler("J1", max_nodes=0)
        with pytest.raises(ValueError):
            JabaSdScheduler("J1", refine_nodes=-1)


class TestJabaSdBatchedAndWarmStart:
    def _problem(self, seed=3, num_requests=6):
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.05, 1.0, size=(3, num_requests))
        costs[rng.random(costs.shape) < 0.4] = 0.0
        costs[0, costs.sum(axis=0) == 0.0] = 0.3
        return make_problem(
            costs=costs,
            bounds=[5.0, 4.0, 6.0],
            delta_rho=rng.uniform(0.5, 3.0, num_requests),
        )

    @pytest.mark.parametrize("solver", ["greedy", "near-optimal", "optimal", "exhaustive"])
    def test_scalar_oracle_matches_batched_default(self, solver):
        upper = 2 if solver == "exhaustive" else 16
        problem = self._problem()
        problem.upper_bounds = np.full(len(problem.requests), upper, dtype=int)
        batched = JabaSdScheduler("J1", solver=solver).assign(problem)
        scalar = JabaSdScheduler("J1", solver=solver, batched=False).assign(problem)
        assert np.array_equal(batched.assignment, scalar.assignment)

    def test_cold_default_keeps_no_memory(self):
        scheduler = JabaSdScheduler("J1", solver="optimal")
        scheduler.assign(self._problem())
        assert scheduler.warm_start is False
        assert scheduler._last_assignment == {}

    def test_warm_start_remembers_surviving_assignment(self):
        scheduler = JabaSdScheduler("J1", solver="optimal", warm_start=True)
        problem = self._problem()
        first = scheduler.assign(problem)
        link = problem.requests[0].link
        granted = {
            request.mobile_index: m
            for request, m in zip(problem.requests, first.assignment)
            if m > 0
        }
        assert scheduler._last_assignment[link] == granted
        # The warm vector maps the remembered grants onto the new columns.
        warm = scheduler._warm_values(problem)
        assert warm is not None
        assert np.array_equal(warm, np.minimum(first.assignment, problem.upper_bounds))

    def test_warm_start_decision_stays_optimal(self):
        cold = JabaSdScheduler("J1", solver="optimal")
        warm = JabaSdScheduler("J1", solver="optimal", warm_start=True)
        problem = self._problem(seed=9)
        cold_decision = cold.assign(problem)
        warm.assign(problem)  # populate the memory
        warm_decision = warm.assign(problem)  # second frame, seeded
        assert warm_decision.objective_value == pytest.approx(
            cold_decision.objective_value, rel=1e-9
        )
        assert warm_decision.optimal

    def test_warm_start_near_optimal_never_worse_than_cold(self):
        cold = JabaSdScheduler("J1", solver="near-optimal")
        warm = JabaSdScheduler("J1", solver="near-optimal", warm_start=True)
        problem = self._problem(seed=13, num_requests=8)
        cold_decision = cold.assign(problem)
        warm.assign(problem)
        warm_decision = warm.assign(problem)
        assert warm_decision.objective_value >= cold_decision.objective_value - 1e-9

    def test_reset_warm_start_clears_memory(self):
        scheduler = JabaSdScheduler("J1", solver="optimal", warm_start=True)
        scheduler.assign(self._problem())
        assert scheduler._last_assignment
        scheduler.reset_warm_start()
        assert scheduler._last_assignment == {}


class TestFcfs:
    def test_serves_in_arrival_order(self):
        # The head-of-line request exhausts the single resource.
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[16.0],
                               arrival_times=[5.0, 1.0])
        decision = FcfsScheduler().assign(problem)
        # Request 1 arrived first and takes everything.
        assert decision.assignment[1] == 16
        assert decision.assignment[0] == 0

    def test_head_of_line_blocking(self):
        """An expensive head-of-line user starves a cheaper later one."""
        problem = make_problem(costs=[[4.0, 0.1]], bounds=[16.0],
                               arrival_times=[0.0, 1.0], upper=16)
        decision = FcfsScheduler().assign(problem)
        assert decision.assignment[0] == 4      # 4 units * cost 4 = 16, all gone
        assert decision.assignment[1] == 0


class TestEqualShare:
    def test_equal_assignment_when_symmetric(self):
        problem = make_problem(costs=[[1.0, 1.0, 1.0, 1.0]], bounds=[8.0], upper=16)
        decision = EqualShareScheduler(redistribute_slack=False).assign(problem)
        assert np.all(decision.assignment == 2)

    def test_slack_redistribution(self):
        problem = make_problem(costs=[[1.0, 1.0, 1.0]], bounds=[8.0], upper=16)
        decision = EqualShareScheduler(redistribute_slack=True).assign(problem)
        assert decision.assignment.sum() == 8
        assert decision.assignment.max() - decision.assignment.min() <= 1

    def test_respects_individual_upper_bounds(self):
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[20.0], upper=16)
        problem.upper_bounds = np.array([2, 16])
        decision = EqualShareScheduler().assign(problem)
        assert decision.assignment[0] <= 2
        assert problem.region.admits(decision.assignment)


class TestRoundRobin:
    def test_rotation_changes_head_of_line(self):
        scheduler = RoundRobinScheduler()
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[16.0])
        first = scheduler.assign(problem)
        second = scheduler.assign(problem)
        assert first.assignment[0] == 16 and first.assignment[1] == 0
        assert second.assignment[1] == 16 and second.assignment[0] == 0


class TestProportionalFair:
    def test_first_frame_prefers_good_channel_users(self):
        # With no service history every average is at the floor, so priority
        # reduces to delta_rho: the better-channel user is served first.
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[16.0], delta_rho=[2.0, 1.0])
        decision = ProportionalFairScheduler().assign(problem)
        assert decision.assignment[0] == 16
        assert decision.assignment[1] == 0

    def test_starved_user_overtakes_after_repeated_service(self):
        # Same instance each frame; the repeatedly-served user's throughput
        # average grows until the starved user's priority overtakes it.
        scheduler = ProportionalFairScheduler(time_constant_frames=2)
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[16.0], delta_rho=[2.0, 1.0])
        winners = []
        for _ in range(6):
            decision = scheduler.assign(problem)
            winners.append(int(np.argmax(decision.assignment)))
        assert winners[0] == 0  # best channel wins the first frame
        assert 1 in winners  # ...but the other user is eventually served

    def test_reset_history_restores_first_frame_behaviour(self):
        scheduler = ProportionalFairScheduler(time_constant_frames=2)
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[16.0], delta_rho=[2.0, 1.0])
        first = scheduler.assign(problem)
        for _ in range(5):
            scheduler.assign(problem)
        scheduler.reset_history()
        again = scheduler.assign(problem)
        assert np.array_equal(first.assignment, again.assignment)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ProportionalFairScheduler(time_constant_frames=0)


class TestMaxMinFair:
    def test_symmetric_instance_splits_evenly(self):
        problem = make_problem(costs=[[1.0, 1.0, 1.0, 1.0]], bounds=[8.0], upper=16)
        decision = MaxMinFairScheduler().assign(problem)
        assert decision.assignment.sum() == 8
        assert decision.assignment.max() - decision.assignment.min() <= 1

    def test_no_starvation_where_fcfs_starves(self):
        # FCFS gives everything to the head-of-line request; max-min serves
        # both users, lifting the minimum allocation.
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[16.0],
                               arrival_times=[1.0, 5.0])
        fcfs = FcfsScheduler().assign(problem)
        maxmin = MaxMinFairScheduler().assign(problem)
        assert fcfs.assignment.min() == 0
        assert maxmin.assignment.min() > fcfs.assignment.min()

    def test_expensive_user_freezes_cheap_user_keeps_filling(self):
        # User 0 costs 4x as much: it binds early while user 1 keeps growing.
        problem = make_problem(costs=[[4.0, 1.0]], bounds=[16.0], upper=16)
        decision = MaxMinFairScheduler().assign(problem)
        assert problem.region.admits(decision.assignment)
        assert decision.assignment[1] >= decision.assignment[0]
        assert decision.assignment.sum() > 2  # slack reinvested, not wasted

    def test_respects_individual_upper_bounds(self):
        problem = make_problem(costs=[[1.0, 1.0]], bounds=[20.0], upper=16)
        problem.upper_bounds = np.array([2, 16])
        decision = MaxMinFairScheduler().assign(problem)
        assert decision.assignment[0] <= 2
        assert problem.region.admits(decision.assignment)


class TestTemporalExtension:
    def test_small_grants_are_deferred_and_capacity_reinvested(self):
        # Two requests; capacity only allows a small grant for the expensive one.
        base = JabaSdScheduler("J1", solver="optimal")
        scheduler = TemporalExtensionScheduler(base=base, defer_threshold=4)
        problem = make_problem(costs=[[1.0, 3.0]], bounds=[18.0],
                               delta_rho=[1.0, 1.0], upper=16)
        decision = scheduler.assign(problem)
        # The optimal spatial solution is (16, 0 or small); any grant below the
        # threshold must have been zeroed.
        assert np.all((decision.assignment == 0) | (decision.assignment >= 4))
        assert problem.region.admits(decision.assignment)

    def test_deferral_is_bounded(self):
        scheduler = TemporalExtensionScheduler(defer_threshold=100, max_defer_frames=2)
        problem = make_problem(costs=[[1.0]], bounds=[8.0], upper=8)
        # The same request keeps being deferred at most twice.
        first = scheduler.assign(problem)
        second = scheduler.assign(problem)
        third = scheduler.assign(problem)
        assert first.assignment[0] == 0
        assert second.assignment[0] == 0
        assert third.assignment[0] > 0

    def test_zero_threshold_equals_base(self):
        base = JabaSdScheduler("J1", solver="optimal")
        wrapper = TemporalExtensionScheduler(base=JabaSdScheduler("J1", solver="optimal"),
                                             defer_threshold=0)
        problem = make_problem(costs=[[1.0, 0.5]], bounds=[8.0], delta_rho=[1.0, 2.0])
        assert np.array_equal(wrapper.assign(problem).assignment,
                              base.assign(problem).assignment)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TemporalExtensionScheduler(defer_threshold=-1)
        with pytest.raises(ValueError):
            TemporalExtensionScheduler(max_defer_frames=0)


@settings(max_examples=20, deadline=None)
@given(
    num_requests=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_all_schedulers_feasible(num_requests, seed):
    """Every scheduler must always return an admissible assignment."""
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.0, 1.0, size=(3, num_requests))
    bounds = rng.uniform(0.5, 6.0, size=3)
    problem = make_problem(costs=costs, bounds=bounds,
                           delta_rho=rng.uniform(0.1, 3.0, num_requests))
    for scheduler in (JabaSdScheduler("J1"), FcfsScheduler(), EqualShareScheduler(),
                      TemporalExtensionScheduler(), ProportionalFairScheduler(),
                      MaxMinFairScheduler()):
        decision = scheduler.assign(problem)
        assert problem.region.admits(decision.assignment)
        assert np.all(decision.assignment <= problem.upper_bounds)
