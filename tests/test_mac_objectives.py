"""Tests for the scheduling objectives J1 and J2."""

import numpy as np
import pytest

from repro.config import MacConfig
from repro.mac.objectives import (
    DelayAwareObjective,
    ThroughputObjective,
    linear_delay_penalty,
)


class TestDelayPenalty:
    def test_increases_with_waiting_time(self):
        assert linear_delay_penalty(2.0, 1.0, scale=0.5, forgetting=0.1) > (
            linear_delay_penalty(1.0, 1.0, scale=0.5, forgetting=0.1)
        )

    def test_decreases_with_granted_rate(self):
        assert linear_delay_penalty(2.0, 4.0, scale=0.5, forgetting=0.1) < (
            linear_delay_penalty(2.0, 1.0, scale=0.5, forgetting=0.1)
        )

    def test_never_negative(self):
        assert linear_delay_penalty(3.0, 1000.0, scale=0.5, forgetting=0.1) == 0.0

    def test_zero_wait_zero_penalty(self):
        assert linear_delay_penalty(0.0, 1.0, scale=0.5, forgetting=0.1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_delay_penalty(-1.0, 1.0, 0.5, 0.1)
        with pytest.raises(ValueError):
            linear_delay_penalty(1.0, -1.0, 0.5, 0.1)


class TestThroughputObjective:
    def test_weights_are_priority_scaled_delta_rho(self):
        objective = ThroughputObjective()
        weights = objective.weights(
            delta_rho=np.array([2.0, 1.0]),
            priorities=np.array([0.0, 1.0]),
            waiting_times_s=np.array([0.0, 10.0]),
            config=MacConfig(),
        )
        assert np.allclose(weights, [2.0, 2.0])

    def test_waiting_time_does_not_matter(self):
        objective = ThroughputObjective()
        config = MacConfig()
        w1 = objective.weights(np.array([1.0]), np.array([0.0]), np.array([0.0]), config)
        w2 = objective.weights(np.array([1.0]), np.array([0.0]), np.array([99.0]), config)
        assert np.allclose(w1, w2)

    def test_value_matches_eq_19(self):
        objective = ThroughputObjective()
        value = objective.value(
            assignment=np.array([2, 3]),
            delta_rho=np.array([1.5, 2.0]),
            priorities=np.array([0.0, 0.5]),
            waiting_times_s=np.zeros(2),
            config=MacConfig(),
        )
        assert value == pytest.approx(2 * 1.5 * 1.0 + 3 * 2.0 * 1.5)

    def test_shape_mismatch(self):
        objective = ThroughputObjective()
        with pytest.raises(ValueError):
            objective.weights(np.array([1.0]), np.array([1.0, 2.0]),
                              np.array([0.0]), MacConfig())


class TestDelayAwareObjective:
    def test_waiting_boosts_weight(self):
        objective = DelayAwareObjective()
        config = MacConfig(delay_penalty_scale=1.0, delay_forgetting_factor=0.2)
        fresh = objective.weights(np.array([1.0]), np.array([0.0]), np.array([0.0]), config)
        stale = objective.weights(np.array([1.0]), np.array([0.0]), np.array([5.0]), config)
        assert stale[0] > fresh[0]
        assert stale[0] == pytest.approx(1.0 * (1.0 + 1.0 * 0.2 * 5.0))

    def test_reduces_to_j1_when_scale_zero(self):
        config = MacConfig(delay_penalty_scale=0.0)
        j1 = ThroughputObjective()
        j2 = DelayAwareObjective()
        delta_rho = np.array([1.0, 2.5])
        priorities = np.array([0.0, 0.3])
        waiting = np.array([3.0, 7.0])
        assert np.allclose(
            j1.weights(delta_rho, priorities, waiting, config),
            j2.weights(delta_rho, priorities, waiting, config),
        )

    def test_value_includes_penalty(self):
        objective = DelayAwareObjective()
        config = MacConfig(delay_penalty_scale=0.5, delay_forgetting_factor=0.05)
        # One request, waiting 4 s, granted m=2 at delta_rho=1.5.
        value = objective.value(
            assignment=np.array([2]),
            delta_rho=np.array([1.5]),
            priorities=np.array([0.0]),
            waiting_times_s=np.array([4.0]),
            config=config,
        )
        rate = 2 * 1.5
        expected = rate - 0.5 * 4.0 * max(0.0, 1.0 - 0.05 * rate)
        assert value == pytest.approx(expected)

    def test_rejecting_a_stale_request_is_penalised(self):
        """With J2, granting nothing to a long-waiting request costs objective value."""
        objective = DelayAwareObjective()
        config = MacConfig(delay_penalty_scale=1.0, delay_forgetting_factor=0.1)
        nothing = objective.value(np.array([0]), np.array([1.0]), np.array([0.0]),
                                  np.array([10.0]), config)
        something = objective.value(np.array([4]), np.array([1.0]), np.array([0.0]),
                                    np.array([10.0]), config)
        assert something > nothing
