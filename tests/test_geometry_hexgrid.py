"""Tests for the hexagonal cell layout."""

import numpy as np
import pytest

from repro.geometry.hexgrid import HexagonalCellLayout


class TestLayoutConstruction:
    @pytest.mark.parametrize("rings, expected", [(0, 1), (1, 7), (2, 19), (3, 37)])
    def test_cell_count(self, rings, expected):
        layout = HexagonalCellLayout(num_rings=rings, cell_radius_m=1000.0)
        assert layout.num_cells == expected

    def test_centre_cell_first(self):
        layout = HexagonalCellLayout(num_rings=2, cell_radius_m=1000.0)
        assert np.allclose(layout.position_of(0), [0.0, 0.0])

    def test_inter_site_distance(self):
        layout = HexagonalCellLayout(num_rings=1, cell_radius_m=1000.0)
        assert layout.inter_site_distance_m == pytest.approx(np.sqrt(3) * 1000.0)
        # Every first-ring site sits exactly one inter-site distance away.
        for k in range(1, 7):
            distance = np.hypot(*layout.position_of(k))
            assert distance == pytest.approx(layout.inter_site_distance_m, rel=1e-9)

    def test_positions_unique(self):
        layout = HexagonalCellLayout(num_rings=2)
        positions = layout.positions
        pairwise = np.linalg.norm(
            positions[:, None, :] - positions[None, :, :], axis=2
        )
        np.fill_diagonal(pairwise, np.inf)
        assert pairwise.min() > 0.9 * layout.inter_site_distance_m

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HexagonalCellLayout(num_rings=-1)
        with pytest.raises(ValueError):
            HexagonalCellLayout(cell_radius_m=0.0)


class TestDistances:
    def test_distance_to_own_site_is_zero(self):
        layout = HexagonalCellLayout(num_rings=1, cell_radius_m=1000.0)
        for k in range(layout.num_cells):
            assert layout.distance(layout.position_of(k), k) == pytest.approx(0.0, abs=1e-6)

    def test_nearest_cell_at_site(self):
        layout = HexagonalCellLayout(num_rings=1)
        for k in range(layout.num_cells):
            assert layout.nearest_cell(layout.position_of(k)) == k

    def test_wraparound_limits_distance(self):
        layout = HexagonalCellLayout(num_rings=1, cell_radius_m=1000.0, wraparound=True)
        flat = HexagonalCellLayout(num_rings=1, cell_radius_m=1000.0, wraparound=False)
        # A point far out on the positive x axis: with wrap-around it must be
        # closer to some cell than in the unwrapped layout.
        point = np.array([4000.0, 0.0])
        assert layout.distances_to_all(point).min() <= flat.distances_to_all(point).min()

    def test_wraparound_distances_never_larger(self):
        rng = np.random.default_rng(0)
        wrapped = HexagonalCellLayout(num_rings=1, cell_radius_m=800.0, wraparound=True)
        flat = HexagonalCellLayout(num_rings=1, cell_radius_m=800.0, wraparound=False)
        for _ in range(50):
            point = rng.uniform(-3000, 3000, size=2)
            assert np.all(
                wrapped.distances_to_all(point) <= flat.distances_to_all(point) + 1e-9
            )

    def test_bounding_box_contains_sites(self):
        layout = HexagonalCellLayout(num_rings=2, cell_radius_m=500.0)
        xmin, xmax, ymin, ymax = layout.bounding_box()
        positions = layout.positions
        assert np.all(positions[:, 0] >= xmin) and np.all(positions[:, 0] <= xmax)
        assert np.all(positions[:, 1] >= ymin) and np.all(positions[:, 1] <= ymax)


class TestSampling:
    def test_random_position_in_cell_is_close(self):
        layout = HexagonalCellLayout(num_rings=1, cell_radius_m=1000.0)
        rng = np.random.default_rng(1)
        for k in range(layout.num_cells):
            for _ in range(20):
                point = layout.random_position_in_cell(k, rng)
                offset = point - layout.position_of(k)
                assert np.hypot(*offset) <= 1000.0 + 1e-9

    def test_random_position_in_cell_mostly_nearest(self):
        """Sampled points should (almost always) be served by their own cell."""
        layout = HexagonalCellLayout(num_rings=1, cell_radius_m=1000.0, wraparound=False)
        rng = np.random.default_rng(2)
        hits = 0
        total = 300
        for _ in range(total):
            cell = int(rng.integers(0, layout.num_cells))
            point = layout.random_position_in_cell(cell, rng)
            if layout.nearest_cell(point) == cell:
                hits += 1
        assert hits / total > 0.95

    def test_random_position_invalid_cell(self):
        layout = HexagonalCellLayout(num_rings=1)
        with pytest.raises(IndexError):
            layout.random_position_in_cell(99, np.random.default_rng(0))

    def test_random_position_any_cell(self):
        layout = HexagonalCellLayout(num_rings=1)
        point = layout.random_position(np.random.default_rng(3))
        assert point.shape == (2,)

    def test_cell_of_matches_nearest(self):
        layout = HexagonalCellLayout(num_rings=1)
        rng = np.random.default_rng(4)
        point = layout.random_position(rng)
        assert layout.cell_of(point) == layout.nearest_cell(point)


class TestBatchDistances:
    """Property tests: the batched kernel matches the per-row query exactly."""

    @pytest.mark.parametrize("wraparound", [True, False])
    @pytest.mark.parametrize("rings", [0, 1, 2])
    def test_matches_per_row_distances(self, rings, wraparound):
        layout = HexagonalCellLayout(
            num_rings=rings, cell_radius_m=750.0, wraparound=wraparound
        )
        rng = np.random.default_rng(2024 + rings)
        span = 4.0 * layout.cell_radius_m
        positions = rng.uniform(-span, span, size=(57, 2))
        batch = layout.distances_to_all_batch(positions)
        assert batch.shape == (57, layout.num_cells)
        rows = np.vstack([layout.distances_to_all(p) for p in positions])
        # Bit-identical, not merely close.
        assert np.array_equal(batch, rows)

    def test_repeated_batches_identical(self):
        layout = HexagonalCellLayout(num_rings=1)
        rng = np.random.default_rng(7)
        positions = rng.uniform(-2000.0, 2000.0, size=(11, 2))
        first = layout.distances_to_all_batch(positions)
        second = layout.distances_to_all_batch(positions)
        assert np.array_equal(first, second)
        assert first is not second  # scratch buffers never escape

    def test_empty_batch(self):
        layout = HexagonalCellLayout(num_rings=1)
        out = layout.distances_to_all_batch(np.zeros((0, 2)))
        assert out.shape == (0, layout.num_cells)
