"""Tests for CDMA entities, pilot measurements and loading snapshots."""

import numpy as np
import pytest

from repro.cdma.entities import BaseStation, MobileStation, UserClass
from repro.cdma.loading import ForwardLinkLoad, ReverseLinkLoad
from repro.cdma.pilot import forward_pilot_ec_io, reverse_pilot_ec_io
from repro.geometry.mobility import StaticMobility


class TestBaseStation:
    def test_traffic_power_budget(self):
        bs = BaseStation(index=0, position=np.zeros(2), max_tx_power_w=20.0,
                         common_channel_power_w=4.0, pilot_power_w=2.0)
        assert bs.max_traffic_power_w == pytest.approx(16.0)

    def test_reverse_interference_ceiling(self):
        bs = BaseStation(index=0, position=np.zeros(2), noise_power_w=1e-13,
                         max_rise_over_thermal_db=6.0)
        assert bs.max_reverse_interference_w == pytest.approx(1e-13 * 10 ** 0.6)

    def test_invalid_overheads(self):
        with pytest.raises(ValueError):
            BaseStation(index=0, position=np.zeros(2), max_tx_power_w=10.0,
                        common_channel_power_w=12.0)
        with pytest.raises(ValueError):
            BaseStation(index=0, position=np.zeros(2), common_channel_power_w=1.0,
                        pilot_power_w=2.0)


class TestMobileStation:
    def test_static_factory(self):
        mobile = MobileStation.static(3, [100.0, 200.0], user_class=UserClass.VOICE)
        assert mobile.index == 3
        assert np.allclose(mobile.position, [100.0, 200.0])
        assert mobile.user_class is UserClass.VOICE

    def test_rate_factor_validation(self):
        with pytest.raises(ValueError):
            MobileStation(index=0, user_class=UserClass.DATA,
                          mobility=StaticMobility([0, 0]), fch_rate_factor=0.0)
        with pytest.raises(ValueError):
            MobileStation(index=0, user_class=UserClass.DATA,
                          mobility=StaticMobility([0, 0]), fch_rate_factor=1.5)

    def test_power_validation(self):
        with pytest.raises(ValueError):
            MobileStation(index=0, user_class=UserClass.DATA,
                          mobility=StaticMobility([0, 0]), max_tx_power_w=0.0)


class TestForwardPilot:
    def test_shares_sum_below_one(self):
        gains = np.array([[1e-10, 5e-12], [2e-11, 3e-11]])
        total = np.array([10.0, 10.0])
        pilot = np.array([1.0, 1.0])
        ec_io = forward_pilot_ec_io(gains, total, pilot, mobile_noise_power_w=1e-13)
        assert ec_io.shape == (2, 2)
        # Pilot is 10% of the total power, so each Ec/Io must be below 0.1.
        assert np.all(ec_io < 0.1)
        assert np.all(ec_io > 0.0)

    def test_stronger_cell_has_stronger_pilot(self):
        gains = np.array([[1e-10, 1e-12]])
        ec_io = forward_pilot_ec_io(gains, np.array([10.0, 10.0]),
                                    np.array([1.0, 1.0]), 1e-13)
        assert ec_io[0, 0] > ec_io[0, 1]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            forward_pilot_ec_io(np.ones(3), np.ones(3), np.ones(3), 1e-13)
        with pytest.raises(ValueError):
            forward_pilot_ec_io(np.ones((2, 3)), np.ones(2), np.ones(3), 1e-13)


class TestReversePilot:
    def test_basic_computation(self):
        gains = np.array([[1e-12, 1e-13]])
        pilots = np.array([0.01])
        totals = np.array([1e-13, 1e-13])
        ec_io = reverse_pilot_ec_io(gains, pilots, totals)
        assert ec_io[0, 0] == pytest.approx(0.01 * 1e-12 / 1e-13)

    def test_validation(self):
        with pytest.raises(ValueError):
            reverse_pilot_ec_io(np.ones((2, 2)), np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            reverse_pilot_ec_io(np.ones((2, 2)), np.ones(2), np.zeros(2))


class TestLoadingSnapshots:
    def test_forward_headroom(self):
        load = ForwardLinkLoad(
            max_traffic_power_w=np.array([10.0, 10.0]),
            current_power_w=np.array([4.0, 12.0]),
            fch_power_w=np.zeros((3, 2)),
        )
        assert np.allclose(load.headroom_w(), [6.0, 0.0])
        assert np.allclose(load.utilisation(), [0.4, 1.2])
        assert load.num_cells == 2
        assert load.num_mobiles == 3

    def test_forward_shape_validation(self):
        with pytest.raises(ValueError):
            ForwardLinkLoad(np.ones(2), np.ones(3), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            ForwardLinkLoad(np.ones(2), np.ones(2), np.zeros((3, 5)))

    def test_reverse_headroom_and_rise(self):
        load = ReverseLinkLoad(
            max_interference_w=np.array([4e-13]),
            current_interference_w=np.array([2e-13]),
            reverse_pilot_strength=np.zeros((2, 1)),
            forward_pilot_strength=np.zeros((2, 1)),
            fch_pilot_power_ratio=np.array([4.0, 4.0]),
        )
        assert load.headroom_w()[0] == pytest.approx(2e-13)
        assert load.rise_over_thermal_db(np.array([1e-13]))[0] == pytest.approx(3.01, abs=0.01)

    def test_reverse_shape_validation(self):
        with pytest.raises(ValueError):
            ReverseLinkLoad(np.ones(1), np.ones(2), np.zeros((2, 1)),
                            np.zeros((2, 1)), np.ones(2))
        with pytest.raises(ValueError):
            ReverseLinkLoad(np.ones(1), np.ones(1), np.zeros((2, 2)),
                            np.zeros((2, 1)), np.ones(2))
