"""Resilient executor: retry/backoff, respawn, speculation, chaos determinism."""

import time

import numpy as np
import pytest

from repro.experiments.campaign import Campaign
from repro.experiments.executors import (
    PoolExecutor,
    ResilientExecutor,
    SerialExecutor,
    TaskSpec,
)
from repro.experiments.faults import FaultPlan, FaultSpec, InjectedFaultError


def _toy_runner(params, seed):
    rng = np.random.default_rng(seed)
    draws = rng.random(128)
    return {
        "mean_draw": float(draws.mean()) + float(params["offset"]),
        "max_draw": float(draws.max()),
    }


def toy_campaign(replications=3, root_seed=123):
    points = [{"offset": 0.0}, {"offset": 10.0}, {"offset": 20.0}]
    return Campaign(
        "toy", _toy_runner, points, replications=replications, root_seed=root_seed
    )


def _replications(outcome):
    return [sorted(point.replications.items()) for point in outcome.points]


def _fault_execute(payload):
    """Executor-level trampoline: apply a fault plan, then return metrics."""
    plan, point_index, replication, value = payload
    plan.apply(point_index, replication)
    return {"v": float(value)}


def _slow_fault_execute(payload):
    """Like :func:`_fault_execute` but each task takes a beat to finish."""
    plan, point_index, replication, value = payload
    plan.apply(point_index, replication)
    time.sleep(0.2)
    return {"v": float(value)}


class TestRetryDelay:
    def test_deterministic(self):
        a = ResilientExecutor(workers=1, backoff_seed=7)
        b = ResilientExecutor(workers=1, backoff_seed=7)
        for task_index in range(5):
            for retry in range(1, 5):
                assert a.retry_delay(task_index, retry) == b.retry_delay(
                    task_index, retry
                )

    def test_seed_and_task_change_the_jitter(self):
        base = ResilientExecutor(workers=1, backoff_seed=0)
        other_seed = ResilientExecutor(workers=1, backoff_seed=1)
        assert base.retry_delay(0, 1) != other_seed.retry_delay(0, 1)
        assert base.retry_delay(0, 1) != base.retry_delay(1, 1)

    def test_exponential_growth_within_jitter_bounds(self):
        executor = ResilientExecutor(
            workers=1, backoff_base_s=0.5, backoff_max_s=64.0, backoff_jitter=0.25
        )
        for retry in range(1, 6):
            nominal = 0.5 * 2.0 ** (retry - 1)
            delay = executor.retry_delay(3, retry)
            assert nominal <= delay <= nominal * 1.25

    def test_backoff_cap(self):
        executor = ResilientExecutor(
            workers=1, backoff_base_s=1.0, backoff_max_s=4.0, backoff_jitter=0.0
        )
        assert executor.retry_delay(0, 10) == 4.0

    def test_retry_is_one_based(self):
        with pytest.raises(ValueError):
            ResilientExecutor(workers=1).retry_delay(0, 0)


class TestValidation:
    def test_executor_parameters(self):
        with pytest.raises(ValueError):
            ResilientExecutor(workers=0)
        with pytest.raises(ValueError):
            ResilientExecutor(workers=1, task_timeout_s=0.0)
        with pytest.raises(ValueError):
            ResilientExecutor(workers=1, max_retries=-1)
        with pytest.raises(ValueError):
            ResilientExecutor(workers=1, straggler_factor=1.0)
        with pytest.raises(ValueError):
            PoolExecutor(workers=0)

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(0, 0, "meteor-strike")
        with pytest.raises(ValueError):
            FaultSpec(-1, 0, "exception")
        with pytest.raises(ValueError):
            FaultSpec(0, 0, "delay", delay_s=0.0)
        with pytest.raises(ValueError):
            FaultSpec(0, 0, "exception", times=0)

    def test_task_key(self):
        assert TaskSpec(point_index=3, replication=7, payload=None).key == "3/7"

    def test_campaign_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            toy_campaign().run(executor="quantum")


class TestFaultPlan:
    def test_exception_fault_budget(self):
        plan = FaultPlan([FaultSpec(0, 0, "exception", times=2)])
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                plan.apply(0, 0)
        plan.apply(0, 0)  # budget spent: runs clean
        plan.apply(1, 0)  # other coordinates never fire

    def test_token_dir_accounting(self, tmp_path):
        plan = FaultPlan([FaultSpec(0, 0, "exception", times=1)], token_dir=tmp_path)
        with pytest.raises(InjectedFaultError):
            plan.apply(0, 0)
        # A second plan instance (another process in real runs) sees the
        # consumed token and does not fire again.
        again = FaultPlan([FaultSpec(0, 0, "exception", times=1)], token_dir=tmp_path)
        again.apply(0, 0)


class TestRetryAccounting:
    def test_retries_until_fault_budget_spent(self, tmp_path):
        # The fault fires twice; with max_retries=3 the third attempt succeeds.
        plan = FaultPlan([FaultSpec(0, 0, "exception", times=2)], token_dir=tmp_path)
        executor = ResilientExecutor(workers=2, max_retries=3, backoff_base_s=0.01)
        tasks = [
            TaskSpec(point_index=0, replication=rep, payload=(plan, 0, rep, rep))
            for rep in range(4)
        ]
        outcomes = {o.task.replication: o for o in executor.run(_fault_execute, tasks)}
        assert all(outcomes[rep].metrics == {"v": float(rep)} for rep in range(4))
        assert outcomes[0].attempts == 3
        assert all(outcomes[rep].attempts == 1 for rep in range(1, 4))
        assert executor.stats.retries == 2
        assert executor.stats.quarantined == 0

    def test_poisoned_task_quarantined_campaign_degrades(self, tmp_path):
        clean = toy_campaign().run()
        plan = FaultPlan(
            [FaultSpec(1, 2, "exception", times=-1)], token_dir=tmp_path
        )
        executor = ResilientExecutor(workers=2, max_retries=1, backoff_base_s=0.01)
        outcome = toy_campaign().run(executor=executor, fault_plan=plan)

        # Only the poisoned replication is missing; everything else matches
        # the fault-free serial run bit for bit.
        assert outcome.failed_replications == 1
        assert list(outcome.points[1].failures) == [2]
        assert "InjectedFaultError" in outcome.points[1].failures[2]
        assert [p.index for p in outcome.degraded_points()] == [1]
        assert outcome.executor_stats["quarantined"] == 1
        assert outcome.executor_stats["retries"] == 1  # max_retries=1 spent
        summary = outcome.points[1].summary()
        assert summary["mean_draw"].failed == 1
        assert summary["mean_draw"].count == 2
        for point, reference in zip(outcome.points, clean.points):
            for rep, metrics in point.replications.items():
                assert metrics == reference.replications[rep]


class TestWorkerCrashRespawn:
    def test_crash_loses_only_the_inflight_task(self, tmp_path):
        clean = toy_campaign().run()
        plan = FaultPlan([FaultSpec(0, 1, "crash")], token_dir=tmp_path)
        # Disable speculation: a speculative copy could consume the crash
        # token and die unobserved after the original attempt wins the race.
        executor = ResilientExecutor(
            workers=2,
            max_retries=2,
            backoff_base_s=0.01,
            straggler_min_completions=10_000,
        )
        outcome = toy_campaign().run(executor=executor, fault_plan=plan)
        assert outcome.failed_replications == 0
        assert _replications(outcome) == _replications(clean)
        stats = outcome.executor_stats
        assert stats["worker_crashes"] >= 1
        assert stats["retries"] >= 1

    def test_respawn_restores_fleet_strength(self, tmp_path):
        # Slow tasks keep plenty of work unfinished when the crash is reaped,
        # so the executor must bring the fleet back to full strength.
        plan = FaultPlan([FaultSpec(0, 1, "crash")], token_dir=tmp_path)
        executor = ResilientExecutor(
            workers=2,
            max_retries=2,
            backoff_base_s=0.01,
            straggler_min_completions=10_000,
        )
        tasks = [
            TaskSpec(point_index=0, replication=rep, payload=(plan, 0, rep, rep))
            for rep in range(6)
        ]
        outcomes = list(executor.run(_slow_fault_execute, tasks))
        assert len(outcomes) == 6
        assert all(o.metrics is not None for o in outcomes)
        assert executor.stats.worker_crashes >= 1
        assert executor.stats.workers_respawned >= 1
        assert executor.stats.retries >= 1


class TestStragglerReissue:
    def test_speculative_duplicate_first_result_wins(self, tmp_path):
        # One replication sleeps far past the mean completion time; with no
        # timeout configured only speculation can rescue it, and the token
        # budget (times=1) makes the duplicate run clean and win.
        clean = toy_campaign().run()
        plan = FaultPlan(
            [FaultSpec(0, 0, "delay", delay_s=15.0)], token_dir=tmp_path
        )
        executor = ResilientExecutor(
            workers=2,
            max_retries=0,
            straggler_factor=2.0,
            straggler_min_completions=3,
            poll_interval_s=0.01,
        )
        started = time.perf_counter()
        outcome = toy_campaign().run(executor=executor, fault_plan=plan)
        elapsed = time.perf_counter() - started
        assert outcome.failed_replications == 0
        assert _replications(outcome) == _replications(clean)
        assert outcome.executor_stats["speculative_reissues"] >= 1
        # The campaign never waited out the 15 s sleep: the duplicate won.
        assert elapsed < 10.0


class TestChaosDeterminism:
    """Aggregates under injected chaos are bit-identical to fault-free runs."""

    def test_crash_exception_and_timeout_chaos(self, tmp_path):
        clean = toy_campaign().run()
        plan = FaultPlan(
            [
                FaultSpec(0, 0, "crash"),
                FaultSpec(1, 1, "exception", times=2),
                FaultSpec(2, 2, "delay", delay_s=30.0),
            ],
            token_dir=tmp_path,
        )
        executor = ResilientExecutor(
            workers=2,
            task_timeout_s=3.0,
            max_retries=3,
            backoff_base_s=0.02,
            straggler_min_completions=10_000,  # force the timeout path
        )
        outcome = toy_campaign().run(executor=executor, fault_plan=plan)
        assert outcome.failed_replications == 0
        assert outcome.completed_replications == clean.completed_replications
        assert _replications(outcome) == _replications(clean)
        assert outcome.executor_name == "resilient"
        stats = outcome.executor_stats
        assert stats["worker_crashes"] >= 1
        assert stats["timeouts"] >= 1
        assert stats["retries"] >= 3

    def test_fault_free_backends_agree(self):
        serial = toy_campaign().run(executor=SerialExecutor())
        pool = toy_campaign().run(executor="pool", workers=2)
        resilient = toy_campaign().run(
            executor=ResilientExecutor(workers=2), workers=2
        )
        assert _replications(serial) == _replications(pool)
        assert _replications(serial) == _replications(resilient)
        assert serial.executor_name == "serial"
        assert pool.executor_name == "pool"
        assert resilient.executor_name == "resilient"

    def test_serial_executor_propagates_injected_faults(self):
        plan = FaultPlan([FaultSpec(0, 0, "exception")])
        with pytest.raises(InjectedFaultError):
            toy_campaign().run(fault_plan=plan)
