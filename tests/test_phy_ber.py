"""Tests for the BER models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy.ber import (
    ber_adaptive_mode,
    ber_orthogonal_union,
    inverse_q_function,
    q_function,
    required_csi_adaptive_mode,
    required_csi_orthogonal_union,
)


class TestQFunction:
    def test_known_values(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(1.0) == pytest.approx(0.158655, rel=1e-4)
        assert q_function(3.0) == pytest.approx(1.349898e-3, rel=1e-4)

    def test_array(self):
        values = q_function(np.array([0.0, 1.0]))
        assert values.shape == (2,)

    @given(st.floats(min_value=1e-6, max_value=1 - 1e-6))
    def test_inverse_round_trip(self, p):
        assert q_function(inverse_q_function(p)) == pytest.approx(p, rel=1e-6)

    def test_inverse_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            inverse_q_function(0.0)
        with pytest.raises(ValueError):
            inverse_q_function(1.0)


class TestAdaptiveModeBer:
    def test_decreasing_in_csi(self):
        gammas = np.linspace(0.0, 100.0, 50)
        bers = ber_adaptive_mode(gammas, bits_per_symbol=3)
        assert np.all(np.diff(bers) <= 1e-15)

    def test_increasing_in_bits(self):
        assert ber_adaptive_mode(10.0, 2) < ber_adaptive_mode(10.0, 5)

    def test_coding_gain_reduces_ber(self):
        assert ber_adaptive_mode(10.0, 3, coding_gain_db=3.0) < ber_adaptive_mode(
            10.0, 3, coding_gain_db=0.0
        )

    def test_worst_case_ber_is_the_prefactor(self):
        # At zero CSI the exponential model saturates at its 0.2 prefactor.
        assert ber_adaptive_mode(0.0, 1) == pytest.approx(0.2)

    def test_threshold_inversion(self):
        for bits in (1, 2, 4, 6):
            for target in (1e-2, 1e-3, 1e-5):
                threshold = required_csi_adaptive_mode(target, bits)
                assert ber_adaptive_mode(threshold, bits) == pytest.approx(target, rel=1e-9)

    def test_threshold_monotone_in_bits(self):
        thresholds = [required_csi_adaptive_mode(1e-3, b) for b in range(1, 7)]
        assert all(a < b for a, b in zip(thresholds, thresholds[1:]))

    def test_threshold_monotone_in_target(self):
        loose = required_csi_adaptive_mode(1e-2, 3)
        tight = required_csi_adaptive_mode(1e-5, 3)
        assert tight > loose

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ber_adaptive_mode(-1.0, 2)
        with pytest.raises(ValueError):
            ber_adaptive_mode(1.0, 0)
        with pytest.raises(ValueError):
            required_csi_adaptive_mode(0.5, 2)


class TestOrthogonalUnionBer:
    def test_decreasing_in_csi(self):
        gammas = np.linspace(0.0, 60.0, 40)
        bers = ber_orthogonal_union(gammas, order=64)
        assert np.all(np.diff(bers) <= 1e-15)

    def test_higher_order_worse_at_fixed_symbol_energy(self):
        assert ber_orthogonal_union(16.0, 64) > ber_orthogonal_union(16.0, 4)

    def test_threshold_inversion(self):
        threshold = required_csi_orthogonal_union(1e-3, 16)
        assert ber_orthogonal_union(threshold, 16) == pytest.approx(1e-3, rel=1e-6)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            ber_orthogonal_union(1.0, 3)
        with pytest.raises(ValueError):
            required_csi_orthogonal_union(1e-3, 5)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            required_csi_orthogonal_union(0.7, 4)
