"""Tests for the mobility models."""

import numpy as np
import pytest

from repro.geometry.mobility import (
    RandomDirectionMobility,
    RandomWaypointMobility,
    StaticMobility,
)

BOUNDS = (-1000.0, 1000.0, -1000.0, 1000.0)


class TestStaticMobility:
    def test_never_moves(self):
        model = StaticMobility([10.0, 20.0])
        assert model.advance(100.0) == 0.0
        assert np.allclose(model.position, [10.0, 20.0])
        assert model.speed_m_s == 0.0

    def test_rejects_negative_dt(self):
        with pytest.raises(ValueError):
            StaticMobility([0, 0]).advance(-1.0)


class TestRandomDirectionMobility:
    def test_stays_inside_bounds(self):
        rng = np.random.default_rng(0)
        model = RandomDirectionMobility([0.0, 0.0], BOUNDS, speed_m_s=50.0,
                                        mean_epoch_s=5.0, rng=rng)
        for _ in range(500):
            model.advance(1.0)
            x, y = model.position
            assert BOUNDS[0] - 1e-6 <= x <= BOUNDS[1] + 1e-6
            assert BOUNDS[2] - 1e-6 <= y <= BOUNDS[3] + 1e-6

    def test_travelled_distance_matches_speed(self):
        rng = np.random.default_rng(1)
        model = RandomDirectionMobility([0.0, 0.0], BOUNDS, speed_m_s=10.0, rng=rng)
        assert model.advance(3.0) == pytest.approx(30.0)

    def test_zero_speed_stays_put(self):
        model = RandomDirectionMobility([5.0, 5.0], BOUNDS, speed_m_s=0.0,
                                        rng=np.random.default_rng(0))
        model.advance(10.0)
        assert np.allclose(model.position, [5.0, 5.0])

    def test_speed_range(self):
        rng = np.random.default_rng(2)
        model = RandomDirectionMobility([0.0, 0.0], BOUNDS, speed_m_s=(1.0, 5.0),
                                        mean_epoch_s=0.5, rng=rng)
        for _ in range(50):
            model.advance(1.0)
            assert 1.0 <= model.speed_m_s <= 5.0

    def test_direction_changes_over_time(self):
        rng = np.random.default_rng(3)
        model = RandomDirectionMobility([0.0, 0.0], BOUNDS, speed_m_s=1.0,
                                        mean_epoch_s=1.0, rng=rng)
        first = model.direction_rad
        model.advance(50.0)
        assert model.direction_rad != pytest.approx(first)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomDirectionMobility([0, 0], (1.0, 0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            RandomDirectionMobility([0, 0], BOUNDS, speed_m_s=-1.0)
        with pytest.raises(ValueError):
            RandomDirectionMobility([0, 0], BOUNDS, speed_m_s=(5.0, 1.0))
        with pytest.raises(ValueError):
            RandomDirectionMobility([0, 0], BOUNDS, mean_epoch_s=0.0)


class TestRandomWaypointMobility:
    def test_stays_inside_bounds(self):
        rng = np.random.default_rng(4)
        model = RandomWaypointMobility([0.0, 0.0], BOUNDS, speed_range_m_s=(5.0, 20.0),
                                       rng=rng)
        for _ in range(300):
            model.advance(2.0)
            x, y = model.position
            assert BOUNDS[0] - 1e-6 <= x <= BOUNDS[1] + 1e-6
            assert BOUNDS[2] - 1e-6 <= y <= BOUNDS[3] + 1e-6

    def test_reaches_waypoint_direction(self):
        rng = np.random.default_rng(5)
        model = RandomWaypointMobility([0.0, 0.0], BOUNDS, speed_range_m_s=(10.0, 10.0),
                                       rng=rng)
        waypoint = model.waypoint
        start = model.position
        model.advance(1.0)
        moved = model.position - start
        to_waypoint = waypoint - start
        cosine = np.dot(moved, to_waypoint) / (
            np.linalg.norm(moved) * np.linalg.norm(to_waypoint)
        )
        assert cosine == pytest.approx(1.0, abs=1e-6)

    def test_travelled_distance_bounded_by_speed(self):
        rng = np.random.default_rng(6)
        model = RandomWaypointMobility([0.0, 0.0], BOUNDS, speed_range_m_s=(3.0, 8.0),
                                       rng=rng)
        travelled = model.advance(10.0)
        assert travelled <= 8.0 * 10.0 + 1e-6

    def test_pause_slows_progress(self):
        rng = np.random.default_rng(7)
        no_pause = RandomWaypointMobility([0.0, 0.0], BOUNDS, speed_range_m_s=(10.0, 10.0),
                                          pause_s=0.0, rng=rng)
        rng2 = np.random.default_rng(7)
        with_pause = RandomWaypointMobility([0.0, 0.0], BOUNDS, speed_range_m_s=(10.0, 10.0),
                                            pause_s=5.0, rng=rng2)
        d1 = sum(no_pause.advance(10.0) for _ in range(20))
        d2 = sum(with_pause.advance(10.0) for _ in range(20))
        assert d2 <= d1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility([0, 0], BOUNDS, speed_range_m_s=(0.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypointMobility([0, 0], BOUNDS, pause_s=-1.0)
