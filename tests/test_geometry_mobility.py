"""Tests for the mobility models."""

import numpy as np
import pytest

from repro.geometry.mobility import (
    MobilityBatch,
    RandomDirectionMobility,
    RandomWaypointMobility,
    StaticMobility,
    advance_all,
)

BOUNDS = (-1000.0, 1000.0, -1000.0, 1000.0)


class TestStaticMobility:
    def test_never_moves(self):
        model = StaticMobility([10.0, 20.0])
        assert model.advance(100.0) == 0.0
        assert np.allclose(model.position, [10.0, 20.0])
        assert model.speed_m_s == 0.0

    def test_rejects_negative_dt(self):
        with pytest.raises(ValueError):
            StaticMobility([0, 0]).advance(-1.0)


class TestRandomDirectionMobility:
    def test_stays_inside_bounds(self):
        rng = np.random.default_rng(0)
        model = RandomDirectionMobility([0.0, 0.0], BOUNDS, speed_m_s=50.0,
                                        mean_epoch_s=5.0, rng=rng)
        for _ in range(500):
            model.advance(1.0)
            x, y = model.position
            assert BOUNDS[0] - 1e-6 <= x <= BOUNDS[1] + 1e-6
            assert BOUNDS[2] - 1e-6 <= y <= BOUNDS[3] + 1e-6

    def test_travelled_distance_matches_speed(self):
        rng = np.random.default_rng(1)
        model = RandomDirectionMobility([0.0, 0.0], BOUNDS, speed_m_s=10.0, rng=rng)
        assert model.advance(3.0) == pytest.approx(30.0)

    def test_zero_speed_stays_put(self):
        model = RandomDirectionMobility([5.0, 5.0], BOUNDS, speed_m_s=0.0,
                                        rng=np.random.default_rng(0))
        model.advance(10.0)
        assert np.allclose(model.position, [5.0, 5.0])

    def test_speed_range(self):
        rng = np.random.default_rng(2)
        model = RandomDirectionMobility([0.0, 0.0], BOUNDS, speed_m_s=(1.0, 5.0),
                                        mean_epoch_s=0.5, rng=rng)
        for _ in range(50):
            model.advance(1.0)
            assert 1.0 <= model.speed_m_s <= 5.0

    def test_direction_changes_over_time(self):
        rng = np.random.default_rng(3)
        model = RandomDirectionMobility([0.0, 0.0], BOUNDS, speed_m_s=1.0,
                                        mean_epoch_s=1.0, rng=rng)
        first = model.direction_rad
        model.advance(50.0)
        assert model.direction_rad != pytest.approx(first)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomDirectionMobility([0, 0], (1.0, 0.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            RandomDirectionMobility([0, 0], BOUNDS, speed_m_s=-1.0)
        with pytest.raises(ValueError):
            RandomDirectionMobility([0, 0], BOUNDS, speed_m_s=(5.0, 1.0))
        with pytest.raises(ValueError):
            RandomDirectionMobility([0, 0], BOUNDS, mean_epoch_s=0.0)


class TestRandomWaypointMobility:
    def test_stays_inside_bounds(self):
        rng = np.random.default_rng(4)
        model = RandomWaypointMobility([0.0, 0.0], BOUNDS, speed_range_m_s=(5.0, 20.0),
                                       rng=rng)
        for _ in range(300):
            model.advance(2.0)
            x, y = model.position
            assert BOUNDS[0] - 1e-6 <= x <= BOUNDS[1] + 1e-6
            assert BOUNDS[2] - 1e-6 <= y <= BOUNDS[3] + 1e-6

    def test_reaches_waypoint_direction(self):
        rng = np.random.default_rng(5)
        model = RandomWaypointMobility([0.0, 0.0], BOUNDS, speed_range_m_s=(10.0, 10.0),
                                       rng=rng)
        waypoint = model.waypoint
        start = model.position
        model.advance(1.0)
        moved = model.position - start
        to_waypoint = waypoint - start
        cosine = np.dot(moved, to_waypoint) / (
            np.linalg.norm(moved) * np.linalg.norm(to_waypoint)
        )
        assert cosine == pytest.approx(1.0, abs=1e-6)

    def test_travelled_distance_bounded_by_speed(self):
        rng = np.random.default_rng(6)
        model = RandomWaypointMobility([0.0, 0.0], BOUNDS, speed_range_m_s=(3.0, 8.0),
                                       rng=rng)
        travelled = model.advance(10.0)
        assert travelled <= 8.0 * 10.0 + 1e-6

    def test_pause_slows_progress(self):
        rng = np.random.default_rng(7)
        no_pause = RandomWaypointMobility([0.0, 0.0], BOUNDS, speed_range_m_s=(10.0, 10.0),
                                          pause_s=0.0, rng=rng)
        rng2 = np.random.default_rng(7)
        with_pause = RandomWaypointMobility([0.0, 0.0], BOUNDS, speed_range_m_s=(10.0, 10.0),
                                            pause_s=5.0, rng=rng2)
        d1 = sum(no_pause.advance(10.0) for _ in range(20))
        d2 = sum(with_pause.advance(10.0) for _ in range(20))
        assert d2 <= d1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility([0, 0], BOUNDS, speed_range_m_s=(0.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypointMobility([0, 0], BOUNDS, pause_s=-1.0)


class TestBatchedMobility:
    def _make_models(self, n, seed, bounds=(-500.0, 500.0, -400.0, 400.0)):
        rng = np.random.default_rng(seed)
        models = []
        for _ in range(n):
            start = rng.uniform([-400, -300], [400, 300])
            models.append(
                RandomDirectionMobility(
                    start, bounds, speed_m_s=(5.0, 20.0), mean_epoch_s=0.5, rng=rng
                )
            )
        return models

    def test_advance_all_matches_loop(self):
        loop_models = self._make_models(25, seed=11)
        batch_models = self._make_models(25, seed=11)
        for _ in range(40):
            expected = np.asarray([m.advance(0.05) for m in loop_models])
            got = advance_all(batch_models, 0.05)
            assert np.array_equal(expected, got)
        for a, b in zip(loop_models, batch_models):
            assert np.array_equal(a.position, b.position)

    def test_mobility_batch_bit_identical_to_loop(self):
        # mean_epoch_s=0.5 with dt=0.05 forces frequent epoch/boundary
        # fallbacks, exercising both the vector path and the scalar resync.
        loop_models = self._make_models(30, seed=23)
        batch_models = self._make_models(30, seed=23)
        batch = MobilityBatch(batch_models)
        for _ in range(60):
            expected = np.asarray([m.advance(0.05) for m in loop_models])
            got = batch.advance(0.05)
            assert np.array_equal(expected, got)
            expected_pos = np.vstack([m.position for m in loop_models])
            assert np.array_equal(expected_pos, batch.positions)

    def test_mobility_batch_shares_position_storage(self):
        models = self._make_models(4, seed=3)
        buffer = np.zeros((4, 2))
        batch = MobilityBatch(models, positions_out=buffer)
        batch.advance(0.1)
        assert np.array_equal(buffer, np.vstack([m.position for m in models]))

    def test_all_static_fast_path(self):
        models = [StaticMobility(np.array([float(i), 0.0])) for i in range(8)]
        moved = advance_all(models, 1.0)
        assert np.array_equal(moved, np.zeros(8))
        batch = MobilityBatch(models)
        assert np.array_equal(batch.advance(1.0), np.zeros(8))
        assert np.array_equal(batch.positions[:, 0], np.arange(8.0))

    def test_mixed_population(self):
        rng = np.random.default_rng(5)
        bounds = (-500.0, 500.0, -400.0, 400.0)
        models = [
            StaticMobility(np.array([10.0, 20.0])),
            RandomDirectionMobility(np.zeros(2), bounds, rng=rng),
            RandomWaypointMobility(np.zeros(2), bounds, rng=rng),
        ]
        batch = MobilityBatch(models)
        moved = batch.advance(0.2)
        assert moved[0] == 0.0
        assert moved[1] > 0.0
        assert moved[2] > 0.0
        assert np.array_equal(batch.positions[0], [10.0, 20.0])

    def test_negative_dt_rejected(self):
        models = self._make_models(2, seed=1)
        with pytest.raises(ValueError):
            advance_all(models, -0.1)
        with pytest.raises(ValueError):
            MobilityBatch(models).advance(-0.1)


class TestSharedMobilesAcrossBatches:
    def test_two_batches_over_same_models_stay_consistent(self):
        # Mobiles reused by two networks (ablation sweeps): each network's
        # batch must keep tracking the true positions even though the other
        # batch rebinds the models' storage.
        bounds = (-500.0, 500.0, -400.0, 400.0)

        def make(seed):
            rng = np.random.default_rng(seed)
            return [
                RandomDirectionMobility(
                    rng.uniform([-400, -300], [400, 300]),
                    bounds,
                    speed_m_s=(5.0, 20.0),
                    mean_epoch_s=0.5,
                    rng=rng,
                )
                for _ in range(20)
            ]

        shared = make(31)
        reference = make(31)
        batch_a = MobilityBatch(shared)
        batch_b = MobilityBatch(shared)  # rebinds storage away from batch_a
        for _ in range(50):
            moved_a = batch_a.advance(0.05)
            expected_a = np.asarray([m.advance(0.05) for m in reference])
            assert np.array_equal(moved_a, expected_a)
            assert np.array_equal(
                batch_a.positions, np.vstack([m.position for m in reference])
            )
            moved_b = batch_b.advance(0.05)
            expected_b = np.asarray([m.advance(0.05) for m in reference])
            assert np.array_equal(moved_b, expected_b)
            assert np.array_equal(
                batch_b.positions, np.vstack([m.position for m in reference])
            )


class TestMixedPopulationRngOrder:
    def test_batch_matches_loop_with_shared_rng(self):
        # A waypoint model at a LOWER index than random-direction models,
        # all sharing one generator: the batch must consume draws in global
        # index order exactly like the plain per-model loop.
        bounds = (-500.0, 500.0, -400.0, 400.0)

        def make(seed):
            rng = np.random.default_rng(seed)
            models = [
                RandomWaypointMobility(
                    np.zeros(2), bounds, speed_range_m_s=(5.0, 20.0), rng=rng
                )
            ]
            for _ in range(6):
                models.append(
                    RandomDirectionMobility(
                        rng.uniform([-400, -300], [400, 300]),
                        bounds,
                        speed_m_s=(5.0, 20.0),
                        mean_epoch_s=0.3,
                        rng=rng,
                    )
                )
            models.append(StaticMobility(np.array([1.0, 2.0])))
            return models

        loop_models = make(41)
        batch = MobilityBatch(make(41))
        for _ in range(80):
            expected = np.asarray([m.advance(0.05) for m in loop_models])
            got = batch.advance(0.05)
            assert np.array_equal(expected, got)
            assert np.array_equal(
                batch.positions, np.vstack([m.position for m in loop_models])
            )
