"""Integration tests of the dynamic system simulator."""

from dataclasses import replace

import pytest

from repro.config import MacConfig, RadioConfig, SystemConfig
from repro.mac import (
    EqualShareScheduler,
    FcfsScheduler,
    JabaSdScheduler,
    TemporalExtensionScheduler,
)
from repro.simulation import DynamicSystemSimulator, ScenarioConfig
from repro.simulation.scenario import TrafficConfig


@pytest.fixture(scope="module")
def fast_scenario():
    return ScenarioConfig.fast_test(
        duration_s=4.0,
        warmup_s=0.5,
        num_data_users_per_cell=3,
        num_voice_users_per_cell=3,
        traffic=TrafficConfig(mean_reading_time_s=1.5, packet_call_min_bits=24_000,
                              packet_call_max_bits=400_000),
    )


class TestDynamicSimulator:
    def test_run_produces_sane_summary(self, fast_scenario):
        simulator = DynamicSystemSimulator(fast_scenario, JabaSdScheduler("J1"))
        result = simulator.run()
        assert result.completed_packet_calls > 0
        assert result.carried_throughput_bps > 0.0
        assert 0.0 < result.mean_packet_delay_s < 20.0
        assert result.mean_granted_m >= 1.0
        assert 0.0 <= result.forward_utilisation <= 1.2
        assert result.num_data_users == fast_scenario.total_data_users

    def test_reproducible_with_same_seed(self, fast_scenario):
        a = DynamicSystemSimulator(fast_scenario, JabaSdScheduler("J1")).run()
        b = DynamicSystemSimulator(fast_scenario, JabaSdScheduler("J1")).run()
        assert a.mean_packet_delay_s == pytest.approx(b.mean_packet_delay_s)
        assert a.completed_packet_calls == b.completed_packet_calls
        assert a.carried_throughput_bps == pytest.approx(b.carried_throughput_bps)

    def test_different_seed_differs(self, fast_scenario):
        a = DynamicSystemSimulator(fast_scenario, JabaSdScheduler("J1")).run()
        b = DynamicSystemSimulator(fast_scenario.with_seed(123),
                                   JabaSdScheduler("J1")).run()
        assert a.completed_packet_calls != b.completed_packet_calls or (
            a.mean_packet_delay_s != pytest.approx(b.mean_packet_delay_s)
        )

    @pytest.mark.parametrize(
        "scheduler_factory",
        [lambda: JabaSdScheduler("J2"), FcfsScheduler, EqualShareScheduler,
         TemporalExtensionScheduler],
        ids=["JABA-J2", "FCFS", "EqualShare", "JABA-TD"],
    )
    def test_all_schedulers_complete(self, fast_scenario, scheduler_factory):
        result = DynamicSystemSimulator(fast_scenario, scheduler_factory()).run()
        assert result.completed_packet_calls > 0

    def test_burst_power_released_at_end(self, fast_scenario):
        simulator = DynamicSystemSimulator(fast_scenario, JabaSdScheduler("J1"))
        simulator.run()
        # After the run, committed burst power equals the power of the bursts
        # still on air (never negative, never orphaned).
        still_committed_fwd = sum(
            sum(b.grant.forward_power_w.values()) for b in simulator.active_bursts
        )
        assert simulator.network.forward_burst_power_w.sum() == pytest.approx(
            still_committed_fwd, rel=1e-6, abs=1e-9
        )
        still_committed_rev = sum(
            sum(b.grant.reverse_power_w.values()) for b in simulator.active_bursts
        )
        assert simulator.network.reverse_burst_power_w.sum() == pytest.approx(
            still_committed_rev, rel=1e-6, abs=1e-12
        )

    def test_pending_and_bursting_users_hold_channels(self, fast_scenario):
        simulator = DynamicSystemSimulator(fast_scenario, JabaSdScheduler("J1"))
        simulator.run()
        control = fast_scenario.system.radio.control_channel_rate_fraction
        bursting = {b.grant.request.mobile_index for b in simulator.active_bursts}
        for j in simulator.data_user_indices:
            mobile = simulator.mobiles[j]
            if j in bursting:
                assert mobile.fch_active and mobile.fch_rate_factor == 1.0
            elif mobile.fch_active:
                assert mobile.fch_rate_factor in (control, 1.0)

    def test_offered_load_tracks_traffic_config(self, fast_scenario):
        result = DynamicSystemSimulator(fast_scenario, JabaSdScheduler("J1")).run()
        per_user = (
            fast_scenario.traffic.packet_call_min_bits
        )  # loose lower bound on mean size
        expected_min = (
            fast_scenario.total_data_users * per_user
            / fast_scenario.traffic.mean_reading_time_s
            * 0.2
        )
        assert result.offered_load_bps > expected_min

    def test_scalar_admission_path_matches_batched(self, fast_scenario):
        # The batched_admission switch changes the implementation, never the
        # decisions: full runs agree bit for bit.
        batched = DynamicSystemSimulator(
            fast_scenario, JabaSdScheduler("J1")
        ).run()
        scalar = DynamicSystemSimulator(
            replace(fast_scenario, batched_admission=False), JabaSdScheduler("J1")
        ).run()
        assert batched.completed_packet_calls == scalar.completed_packet_calls
        assert batched.mean_packet_delay_s == scalar.mean_packet_delay_s
        assert batched.carried_throughput_bps == scalar.carried_throughput_bps
        assert batched.mean_granted_m == scalar.mean_granted_m
        assert batched.forward_utilisation == scalar.forward_utilisation


class TestPowerControlWiring:
    """ScenarioConfig wiring of warm start and the solver tolerance."""

    SUMMARY_FIELDS = (
        "mean_packet_delay_s",
        "completed_packet_calls",
        "carried_throughput_bps",
        "mean_granted_m",
        "grant_rate",
        "forward_utilisation",
        "reverse_rise_db",
        "fch_outage_fraction",
        "handoff_events",
    )

    @staticmethod
    def _tolerance_scenario(warm_start: bool) -> ScenarioConfig:
        # A tight fixed-point tolerance (with enough iteration headroom) so
        # the warm/cold comparison measures the warm start itself, not the
        # successive-delta truncation error of the default solver settings.
        system = SystemConfig(
            radio=RadioConfig(
                num_rings=1, cell_radius_m=800.0, power_control_iterations=400
            ),
            mac=MacConfig(),
        )
        return ScenarioConfig.fast_test(
            system=system,
            duration_s=1.5,
            warmup_s=0.25,
            traffic=TrafficConfig(
                mean_reading_time_s=1.0,
                packet_call_min_bits=24_000,
                packet_call_max_bits=200_000,
            ),
            warm_start_power_control=warm_start,
            power_control_tolerance=1e-10,
        )

    def test_settings_reach_the_network(self):
        scenario = ScenarioConfig.fast_test(
            warm_start_power_control=True, power_control_tolerance=1e-9
        )
        simulator = DynamicSystemSimulator(scenario, JabaSdScheduler("J1"))
        assert simulator.network.warm_start_power_control is True
        assert simulator.system.radio.power_control_tolerance == 1e-9
        assert simulator.network.reverse_pc.tolerance == 1e-9
        assert simulator.network.forward_pc.tolerance == 1e-9
        # The scenario's own system config is left untouched.
        assert scenario.system.radio.power_control_tolerance != 1e-9

    def test_tolerance_override_validated(self):
        with pytest.raises(ValueError):
            ScenarioConfig.fast_test(power_control_tolerance=0.0)

    def test_cold_start_defaults_bit_identical(self, fast_scenario):
        # The new fields default to the pre-wiring behaviour: an untouched
        # scenario and an explicitly-cold scenario produce the same run.
        default = DynamicSystemSimulator(fast_scenario, JabaSdScheduler("J1")).run()
        explicit = DynamicSystemSimulator(
            replace(
                fast_scenario,
                warm_start_power_control=False,
                power_control_tolerance=(
                    fast_scenario.system.radio.power_control_tolerance
                ),
            ),
            JabaSdScheduler("J1"),
        ).run()
        for field in self.SUMMARY_FIELDS:
            assert getattr(default, field) == getattr(explicit, field), field

    def test_warm_start_within_tolerance(self):
        cold = DynamicSystemSimulator(
            self._tolerance_scenario(False), JabaSdScheduler("J1")
        ).run()
        warm = DynamicSystemSimulator(
            self._tolerance_scenario(True), JabaSdScheduler("J1")
        ).run()
        for field in self.SUMMARY_FIELDS:
            a, b = getattr(cold, field), getattr(warm, field)
            if isinstance(a, float):
                assert b == pytest.approx(a, rel=1e-6, abs=1e-9), field
            else:
                assert a == b, field


class TestSolverWarmStartWiring:
    """ScenarioConfig(warm_start_solver=...) reaches the scheduler."""

    def test_flag_defaults_to_cold(self):
        scheduler = JabaSdScheduler("J1", solver="optimal")
        DynamicSystemSimulator(ScenarioConfig.fast_test(), scheduler)
        assert scheduler.warm_start is False

    def test_flag_reaches_scheduler_and_resets_memory(self):
        scheduler = JabaSdScheduler("J1", solver="optimal")
        scheduler._last_assignment["stale"] = {0: 1}
        DynamicSystemSimulator(
            ScenarioConfig.fast_test(warm_start_solver=True), scheduler
        )
        assert scheduler.warm_start is True
        assert scheduler._last_assignment == {}

    def test_reused_scheduler_is_cooled_down_by_cold_scenario(self):
        """A warm run must not leak warm-start state into a later cold run."""
        scheduler = JabaSdScheduler("J1", solver="optimal")
        DynamicSystemSimulator(
            ScenarioConfig.fast_test(warm_start_solver=True), scheduler
        ).run()
        assert scheduler.warm_start is True
        assert scheduler._last_assignment
        DynamicSystemSimulator(ScenarioConfig.fast_test(), scheduler)
        assert scheduler.warm_start is False
        assert scheduler._last_assignment == {}

    def test_baseline_scheduler_ignores_flag(self):
        simulator = DynamicSystemSimulator(
            ScenarioConfig.fast_test(warm_start_solver=True), FcfsScheduler()
        )
        result = simulator.run()
        assert result.completed_packet_calls >= 0

    def test_warm_run_matches_cold_with_optimal_solver(self):
        """Warm starts only seed the incumbent: the proven optima agree."""
        cold = DynamicSystemSimulator(
            ScenarioConfig.fast_test(), JabaSdScheduler("J1", solver="optimal")
        ).run()
        warm_scheduler = JabaSdScheduler("J1", solver="optimal")
        warm = DynamicSystemSimulator(
            ScenarioConfig.fast_test(warm_start_solver=True), warm_scheduler
        ).run()
        assert warm_scheduler._last_assignment  # memory was exercised
        assert warm.completed_packet_calls == cold.completed_packet_calls
        assert warm.carried_throughput_bps == pytest.approx(
            cold.carried_throughput_bps, rel=1e-9
        )
        assert warm.mean_packet_delay_s == pytest.approx(
            cold.mean_packet_delay_s, rel=1e-9
        )
