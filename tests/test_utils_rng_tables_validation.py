"""Tests for repro.utils.rng, repro.utils.tables and repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, spawn_many, spawn_rng
from repro.utils.tables import format_records, format_table
from repro.utils import validation


class TestRngFactory:
    def test_reproducible_streams(self):
        a = RngFactory(42).child("x")
        b = RngFactory(42).child("x")
        assert a.random() == b.random()

    def test_children_are_independent(self):
        factory = RngFactory(0)
        g1, g2 = factory.children(2)
        assert g1.random() != g2.random()

    def test_fork_gives_different_streams(self):
        factory = RngFactory(1)
        fork = factory.fork()
        assert factory.child().random() != fork.child().random()

    def test_spawn_counter(self):
        factory = RngFactory(3)
        factory.child()
        factory.children(2)
        factory.fork()
        assert factory.spawned == 4

    def test_children_negative_count(self):
        with pytest.raises(ValueError):
            RngFactory(0).children(-1)

    def test_spawn_rng_and_many(self):
        assert isinstance(spawn_rng(5), np.random.Generator)
        gens = list(spawn_many(5, 3))
        assert len(gens) == 3


class TestTables:
    def test_basic_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "-" in lines[1]
        assert "2.5" in lines[2]
        assert lines[3].strip().endswith("-")

    def test_title(self):
        text = format_table(["col"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_wrong_row_length(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_records(self):
        records = [{"x": 1, "y": 2.0}, {"x": 3, "y": 4.0}]
        text = format_records(records)
        assert "x" in text and "y" in text and "3" in text

    def test_format_records_empty(self):
        assert format_records([], title="nothing") == "nothing"

    def test_format_records_column_selection(self):
        records = [{"x": 1, "y": 2.0}]
        text = format_records(records, columns=["y"])
        assert "x" not in text.splitlines()[0]


class TestValidation:
    def test_check_positive(self):
        assert validation.check_positive("v", 3) == 3.0
        with pytest.raises(ValueError):
            validation.check_positive("v", 0)

    def test_check_non_negative(self):
        assert validation.check_non_negative("v", 0) == 0.0
        with pytest.raises(ValueError):
            validation.check_non_negative("v", -1)

    def test_check_probability(self):
        assert validation.check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            validation.check_probability("p", 1.5)

    def test_check_in_range(self):
        assert validation.check_in_range("x", 2.0, 1.0, 3.0) == 2.0
        with pytest.raises(ValueError):
            validation.check_in_range("x", 4.0, 1.0, 3.0)

    def test_check_positive_int(self):
        assert validation.check_positive_int("n", 5) == 5
        with pytest.raises(ValueError):
            validation.check_positive_int("n", 0)
        with pytest.raises(ValueError):
            validation.check_positive_int("n", 2.5)

    def test_check_non_negative_int(self):
        assert validation.check_non_negative_int("n", 0) == 0
        with pytest.raises(ValueError):
            validation.check_non_negative_int("n", -1)
