"""Crash consistency of the checkpoint journal (WAL + compaction)."""

import json
import os

import pytest

from repro.experiments.journal import (
    CheckpointJournal,
    _decode_line,
    _encode_line,
)

FP = "deadbeefcafe0123"


def make_journal(tmp_path, **kwargs):
    return CheckpointJournal(
        str(tmp_path / "ckpt.json"),
        FP,
        meta={"campaign": "toy", "root_seed": 7},
        **kwargs,
    )


def reload_completed(tmp_path, **kwargs):
    journal = make_journal(tmp_path, **kwargs)
    completed = journal.load()
    journal.close()
    return completed


class TestLineCodec:
    def test_round_trip(self):
        line = _encode_line('{"key":"0/1","metrics":{"x":1.5}}')
        assert _decode_line(line.encode()) == {"key": "0/1", "metrics": {"x": 1.5}}

    def test_missing_newline_is_torn(self):
        line = _encode_line('{"key":"0/1"}').encode()[:-1]
        assert _decode_line(line) is None

    def test_crc_mismatch_rejected(self):
        line = _encode_line('{"key":"0/1"}').encode()
        corrupted = line.replace(b'"0/1"', b'"9/9"')
        assert _decode_line(corrupted) is None

    def test_non_object_body_rejected(self):
        assert _decode_line(_encode_line("[1,2]").encode()) is None


class TestAppendReplay:
    def test_append_then_reload(self, tmp_path):
        with make_journal(tmp_path) as journal:
            journal.load()
            journal.append("0/0", {"x": 1.0})
            journal.append("0/1", {"x": 2.0})
        assert reload_completed(tmp_path) == {"0/0": {"x": 1.0}, "0/1": {"x": 2.0}}

    def test_wal_survives_without_close(self, tmp_path):
        # Simulates a coordinator killed before any compaction: the JSON
        # never exists, every record is recovered from the WAL alone.
        journal = make_journal(tmp_path)
        journal.load()
        journal.append("0/0", {"x": 1.0})
        journal._handle.close()  # drop the handle, skip compaction
        assert not os.path.exists(journal.path)
        assert reload_completed(tmp_path) == {"0/0": {"x": 1.0}}

    def test_append_is_fsynced(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
        journal = make_journal(tmp_path)
        journal.load()
        synced.clear()
        journal.append("0/0", {"x": 1.0})
        assert synced, "append must fsync before returning"

    def test_fsync_false_skips_the_sync(self, tmp_path, monkeypatch):
        journal = make_journal(tmp_path, fsync=False)
        journal.load()
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        journal.append("0/0", {"x": 1.0})
        assert synced == []

    def test_load_twice_refused(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.load()
        with pytest.raises(RuntimeError, match="exactly once"):
            journal.load()

    def test_append_before_load_refused(self, tmp_path):
        with pytest.raises(RuntimeError, match="load"):
            make_journal(tmp_path).append("0/0", {})


class TestTornTail:
    def _wal_bytes(self, tmp_path, records=3):
        journal = make_journal(tmp_path)
        journal.load()
        for index in range(records):
            journal.append(f"0/{index}", {"x": float(index)})
        journal._handle.close()
        with open(journal.wal_path, "rb") as handle:
            return journal.wal_path, handle.read()

    def test_kill_at_every_byte_offset_recovers_prefix(self, tmp_path):
        wal_path, raw = self._wal_bytes(tmp_path)
        line_ends = [i + 1 for i, b in enumerate(raw) if raw[i : i + 1] == b"\n"]
        for cut in range(len(raw) + 1):
            with open(wal_path, "wb") as handle:
                handle.write(raw[:cut])
            completed = reload_completed(tmp_path)
            complete_records = sum(1 for end in line_ends[1:] if end <= cut)
            assert len(completed) == complete_records, f"cut at byte {cut}"
            if complete_records:
                # The compacted JSON left behind carries the same records.
                with open(str(tmp_path / "ckpt.json")) as handle:
                    assert len(json.load(handle)["completed"]) == complete_records
                os.remove(str(tmp_path / "ckpt.json"))

    def test_torn_tail_truncated_and_appendable(self, tmp_path):
        wal_path, raw = self._wal_bytes(tmp_path)
        with open(wal_path, "wb") as handle:
            handle.write(raw[:-4])  # tear the last record
        journal = make_journal(tmp_path)
        completed = journal.load()
        assert set(completed) == {"0/0", "0/1"}
        journal.append("1/0", {"x": 9.0})
        journal._handle.close()
        assert set(reload_completed(tmp_path)) == {"0/0", "0/1", "1/0"}

    def test_corrupt_middle_line_drops_the_suffix(self, tmp_path):
        wal_path, raw = self._wal_bytes(tmp_path)
        lines = raw.splitlines(keepends=True)
        lines[2] = lines[2].replace(b'"x"', b'"y"', 1)  # breaks the CRC
        with open(wal_path, "wb") as handle:
            handle.write(b"".join(lines))
        completed = reload_completed(tmp_path)
        # Record 1 survives; the corrupt record 2 and everything after drop.
        assert set(completed) == {"0/0"}

    def test_foreign_wal_fingerprint_refused(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.load()
        journal.append("0/0", {"x": 1.0})
        journal._handle.close()
        other = CheckpointJournal(str(tmp_path / "ckpt.json"), "0123456789abcdef")
        with pytest.raises(ValueError, match="different campaign"):
            other.load()


class TestCompaction:
    def test_compaction_produces_json_and_resets_wal(self, tmp_path):
        journal = make_journal(tmp_path, compact_every=2)
        journal.load()
        journal.append("0/0", {"x": 1.0})
        assert not os.path.exists(journal.path)
        journal.append("0/1", {"x": 2.0})  # triggers the compaction
        with open(journal.path) as handle:
            payload = json.load(handle)
        assert payload["fingerprint"] == FP
        assert payload["campaign"] == "toy"
        assert len(payload["completed"]) == 2
        # The WAL is back to header-only and appends keep working.
        with open(journal.wal_path, "rb") as handle:
            assert handle.read().count(b"\n") == 1
        journal.append("0/2", {"x": 3.0})
        journal.close()
        assert len(reload_completed(tmp_path)) == 3

    def test_close_removes_wal_and_leaves_no_tmp(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.load()
        journal.append("0/0", {"x": 1.0})
        journal.close()
        assert os.path.exists(journal.path)
        assert not os.path.exists(journal.wal_path)
        assert not os.path.exists(journal.path + ".tmp")
        assert not os.path.exists(journal.wal_path + ".tmp")

    def test_kill_between_json_publish_and_wal_reset(self, tmp_path):
        # Crash window: compaction published the JSON but never reset the
        # WAL.  Replay must merge the duplicates idempotently.
        journal = make_journal(tmp_path)
        journal.load()
        journal.append("0/0", {"x": 1.0})
        journal.append("0/1", {"x": 2.0})
        with open(journal.wal_path, "rb") as handle:
            stale_wal = handle.read()
        journal.close()  # compacts; WAL removed
        with open(journal.wal_path, "wb") as handle:
            handle.write(stale_wal)  # resurrect the pre-compaction WAL
        completed = reload_completed(tmp_path)
        assert completed == {"0/0": {"x": 1.0}, "0/1": {"x": 2.0}}

    def test_kill_before_json_publish_keeps_wal_authoritative(self, tmp_path):
        # Crash window: compaction died before the JSON rename — the old
        # JSON (or none) plus the full WAL still reconstructs every record.
        journal = make_journal(tmp_path, compact_every=2)
        journal.load()
        journal.append("0/0", {"x": 1.0})
        journal.append("0/1", {"x": 2.0})  # compaction #1: JSON has 2
        journal.append("1/0", {"x": 3.0})
        journal._handle.close()  # die before compaction #2
        completed = reload_completed(tmp_path)
        assert len(completed) == 3

    def test_corrupt_json_quarantined_wal_still_replays(self, tmp_path):
        journal = make_journal(tmp_path, compact_every=2)
        journal.load()
        for index in range(3):
            journal.append(f"0/{index}", {"x": float(index)})
        journal._handle.close()
        with open(journal.path, "w") as handle:
            handle.write('{"fingerprint": tru')  # torn mid-write
        with pytest.warns(RuntimeWarning, match="corrupt"):
            completed = reload_completed(tmp_path)
        assert os.path.exists(journal.path + ".corrupt")
        # The JSON carried 0/0 and 0/1; only the WAL record after the last
        # compaction (0/2) is guaranteed to survive JSON corruption.
        assert "0/2" in completed

    def test_compact_every_validation(self, tmp_path):
        with pytest.raises(ValueError, match="compact_every"):
            make_journal(tmp_path, compact_every=0)
