"""End-to-end invariants of the complete system.

These tests run short dynamic simulations and check physical / accounting
invariants that must hold regardless of scheduler, load or seed — the kind of
silent-corruption bugs unit tests of individual modules cannot catch.
"""

import numpy as np
import pytest

from repro.mac import FcfsScheduler, JabaSdScheduler
from repro.mac.requests import LinkDirection
from repro.simulation import DynamicSystemSimulator, ScenarioConfig
from repro.simulation.dynamic import _ActiveBurst
from repro.simulation.scenario import TrafficConfig


def run_simulator(scheduler, seed=3, load=4, duration=3.0):
    scenario = ScenarioConfig.fast_test(
        duration_s=duration,
        warmup_s=0.5,
        num_data_users_per_cell=load,
        num_voice_users_per_cell=3,
        seed=seed,
        traffic=TrafficConfig(mean_reading_time_s=1.0,
                              packet_call_min_bits=32_000,
                              packet_call_max_bits=600_000),
    )
    simulator = DynamicSystemSimulator(scenario, scheduler)
    result = simulator.run()
    return simulator, result


class TestSystemInvariants:
    @pytest.mark.parametrize("scheduler_factory", [lambda: JabaSdScheduler("J1"),
                                                   FcfsScheduler],
                             ids=["JABA-SD", "FCFS"])
    def test_power_accounting_never_negative(self, scheduler_factory):
        simulator, _ = run_simulator(scheduler_factory())
        assert np.all(simulator.network.forward_burst_power_w >= -1e-12)
        assert np.all(simulator.network.reverse_burst_power_w >= -1e-12)

    def test_delays_at_least_one_frame(self):
        simulator, result = run_simulator(JabaSdScheduler("J1"))
        frame = simulator.scenario.system.mac.frame_duration_s
        # A packet call can never finish faster than one scheduling frame.
        assert result.mean_packet_delay_s >= frame - 1e-9

    def test_carried_never_exceeds_offered(self):
        _, result = run_simulator(JabaSdScheduler("J1"), duration=4.0)
        # Carried counts only completed calls, offered counts all arrivals in
        # the measurement window; a small tolerance covers calls that arrived
        # just before the window and completed inside it.
        assert result.carried_throughput_bps <= result.offered_load_bps * 1.3

    def test_active_bursts_reference_live_requests(self):
        simulator, _ = run_simulator(JabaSdScheduler("J1"))
        pending_ids = {
            r.request_id for queue in simulator.pending.values() for r in queue
        }
        for burst in simulator.active_bursts:
            assert isinstance(burst, _ActiveBurst)
            # A request being served is never simultaneously pending.
            assert burst.grant.request.request_id not in pending_ids

    def test_completed_calls_leave_no_residual_bits(self):
        simulator, _ = run_simulator(JabaSdScheduler("J1"), duration=4.0)
        # Every tracked (incomplete) request must still have bits to send;
        # completed requests are removed from the tracking map.
        for link in (LinkDirection.FORWARD, LinkDirection.REVERSE):
            for request in simulator.pending[link]:
                assert request.remaining_bits > 0.0

    def test_handoff_states_always_consistent(self):
        simulator, _ = run_simulator(JabaSdScheduler("J1"))
        snapshot = simulator.network.snapshot()
        for state in snapshot.handoff_states:
            assert len(state.active_set) >= 1
            assert state.serving_cell == state.active_set[0]
            assert len(state.reduced_active_set) <= len(state.active_set)

    def test_forward_commitments_respect_budget_on_average(self):
        simulator, result = run_simulator(JabaSdScheduler("J1"), load=6, duration=4.0)
        budget = simulator.network.base_stations[0].max_traffic_power_w
        committed = simulator.network.forward_burst_power_w
        # Committed burst power can never exceed the whole traffic budget.
        assert np.all(committed <= budget + 1e-9)
        assert 0.0 <= result.forward_utilisation <= 1.2

    def test_same_seed_same_grants_across_schedulers_only_if_same_policy(self):
        _, a = run_simulator(JabaSdScheduler("J1"), seed=9, load=6)
        _, b = run_simulator(FcfsScheduler(), seed=9, load=6)
        # Different policies on identical arrivals/channels must not produce
        # byte-identical outcomes at a contended load (sanity check that the
        # scheduler is actually in the loop).
        assert (
            a.mean_packet_delay_s != pytest.approx(b.mean_packet_delay_s, rel=1e-12)
            or a.mean_granted_m != pytest.approx(b.mean_granted_m, rel=1e-12)
        )
