"""Tests for the metrics collector, scenario configuration and runner helpers."""

import math

import numpy as np
import pytest

from repro.mac.requests import LinkDirection
from repro.simulation.metrics import MetricsCollector, SimulationResult
from repro.simulation.runner import average_results
from repro.simulation.scenario import MobilityConfig, ScenarioConfig, TrafficConfig


class TestMetricsCollector:
    def test_packet_call_delay_accounting(self):
        metrics = MetricsCollector(warmup_s=0.0)
        metrics.record_packet_call_arrival(1.0, 1000.0)
        metrics.record_packet_call_completion(1.0, 3.0, 1000.0, LinkDirection.FORWARD)
        metrics.record_packet_call_arrival(2.0, 500.0)
        metrics.record_packet_call_completion(2.0, 2.5, 500.0, LinkDirection.REVERSE)
        assert metrics.delay_all.mean == pytest.approx(1.25)
        assert metrics.delay_per_link[LinkDirection.FORWARD].mean == pytest.approx(2.0)
        assert metrics.delay_per_link[LinkDirection.REVERSE].mean == pytest.approx(0.5)
        assert metrics.completed_calls == 2
        assert metrics.served_bits == pytest.approx(1500.0)

    def test_warmup_excludes_early_arrivals(self):
        metrics = MetricsCollector(warmup_s=5.0)
        metrics.record_packet_call_arrival(1.0, 1000.0)
        metrics.record_packet_call_completion(1.0, 6.0, 1000.0, LinkDirection.FORWARD)
        # Arrived during warm-up: not counted even though it completed later.
        assert metrics.completed_calls == 0
        metrics.record_packet_call_arrival(6.0, 2000.0)
        metrics.record_packet_call_completion(6.0, 7.0, 2000.0, LinkDirection.FORWARD)
        assert metrics.completed_calls == 1

    def test_frame_and_admission_records(self):
        metrics = MetricsCollector()
        metrics.record_frame(0.0, pending_requests=3, forward_utilisation=0.5,
                             reverse_rise_db=2.0, fch_outage_fraction=0.1)
        metrics.record_frame(1.0, pending_requests=5, forward_utilisation=0.7,
                             reverse_rise_db=3.0, fch_outage_fraction=0.2)
        metrics.record_admission(0.0, num_pending=4, num_granted=2,
                                 granted_ms=np.array([3, 0, 5, 0]))
        assert metrics.queue_length.mean == pytest.approx(4.0)
        assert metrics.granted_m.mean == pytest.approx(4.0)
        assert metrics.granted_requests == 2
        assert metrics.pending_request_frames == 4

    def test_summary(self):
        metrics = MetricsCollector()
        metrics.record_packet_call_arrival(0.0, 8000.0)
        metrics.record_frame(0.0, 1, 0.3, 1.0, 0.0)
        metrics.record_packet_call_completion(0.0, 2.0, 8000.0, LinkDirection.FORWARD)
        metrics.record_frame(4.0, 0, 0.2, 1.0, 0.0)
        result = metrics.summarise("test-sched", num_data_users=10, num_voice_users=5)
        assert isinstance(result, SimulationResult)
        assert result.scheduler == "test-sched"
        assert result.duration_s == pytest.approx(4.0)
        assert result.carried_throughput_bps == pytest.approx(2000.0)
        record = result.as_record()
        assert record["scheduler"] == "test-sched"
        assert "mean_delay_s" in record

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            MetricsCollector(warmup_s=-1.0)


class TestScenarioConfig:
    def test_population_counts(self):
        scenario = ScenarioConfig(num_data_users_per_cell=4, num_voice_users_per_cell=2)
        # Default system has 1 ring = 7 cells.
        assert scenario.total_data_users == 28
        assert scenario.total_voice_users == 14

    def test_with_load_and_seed(self):
        scenario = ScenarioConfig()
        loaded = scenario.with_load(20)
        reseeded = scenario.with_seed(99)
        assert loaded.num_data_users_per_cell == 20
        assert reseeded.seed == 99
        assert scenario.num_data_users_per_cell != 20 or scenario.seed != 99

    def test_fast_test_factory(self):
        scenario = ScenarioConfig.fast_test()
        assert scenario.duration_s <= 5.0
        assert scenario.total_data_users <= 7 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            TrafficConfig(forward_fraction=1.5)
        with pytest.raises(ValueError):
            TrafficConfig(mean_reading_time_s=0.0)
        with pytest.raises(ValueError):
            MobilityConfig(speed_range_m_s=(5.0, 1.0))


class TestAverageResults:
    def _result(self, delay, throughput):
        return SimulationResult(
            scheduler="s", num_data_users=10, num_voice_users=5, duration_s=10.0,
            mean_packet_delay_s=delay, p90_packet_delay_s=delay * 2,
            mean_forward_delay_s=delay, mean_reverse_delay_s=delay,
            completed_packet_calls=100, carried_throughput_bps=throughput,
            offered_load_bps=throughput * 1.1, mean_granted_m=8.0, grant_rate=0.8,
            mean_queue_length=2.0, forward_utilisation=0.5, reverse_rise_db=3.0,
            fch_outage_fraction=0.05, handoff_events=12, extra={"x": 1.0},
        )

    def test_mean_of_fields(self):
        merged = average_results([self._result(1.0, 1000.0), self._result(3.0, 3000.0)])
        assert merged.mean_packet_delay_s == pytest.approx(2.0)
        assert merged.carried_throughput_bps == pytest.approx(2000.0)
        assert merged.extra["x"] == pytest.approx(1.0)

    def test_nan_fields_ignored(self):
        a = self._result(1.0, 1000.0)
        b = self._result(math.nan, 3000.0)
        merged = average_results([a, b])
        assert merged.mean_packet_delay_s == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_results([])
