"""Tests for the link-gain map and the soft hand-off controller."""

import numpy as np
import pytest

from repro.cdma.handoff import SoftHandoffController
from repro.cdma.linkgain import LinkGainMap
from repro.geometry.hexgrid import HexagonalCellLayout


@pytest.fixture
def layout():
    return HexagonalCellLayout(num_rings=1, cell_radius_m=1000.0)


class TestLinkGainMap:
    def test_shapes(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=5, rng=rng)
        positions = np.zeros((5, 2))
        gains.set_positions(positions)
        assert gains.local_mean_gain().shape == (5, 7)
        assert gains.fading_power().shape == (5, 7)
        assert gains.instantaneous_gain().shape == (5, 7)
        assert gains.distances_m.shape == (5, 7)

    def test_nearest_cell_has_highest_path_gain(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=1, rng=rng, shadowing_std_db=0.0)
        position = layout.position_of(3) + np.array([50.0, 0.0])
        gains.set_positions(position.reshape(1, 2))
        row = gains.local_mean_gain()[0]
        assert int(np.argmax(row)) == 3

    def test_shadowing_statistics(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=200, rng=rng, shadowing_std_db=8.0,
                            site_correlation=0.5)
        shadow = gains.shadowing_db()
        assert abs(np.mean(shadow)) < 1.0
        assert np.std(shadow) == pytest.approx(8.0, rel=0.15)

    def test_site_correlation(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=2000, rng=rng, shadowing_std_db=8.0,
                            site_correlation=0.5)
        shadow = gains.shadowing_db()
        corr = np.corrcoef(shadow[:, 0], shadow[:, 1])[0, 1]
        assert corr == pytest.approx(0.5, abs=0.1)

    def test_advance_decorrelates_fading(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=3, rng=rng, doppler_hz=200.0)
        positions = np.zeros((3, 2))
        gains.set_positions(positions)
        before = gains.fading_power().copy()
        gains.advance(positions, moved_m=np.zeros(3), dt_s=0.5)
        after = gains.fading_power()
        assert not np.allclose(before, after)

    def test_advance_keeps_shadowing_when_static(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=2, rng=rng, shadowing_std_db=8.0)
        positions = np.zeros((2, 2))
        gains.set_positions(positions)
        before = gains.shadowing_db().copy()
        gains.advance(positions, moved_m=np.zeros(2), dt_s=0.02)
        assert np.allclose(before, gains.shadowing_db())

    def test_fading_unit_mean(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=300, rng=rng, doppler_hz=10.0)
        assert np.mean(gains.fading_power()) == pytest.approx(1.0, rel=0.1)

    def test_validation(self, layout, rng):
        with pytest.raises(ValueError):
            LinkGainMap(layout, num_mobiles=-1, rng=rng)
        with pytest.raises(ValueError):
            LinkGainMap(layout, num_mobiles=1, rng=rng, site_correlation=1.5)
        gains = LinkGainMap(layout, num_mobiles=1, rng=rng)
        with pytest.raises(ValueError):
            gains.advance(np.zeros((1, 2)), moved_m=np.array([-1.0]), dt_s=0.1)


class TestSoftHandoffController:
    def _pilot_matrix(self, strengths):
        return np.asarray(strengths, dtype=float)

    def test_strongest_cell_is_serving(self):
        controller = SoftHandoffController(num_mobiles=1)
        pilots = self._pilot_matrix([[0.05, 0.01, 0.001]])
        controller.update(pilots)
        state = controller.state(0)
        assert state.serving_cell == 0
        assert 0 in state.active_set

    def test_add_threshold(self):
        controller = SoftHandoffController(num_mobiles=1, add_threshold_db=-14.0,
                                           drop_threshold_db=-16.0)
        # Second pilot below the add threshold (-20 dB) must not join.
        pilots = self._pilot_matrix([[10 ** -1.0, 10 ** -2.0]])
        controller.update(pilots)
        assert controller.state(0).active_set == [0]

    def test_soft_handoff_when_pilots_comparable(self):
        controller = SoftHandoffController(num_mobiles=1)
        pilots = self._pilot_matrix([[10 ** -1.0, 10 ** -1.1]])
        controller.update(pilots)
        state = controller.state(0)
        assert state.in_soft_handoff
        assert len(state.active_set) == 2

    def test_drop_hysteresis(self):
        controller = SoftHandoffController(num_mobiles=1, add_threshold_db=-14.0,
                                           drop_threshold_db=-16.0)
        strong = 10 ** -1.0
        # Join at -13 dB...
        controller.update(self._pilot_matrix([[strong, 10 ** -1.3]]))
        assert len(controller.state(0).active_set) == 2
        # ... stay at -15 dB (above drop threshold) ...
        controller.update(self._pilot_matrix([[strong, 10 ** -1.5]]))
        assert len(controller.state(0).active_set) == 2
        # ... leave below -16 dB.
        controller.update(self._pilot_matrix([[strong, 10 ** -1.7]]))
        assert controller.state(0).active_set == [0]

    def test_reduced_active_set_size(self):
        controller = SoftHandoffController(num_mobiles=1, max_active_set_size=3,
                                           reduced_active_set_size=2)
        pilots = self._pilot_matrix([[0.08, 0.07, 0.06, 0.001]])
        controller.update(pilots)
        state = controller.state(0)
        assert len(state.active_set) == 3
        assert len(state.reduced_active_set) == 2
        assert state.reduced_active_set == state.active_set[:2]

    def test_active_set_capped(self):
        controller = SoftHandoffController(num_mobiles=1, max_active_set_size=2)
        pilots = self._pilot_matrix([[0.08, 0.07, 0.06]])
        controller.update(pilots)
        assert len(controller.state(0).active_set) == 2

    def test_always_keeps_strongest_even_in_hole(self):
        controller = SoftHandoffController(num_mobiles=1)
        pilots = self._pilot_matrix([[1e-6, 1e-7]])
        controller.update(pilots)
        assert controller.state(0).active_set == [0]

    def test_matrices_and_fraction(self):
        controller = SoftHandoffController(num_mobiles=2)
        pilots = self._pilot_matrix([[0.08, 0.07], [0.08, 0.001]])
        controller.update(pilots)
        active = controller.active_set_matrix(2)
        reduced = controller.reduced_active_set_matrix(2)
        assert active[0].sum() == 2 and active[1].sum() == 1
        assert reduced.shape == (2, 2)
        assert controller.soft_handoff_fraction() == pytest.approx(0.5)
        assert list(controller.serving_cells()) == [0, 0]

    def test_handoff_event_counter(self):
        controller = SoftHandoffController(num_mobiles=1)
        controller.update(self._pilot_matrix([[0.08, 0.001]]))
        events_after_first = controller.handoff_events
        controller.update(self._pilot_matrix([[0.001, 0.08]]))
        assert controller.handoff_events > events_after_first

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftHandoffController(num_mobiles=1, add_threshold_db=-16.0,
                                  drop_threshold_db=-14.0)
        with pytest.raises(ValueError):
            SoftHandoffController(num_mobiles=1, reduced_active_set_size=5,
                                  max_active_set_size=3)
        controller = SoftHandoffController(num_mobiles=2)
        with pytest.raises(ValueError):
            controller.update(np.ones((3, 4)))


class TestLocalMeanGainCache:
    def test_cache_returns_same_array_until_invalidated(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=4, rng=rng)
        gains.set_positions(np.zeros((4, 2)))
        first = gains.local_mean_gain()
        assert gains.local_mean_gain() is first  # cached, no rebuild
        gains.set_positions(np.full((4, 2), 100.0))
        second = gains.local_mean_gain()
        assert second is not first
        assert not np.array_equal(first, second)

    def test_one_build_per_advance(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=4, rng=rng)
        gains.set_positions(np.zeros((4, 2)))
        gains.local_mean_gain()
        builds = gains.local_mean_builds
        gains.advance(np.zeros((4, 2)), moved_m=np.full(4, 5.0), dt_s=0.1)
        for _ in range(5):
            gains.local_mean_gain()
        assert gains.local_mean_builds == builds + 1

    def test_cached_matrix_is_read_only(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=2, rng=rng)
        gains.set_positions(np.zeros((2, 2)))
        matrix = gains.local_mean_gain()
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0

    def test_cache_matches_fresh_computation(self, layout, rng):
        gains = LinkGainMap(layout, num_mobiles=6, rng=rng, shadowing_std_db=8.0)
        gains.set_positions(rng.uniform(-500, 500, size=(6, 2)))
        expected = gains._path_gain * 10.0 ** (gains.shadowing_db() / 10.0)
        assert np.array_equal(gains.local_mean_gain(), expected)


def _reference_handoff_update(controller, previous_sets, pilots):
    """Transcription of the seed's per-mobile hand-off loop (ground truth)."""
    add_lin = 10.0 ** (controller.add_threshold_db / 10.0)
    drop_lin = 10.0 ** (controller.drop_threshold_db / 10.0)
    new_sets, events = [], 0
    for j in range(pilots.shape[0]):
        row = pilots[j]
        retained = [k for k in previous_sets[j] if row[k] >= drop_lin]
        order = np.argsort(row)[::-1]
        for k in order:
            k = int(k)
            if row[k] < add_lin:
                break
            if k not in retained:
                retained.append(k)
        if not retained:
            retained = [int(order[0])]
        retained.sort(key=lambda cell: -row[cell])
        retained = retained[: controller.max_active_set_size]
        if retained != previous_sets[j]:
            events += 1
        new_sets.append(retained)
    return new_sets, events


class TestVectorisedHandoffParity:
    """The array-kernel update reproduces the per-mobile reference loop."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_trajectories_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        num_mobiles, num_cells = 17, 7
        controller = SoftHandoffController(num_mobiles=num_mobiles)
        reference_sets = [[] for _ in range(num_mobiles)]
        reference_events = 0
        for _ in range(30):
            # Log-uniform pilots around the add/drop thresholds.
            pilots = 10.0 ** rng.uniform(-2.5, -0.5, size=(num_mobiles, num_cells))
            controller.update(pilots)
            reference_sets, events = _reference_handoff_update(
                controller, reference_sets, pilots
            )
            reference_events += events
            for j in range(num_mobiles):
                state = controller.state(j)
                assert state.active_set == reference_sets[j]
                assert state.serving_cell == reference_sets[j][0]
                assert (
                    state.reduced_active_set
                    == reference_sets[j][: controller.reduced_active_set_size]
                )
        assert controller.handoff_events == reference_events

    def test_matrices_match_states(self):
        rng = np.random.default_rng(9)
        controller = SoftHandoffController(num_mobiles=10)
        pilots = 10.0 ** rng.uniform(-2.5, -0.5, size=(10, 7))
        controller.update(pilots)
        active = controller.active_set_matrix(7)
        reduced = controller.reduced_active_set_matrix(7)
        for j in range(10):
            state = controller.state(j)
            assert sorted(np.flatnonzero(active[j])) == sorted(state.active_set)
            assert sorted(np.flatnonzero(reduced[j])) == sorted(
                state.reduced_active_set
            )

    def test_states_sequence_semantics(self):
        controller = SoftHandoffController(num_mobiles=3)
        controller.update(np.asarray([[0.08, 0.07], [0.08, 0.001], [0.001, 0.08]]))
        states = controller.states
        assert len(states) == 3
        assert [s.serving_cell for s in states] == [0, 0, 1]
        assert states[-1].serving_cell == 1
        with pytest.raises(IndexError):
            states[3]
