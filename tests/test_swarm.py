"""Swarm executor: lease protocol, chaos invariants, transport semantics.

The invariant under test everywhere: **for any worker topology, join/leave
schedule or fault pattern, the swarm aggregates bit-identically to the
serial executor** — at-least-once delivery plus first-wins dedupe is safe
because every replication is a pure function of its seed-tree coordinates.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.experiments.campaign import Campaign
from repro.experiments.executors import ResilientExecutor, retry_backoff_delay
from repro.experiments.faults import (
    FaultPlan,
    FaultSpec,
    MessageFaultPlan,
    MessageFaults,
)
from repro.experiments.swarm import FileMailbox, SwarmExecutor, drain_mailbox
from repro.utils.hooks import SimHooks
from repro.utils.recorder import EventRecorder, MemorySink, RecorderHooks


def _toy_runner(params, seed):
    rng = np.random.default_rng(seed)
    draws = rng.random(128)
    return {
        "mean_draw": float(draws.mean()) + float(params["offset"]),
        "max_draw": float(draws.max()),
    }


def toy_campaign(points=3, replications=3, root_seed=123):
    grid = [{"offset": 10.0 * index} for index in range(points)]
    return Campaign("toy", _toy_runner, grid, replications=replications,
                    root_seed=root_seed)


def serial_reference(campaign):
    return [p.replications for p in campaign.run(executor="serial").points]


def swarm_executor(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("lease_timeout_s", 5.0)
    kwargs.setdefault("poll_interval_s", 0.005)
    return SwarmExecutor(**kwargs)


class TestMessageFaultPlan:
    def test_fate_is_a_pure_function_of_identity(self):
        plan = MessageFaultPlan(seed=3, leases=MessageFaults(drop=0.5, delay=0.5))
        first = [plan.fate("lease:w0", f"lease-a{i}", i) for i in range(50)]
        second = [plan.fate("lease:w9", f"lease-a{i}", 99 - i) for i in range(50)]
        assert first == second  # channel suffix and seq don't matter
        assert any(f.dropped for f in first) and not all(f.dropped for f in first)

    def test_unconfigured_channels_are_clean(self):
        plan = MessageFaultPlan(seed=3, leases=MessageFaults(drop=1.0))
        assert not plan.fate("result:w0", "result-a0-0", 0).dropped
        assert plan.fate("lease:w0", "lease-a0", 0).dropped

    def test_stall_window_drops_by_sequence(self):
        plan = MessageFaultPlan(
            seed=0, heartbeats=MessageFaults(stall_after=2, stall_for=3)
        )
        fates = [plan.fate("heartbeat:w0", f"hb-{i}", i) for i in range(8)]
        assert [f.dropped for f in fates] == [
            False, False, True, True, True, False, False, False,
        ]

    def test_mix_validation(self):
        with pytest.raises(ValueError, match="probability"):
            MessageFaults(drop=1.5)
        with pytest.raises(ValueError, match="delay_s"):
            MessageFaults(delay_s=-1.0)
        with pytest.raises(ValueError, match="together"):
            MessageFaults(stall_after=3)
        with pytest.raises(ValueError, match="together"):
            MessageFaults(stall_for=3)


class TestFileMailbox:
    def test_messages_drain_in_send_order(self, tmp_path):
        box = FileMailbox(str(tmp_path), sender="w0", channel="result:w0")
        for index in range(5):
            box.send({"n": index}, message_id=f"m{index}")
        assert [m["n"] for m in drain_mailbox(str(tmp_path))] == [0, 1, 2, 3, 4]
        assert drain_mailbox(str(tmp_path)) == []  # consumed exactly once

    def test_duplicate_fate_delivers_twice(self, tmp_path):
        plan = MessageFaultPlan(seed=1, results=MessageFaults(duplicate=1.0))
        box = FileMailbox(str(tmp_path), "w0", "result:w0", faults=plan)
        box.send({"n": 0}, message_id="m0")
        assert [m["n"] for m in drain_mailbox(str(tmp_path))] == [0, 0]

    def test_drop_fate_never_delivers(self, tmp_path):
        plan = MessageFaultPlan(seed=1, results=MessageFaults(drop=1.0))
        box = FileMailbox(str(tmp_path), "w0", "result:w0", faults=plan)
        box.send({"n": 0}, message_id="m0")
        assert drain_mailbox(str(tmp_path)) == []

    def test_delay_fate_holds_until_ripe(self, tmp_path):
        plan = MessageFaultPlan(
            seed=1, results=MessageFaults(delay=1.0, delay_s=0.2)
        )
        box = FileMailbox(str(tmp_path), "w0", "result:w0", faults=plan)
        box.send({"n": 0}, message_id="m0")
        assert drain_mailbox(str(tmp_path)) == []
        time.sleep(0.25)
        assert [m["n"] for m in drain_mailbox(str(tmp_path))] == [0]

    def test_reorder_fate_swaps_with_next_message(self, tmp_path):
        plan = MessageFaultPlan(seed=1, results=MessageFaults(reorder=1.0))
        box = FileMailbox(str(tmp_path), "w0", "result:w0", faults=plan)
        box.send({"n": 0}, message_id="m0")  # held (reordered)
        assert drain_mailbox(str(tmp_path)) == []
        box.faults = None  # second message delivers normally
        box.send({"n": 1}, message_id="m1")
        assert [m["n"] for m in drain_mailbox(str(tmp_path))] == [1, 0]

    def test_flush_releases_a_held_message(self, tmp_path):
        plan = MessageFaultPlan(seed=1, results=MessageFaults(reorder=1.0))
        box = FileMailbox(str(tmp_path), "w0", "result:w0", faults=plan)
        box.send({"n": 0}, message_id="m0")
        box.flush()
        assert [m["n"] for m in drain_mailbox(str(tmp_path))] == [0]

    def test_corrupt_message_discarded(self, tmp_path):
        box = FileMailbox(str(tmp_path), "w0", "result:w0")
        box.send({"n": 0}, message_id="m0")
        with open(tmp_path / "00000001-w0.msg", "wb") as handle:
            handle.write(b"\x80garbage")
        assert [m["n"] for m in drain_mailbox(str(tmp_path))] == [0]


class TestSwarmParity:
    def test_bit_identical_to_serial(self):
        campaign = toy_campaign()
        reference = serial_reference(campaign)
        result = campaign.run(executor=swarm_executor(workers=3))
        assert [p.replications for p in result.points] == reference
        assert result.executor_name == "swarm"
        assert result.executor_stats["leases_issued"] > 0
        assert result.executor_stats["quarantined"] == 0

    def test_single_worker_swarm(self):
        campaign = toy_campaign(points=2, replications=2)
        result = campaign.run(executor=swarm_executor(workers=1))
        assert [p.replications for p in result.points] == serial_reference(campaign)

    def test_duplicated_messages_dedupe(self):
        # Every lease and every result is delivered twice: at-least-once in
        # its purest form.  First completion wins; aggregates are unchanged.
        campaign = toy_campaign()
        plan = MessageFaultPlan(
            seed=5,
            leases=MessageFaults(duplicate=1.0),
            results=MessageFaults(duplicate=1.0),
        )
        result = campaign.run(executor=swarm_executor(message_faults=plan))
        assert [p.replications for p in result.points] == serial_reference(campaign)
        assert result.executor_stats["duplicates_discarded"] >= 1
        assert result.executor_stats["quarantined"] == 0

    def test_dropped_leases_recovered_by_expiry(self):
        # Half of all lease messages vanish; expiry re-issues under fresh
        # attempt ids (which re-roll their fate), so the campaign completes
        # without burning any retry budget.
        campaign = toy_campaign(points=2, replications=3)
        plan = MessageFaultPlan(seed=11, leases=MessageFaults(drop=0.5))
        result = campaign.run(
            executor=swarm_executor(
                lease_timeout_s=0.4, message_faults=plan, batch_size=1
            )
        )
        assert [p.replications for p in result.points] == serial_reference(campaign)
        assert result.executor_stats["leases_expired"] >= 1
        assert result.executor_stats["quarantined"] == 0

    def test_sigkilled_worker_respawned_and_bit_identical(self, tmp_path):
        campaign = toy_campaign()
        plan = FaultPlan(
            [FaultSpec(point_index=0, replication=0, kind="sigkill")],
            token_dir=str(tmp_path / "tokens"),
        )
        result = campaign.run(
            executor=swarm_executor(batch_size=1), fault_plan=plan
        )
        assert [p.replications for p in result.points] == serial_reference(campaign)
        stats = result.executor_stats
        assert stats["worker_crashes"] >= 1
        assert stats["leases_expired"] >= 1  # the crash reclaimed its lease
        assert stats["workers_respawned"] >= 1
        assert stats["quarantined"] == 0

    def test_hung_straggler_is_stolen(self, tmp_path):
        # One replication sleeps 10 s while its worker keeps heartbeating —
        # lease expiry never fires; work stealing is what rescues the tail.
        campaign = toy_campaign(points=2, replications=3)
        plan = FaultPlan(
            [FaultSpec(point_index=1, replication=2, kind="delay", delay_s=10.0)],
            token_dir=str(tmp_path / "tokens"),
        )
        started = time.monotonic()
        result = campaign.run(
            executor=swarm_executor(
                workers=2,
                lease_timeout_s=5.0,
                steal_factor=2.0,
                steal_min_completions=3,
                batch_size=1,
            ),
            fault_plan=plan,
        )
        elapsed = time.monotonic() - started
        assert [p.replications for p in result.points] == serial_reference(campaign)
        assert result.executor_stats["work_stolen"] >= 1
        assert elapsed < 8.0, "the stolen copy should finish long before 10 s"

    def test_heartbeat_stall_expires_lease_and_late_result_dedupes(self):
        # The worker stays alive but its heartbeats stop mid-run: the
        # coordinator must declare the lease dead, re-issue, and absorb
        # whatever the stalled worker eventually reports.
        campaign = toy_campaign(points=2, replications=2)
        plan = MessageFaultPlan(
            seed=2, heartbeats=MessageFaults(stall_after=1, stall_for=1000)
        )
        result = campaign.run(
            executor=swarm_executor(
                workers=2,
                lease_timeout_s=0.5,
                heartbeat_interval_s=0.1,
                message_faults=plan,
                batch_size=1,
            )
        )
        assert [p.replications for p in result.points] == serial_reference(campaign)
        assert result.executor_stats["quarantined"] == 0

    def test_runner_exception_retries_then_quarantines(self, tmp_path):
        campaign = toy_campaign(points=1, replications=2)
        plan = FaultPlan(
            [
                FaultSpec(
                    point_index=0, replication=1, kind="exception", times=-1
                )
            ],
            token_dir=str(tmp_path / "tokens"),
        )
        result = campaign.run(
            executor=swarm_executor(max_retries=1, batch_size=1), fault_plan=plan
        )
        stats = result.executor_stats
        assert stats["retries"] == 1
        assert stats["quarantined"] == 1
        assert result.points[0].failures.keys() == {1}
        assert 0 in result.points[0].replications  # the healthy sibling ran


class TestExternalWorker:
    def test_cli_worker_joins_and_completes_the_campaign(self, tmp_path):
        # workers=0: the coordinator spawns nothing; an externally launched
        # `python -m repro.experiments.worker` process does all the work
        # (the multi-machine topology, compressed onto one host).
        swarm_dir = str(tmp_path / "swarm")
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.worker",
                "--swarm-dir",
                swarm_dir,
                "--worker-id",
                "remote0",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            campaign = toy_campaign(points=2, replications=2)
            result = campaign.run(
                executor=swarm_executor(
                    workers=0, swarm_dir=swarm_dir, lease_timeout_s=10.0
                )
            )
            assert [p.replications for p in result.points] == serial_reference(
                campaign
            )
            assert result.executor_stats["leases_issued"] >= 1
            # The stop file tells the external worker to exit cleanly.
            proc.wait(timeout=15)
            assert proc.returncode == 0, proc.stderr.read()
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()


class TestLifecycleTelemetry:
    def test_worker_and_lease_events_recorded(self, tmp_path):
        sink = MemorySink()
        campaign = toy_campaign(points=2, replications=2)
        plan = FaultPlan(
            [FaultSpec(point_index=0, replication=0, kind="sigkill")],
            token_dir=str(tmp_path / "tokens"),
        )
        campaign.run(
            executor=swarm_executor(batch_size=1),
            fault_plan=plan,
            hooks=RecorderHooks(EventRecorder(sink)),
        )
        kinds = sink.by_kind()
        assert kinds.get("worker_joined", 0) >= 2
        assert kinds.get("lease_granted", 0) >= 4
        assert kinds.get("worker_left", 0) >= 1  # the sigkilled worker
        assert kinds.get("lease_expired", 0) >= 1
        assert kinds.get("task_completed", 0) == 4

    def test_base_hooks_accept_swarm_lifecycle_calls(self):
        hooks = SimHooks()
        hooks.worker_joined("w0")
        hooks.worker_left("w0", "bye")
        hooks.lease_granted("w0", "a0", 3)
        hooks.lease_expired("w0", "a0", "timeout")
        hooks.work_stolen("0/1", "w0", "w1")


class TestSeededBackoff:
    def test_campaign_root_seed_fills_in_backoff_seed(self):
        campaign = toy_campaign(root_seed=77)
        executor = ResilientExecutor(workers=1)
        assert executor.backoff_seed is None
        campaign._resolve_executor(executor, workers=1)
        assert executor.backoff_seed == 77

    def test_explicit_backoff_seed_is_kept(self):
        campaign = toy_campaign(root_seed=77)
        executor = SwarmExecutor(workers=1, backoff_seed=5)
        campaign._resolve_executor(executor, workers=1)
        assert executor.backoff_seed == 5

    def test_jitter_depends_on_seed_task_and_retry(self):
        kwargs = dict(base_s=0.25, max_s=30.0, jitter=0.25)
        base = retry_backoff_delay(3, 1, seed=1, **kwargs)
        assert base != retry_backoff_delay(3, 1, seed=2, **kwargs)
        assert base != retry_backoff_delay(4, 1, seed=1, **kwargs)
        assert base == retry_backoff_delay(3, 1, seed=1, **kwargs)
        with pytest.raises(ValueError, match="1-based"):
            retry_backoff_delay(0, 0, seed=0, **kwargs)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"workers": 0},  # needs swarm_dir
            {"lease_timeout_s": 0.0},
            {"heartbeat_interval_s": 0.0},
            {"batch_size": 0},
            {"max_retries": -1},
            {"max_reissues": 0},
            {"steal_factor": 1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SwarmExecutor(**kwargs)

    def test_empty_task_list_is_a_noop(self):
        executor = SwarmExecutor(workers=1)
        assert list(executor.run(lambda payload: {}, [])) == []
