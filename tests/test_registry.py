"""Tests of the component registry and the declarative scenario-spec layer.

Covers the registry core (duplicate / unknown-name errors with suggestions),
component spec strings, scenario-spec round-trips and fingerprints, the
placement zoo, campaign policy-sweep determinism across worker counts, and
the golden-compatibility guarantee (a registry-built default scenario
reproduces the checked-in golden snapshots bit-for-bit).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.experiments.campaign import Campaign, grid_points
from repro.experiments.common import paper_scenario, scheduler_from_spec
from repro.experiments.coverage import coverage_replication
from repro.geometry.hexgrid import HexagonalCellLayout
from repro.registry import (
    BuiltScenario,
    ComponentRegistry,
    DuplicateComponentError,
    SpecError,
    UnknownComponentError,
    build_scenario,
    component_names,
    create,
    describe_components,
    format_component_spec,
    load_scenario_spec,
    parse_component_spec,
    spec_fingerprint,
    spec_from_scenario,
    validate_spec,
)
from repro.simulation import DynamicSystemSimulator
from repro.simulation.placement import (
    HotspotPlacement,
    UniformPlacement,
    placement_from_config,
)
from repro.simulation.scenario import PlacementConfig, ScenarioConfig

from test_simulation_golden import (
    GOLDEN_PATH,
    SUMMARY_FIELDS,
    _jsonable,
    golden_scenario,
)


class TestRegistryCore:
    def test_duplicate_registration_rejected(self):
        local = ComponentRegistry()
        local.add("scheduler", "x", lambda: None)
        with pytest.raises(DuplicateComponentError, match="already registered"):
            local.add("scheduler", "x", lambda: None)

    def test_decorator_registers_and_returns_factory(self):
        local = ComponentRegistry()

        @local.register("traffic", "toy", summary="a toy mix")
        class Toy:
            pass

        assert local.names("traffic") == ["toy"]
        assert isinstance(local.create("traffic", "toy"), Toy)
        assert local.describe()["traffic"]["toy"] == "a toy mix"

    def test_unknown_name_error_suggests_alternatives(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            create("scheduler", "proportional-fairr")
        message = str(excinfo.value)
        assert "did you mean" in message
        assert "proportional-fair" in message
        assert "jaba-sd" in message  # full list of alternatives

    def test_unknown_kind_error(self):
        with pytest.raises(UnknownComponentError, match="unknown component kind"):
            create("schedulerz", "fcfs")

    def test_unknown_kwarg_rejected_with_accepted_list(self):
        with pytest.raises(SpecError, match="accepted"):
            create("scheduler", "proportional-fair", time_constant=3)

    def test_defaults_are_applied_and_overridable(self):
        default = create("scheduler", "jaba-sd")
        assert "J1" in default.name
        override = create("scheduler", "jaba-sd", objective="J2")
        assert "J2" in override.name

    def test_zoo_is_populated(self):
        names = component_names("scheduler")
        assert {"jaba-sd", "fcfs", "equal-share", "proportional-fair",
                "max-min"} <= set(names)
        assert "web-video" in component_names("traffic")
        assert "hotspot" in component_names("placement")
        described = describe_components()
        for kind in ("scheduler", "traffic", "mobility", "channel", "placement"):
            assert described[kind], f"no registered {kind} components"

    def test_unknown_component_error_is_a_key_error(self):
        # Callers that guarded the old literal dict with KeyError keep working.
        with pytest.raises(KeyError):
            create("scheduler", "nope")


class TestComponentSpecStrings:
    def test_parse_plain_name(self):
        assert parse_component_spec("fcfs") == ("fcfs", {})

    def test_parse_typed_kwargs(self):
        name, kwargs = parse_component_spec(
            "jaba-sd:objective=J1,max_nodes=200,warm_start=True"
        )
        assert name == "jaba-sd"
        assert kwargs == {"objective": "J1", "max_nodes": 200, "warm_start": True}

    def test_round_trip_through_format(self):
        text = format_component_spec("proportional-fair", {"time_constant_frames": 8})
        assert parse_component_spec(text) == (
            "proportional-fair", {"time_constant_frames": 8}
        )

    @pytest.mark.parametrize("bad", ["", "name:key", "name:=3", "name:,"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(SpecError):
            parse_component_spec(bad)

    def test_scheduler_from_spec_accepts_all_spellings(self):
        for spec in ("proportional-fair",
                     "jaba-sd:objective=J2",
                     {"name": "max-min"},
                     "JABA-SD(J1)"):  # legacy label
            assert hasattr(scheduler_from_spec(spec), "assign")

    def test_scheduler_from_spec_unknown_name_lists_legacy_labels(self):
        with pytest.raises(UnknownComponentError, match="legacy labels"):
            scheduler_from_spec("JABA-SD(J9)")


class TestScenarioSpecs:
    def test_empty_spec_builds_paper_default(self):
        built = build_scenario({})
        assert isinstance(built, BuiltScenario)
        assert built.scenario == ScenarioConfig()
        assert "JABA-SD(J1" in built.scheduler.name
        assert built.scheduler_section == {"name": "jaba-sd", "objective": "J1"}

    def test_round_trip_is_lossless(self):
        for config in (paper_scenario(),
                       golden_scenario(),
                       ScenarioConfig(placement=PlacementConfig(
                           kind="hotspot", hotspot_fraction=0.7))):
            rebuilt = build_scenario(spec_from_scenario(config)).scenario
            assert rebuilt == config

    def test_named_components_compose(self):
        built = build_scenario({
            "scheduler": {"name": "proportional-fair", "time_constant_frames": 8},
            "traffic": {"name": "web-video"},
            "mobility": {"name": "pedestrian"},
            "placement": {"name": "hotspot", "fraction": 0.6},
            "channel": {"name": "dense-urban"},
            "scenario": {"num_data_users_per_cell": 12, "seed": 7},
        })
        assert built.scenario.traffic.packet_call_max_bits == 6_000_000.0
        assert built.scenario.placement.kind == "hotspot"
        assert built.scenario.placement.hotspot_fraction == 0.6
        assert built.scenario.system.radio.cell_radius_m == 500.0
        assert built.scenario.num_data_users_per_cell == 12
        assert "ProportionalFair" in built.scheduler.name

    def test_unknown_section_and_field_errors(self):
        with pytest.raises(SpecError, match="unknown scenario-spec section"):
            build_scenario({"schedular": {"name": "fcfs"}})
        with pytest.raises(SpecError, match="unknown scenario field"):
            build_scenario({"scenario": {"num_data_users": 3}})
        with pytest.raises(SpecError, match="dedicated"):
            build_scenario({"scenario": {"traffic": {}}})

    def test_version_gate(self):
        with pytest.raises(SpecError, match="version"):
            validate_spec({"version": 99})

    def test_fingerprint_invariant_to_spelling(self):
        spec = spec_from_scenario(paper_scenario())
        reordered = dict(reversed(list(spec.items())))
        assert spec_fingerprint(spec) == spec_fingerprint(reordered)
        # tuple-vs-list spelling (TOML/JSON provenance) does not matter
        mobility = dict(spec["mobility"])
        mobility["speed_range_m_s"] = tuple(mobility["speed_range_m_s"])
        assert spec_fingerprint({**spec, "mobility": mobility}) == spec_fingerprint(spec)

    def test_fingerprint_changes_with_values(self):
        spec = spec_from_scenario(paper_scenario())
        changed = {**spec, "scenario": {**spec["scenario"], "seed": 999}}
        assert spec_fingerprint(changed) != spec_fingerprint(spec)

    def test_load_spec_toml_and_json_agree(self, tmp_path):
        toml_file = tmp_path / "s.toml"
        toml_file.write_text(
            'version = 1\n[scheduler]\nname = "max-min"\n'
            "[scenario]\nnum_data_users_per_cell = 5\n"
        )
        json_file = tmp_path / "s.json"
        json_file.write_text(json.dumps({
            "version": 1,
            "scheduler": {"name": "max-min"},
            "scenario": {"num_data_users_per_cell": 5},
        }))
        toml_built = build_scenario(load_scenario_spec(str(toml_file)))
        json_built = build_scenario(load_scenario_spec(str(json_file)))
        assert toml_built.fingerprint == json_built.fingerprint
        assert toml_built.scenario == json_built.scenario


class TestPlacement:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlacementConfig(kind="gaussian")
        with pytest.raises(ValueError):
            PlacementConfig(kind="hotspot", hotspot_fraction=1.5)
        with pytest.raises(ValueError):
            PlacementConfig(kind="hotspot", hotspot_radius_fraction=0.0)
        with pytest.raises(ValueError):
            PlacementConfig(kind="hotspot", hotspot_cell=-1)

    def test_uniform_matches_layout_stream(self):
        # Bit-identical RNG consumption is what keeps the goldens valid.
        layout = HexagonalCellLayout(num_rings=1)
        a = UniformPlacement().position(layout, 2, np.random.default_rng(5))
        b = layout.random_position_in_cell(2, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_hotspot_concentrates_users(self):
        layout = HexagonalCellLayout(num_rings=1)
        model = HotspotPlacement(fraction=1.0, radius_fraction=0.2, cell=0)
        rng = np.random.default_rng(11)
        centre = layout.position_of(0)
        for _ in range(50):
            position = model.position(layout, 0, rng)
            assert np.linalg.norm(position - centre) <= 0.2 * layout.cell_radius_m
        # Users of other cells stay uniform (not forced into the hotspot).
        other = model.position(layout, 3, rng)
        assert np.linalg.norm(other - layout.position_of(3)) <= layout.cell_radius_m

    def test_hotspot_cell_must_exist(self):
        layout = HexagonalCellLayout(num_rings=0)  # single cell
        model = HotspotPlacement(cell=3)
        with pytest.raises(ValueError, match="does not exist"):
            model.position(layout, 0, np.random.default_rng(0))

    def test_from_config_round_trip(self):
        config = PlacementConfig(kind="hotspot", hotspot_fraction=0.25,
                                 hotspot_radius_fraction=0.4, hotspot_cell=2)
        assert placement_from_config(config).to_config() == config
        assert isinstance(
            placement_from_config(PlacementConfig()), UniformPlacement
        )


def _policy_sweep_campaign() -> Campaign:
    """A tiny coverage campaign swept over a scheduler axis via grid_points."""
    axes = {
        "load": [3],
        "scheduler": ["jaba-sd:objective=J1", "proportional-fair", "max-min"],
    }
    points, groups = grid_points(axes)
    for point in points:
        point.update(
            scheduler_spec=point["scheduler"],
            radius_m=None,
            config=SystemConfig(),
            num_voice_users_per_cell=2,
            burst_size_bits=100_000.0,
            link="forward",
            min_rate_bps=38_400.0,
            num_drops=2,
        )
    return Campaign(
        name="policy-sweep",
        runner=coverage_replication,
        points=points,
        replications=2,
        root_seed=11,
        seed_groups=groups,
    )


class TestPolicySweepCampaign:
    def test_grid_points_pairs_schedulers(self):
        points, groups = grid_points(
            {"load": [6, 12], "scheduler": ["a", "b", "c"]}
        )
        assert len(points) == 6
        # All schedulers at one load share a seed group; loads differ.
        assert groups == [0, 0, 0, 1, 1, 1]

    def test_grid_points_rejects_unknown_paired_axis(self):
        with pytest.raises(ValueError, match="not grid axes"):
            grid_points({"load": [1]}, paired=("scheduler",))

    def test_workers_do_not_change_policy_sweep(self):
        results = {}
        for workers in (1, 4):
            outcome = _policy_sweep_campaign().run(workers=workers)
            results[workers] = [
                (point.index, sorted(point.replications.items()))
                for point in outcome.points
            ]
        assert results[1] == results[4]  # bit-identical, not approximately

    def test_schedulers_share_drops_within_a_load(self):
        # CRN pairing: every policy replays the same drops, so differences
        # between rows are policy effects, not seed noise.
        outcome = _policy_sweep_campaign().run()
        coverages = [point.summary()["coverage"].mean for point in outcome.points]
        assert len(coverages) == 3
        assert all(0.0 <= value <= 1.0 for value in coverages)


class TestGoldenCompatibility:
    def test_registry_built_scenario_reproduces_golden(self):
        built = build_scenario(spec_from_scenario(golden_scenario()))
        assert built.scenario == golden_scenario()
        simulator = DynamicSystemSimulator(built.scenario, built.scheduler)
        events = []
        original_decide = simulator.controller.decide

        def recording_decide(snapshot, requests, link):
            decision, grants = original_decide(snapshot, requests, link)
            events.append({
                "time_s": float(snapshot.time_s),
                "link": link.value,
                "queue": [int(r.mobile_index) for r in requests],
                "assignment": [int(m) for m in decision.assignment],
                "objective": _jsonable(float(decision.objective_value)),
            })
            return decision, grants

        simulator.controller.decide = recording_decide
        result = simulator.run()
        summary = {
            field: _jsonable(getattr(result, field)) for field in SUMMARY_FIELDS
        }
        golden = json.loads(GOLDEN_PATH.read_text())
        assert summary == golden["summary"]
        assert events == golden["events"]
