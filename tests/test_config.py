"""Tests for the system configuration dataclasses."""

from dataclasses import replace

import pytest

from repro.config import MacConfig, PhyConfig, RadioConfig, SystemConfig


class TestPhyConfig:
    def test_defaults_valid(self):
        phy = PhyConfig()
        assert phy.num_modes == 6
        assert phy.sch_reference_csi == pytest.approx(10 ** (phy.sch_reference_csi_db / 10))

    def test_validation(self):
        with pytest.raises(ValueError):
            PhyConfig(num_modes=0)
        with pytest.raises(ValueError):
            PhyConfig(target_ber=1.5)
        with pytest.raises(ValueError):
            PhyConfig(gamma_s_forward=0.0)


class TestRadioConfig:
    def test_derived_quantities(self):
        radio = RadioConfig()
        assert radio.fch_processing_gain == pytest.approx(
            radio.bandwidth_hz / radio.fch_bit_rate_bps
        )
        assert radio.fch_ebio_target == pytest.approx(10 ** (radio.fch_ebio_target_db / 10))
        assert radio.bs_noise_power_w > 0.0
        assert radio.mobile_noise_power_w > radio.bs_noise_power_w  # worse noise figure
        assert radio.fch_pilot_power_ratio == pytest.approx(1.0 / radio.reverse_pilot_overhead)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioConfig(cell_radius_m=0.0)
        with pytest.raises(ValueError):
            RadioConfig(orthogonality_factor=1.5)
        with pytest.raises(ValueError):
            RadioConfig(control_channel_rate_fraction=0.0)
        with pytest.raises(ValueError):
            RadioConfig(fch_max_power_fraction=1.5)


class TestMacConfig:
    def test_defaults_valid(self):
        mac = MacConfig()
        assert mac.max_spreading_gain_ratio == 16
        assert mac.t2_s < mac.t3_s

    def test_validation(self):
        with pytest.raises(ValueError):
            MacConfig(frame_duration_s=0.0)
        with pytest.raises(ValueError):
            MacConfig(t2_s=5.0, t3_s=1.0)
        with pytest.raises(ValueError):
            MacConfig(min_burst_duration_s=1.0, max_burst_duration_s=0.5)
        with pytest.raises(ValueError):
            MacConfig(forward_admission_margin=1.5)


class TestSystemConfig:
    def test_with_overrides(self):
        config = SystemConfig()
        modified = config.with_overrides(radio=replace(config.radio, num_rings=2))
        assert modified.radio.num_rings == 2
        assert config.radio.num_rings == 1  # original untouched
        assert modified.phy == config.phy

    def test_small_test_system(self):
        config = SystemConfig.small_test_system()
        assert config.radio.num_rings == 1
        assert config.radio.power_control_iterations <= 15
