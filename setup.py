"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that legacy editable installs (``pip install -e . --no-use-pep517``)
keep working on systems without the ``wheel`` package — such as the offline
reproduction environment this repository targets.
"""

from setuptools import setup

setup()
