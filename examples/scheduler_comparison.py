#!/usr/bin/env python
"""Compare every scheduling policy on the same loaded scenario.

Runs the dynamic simulation once per scheduler — JABA-SD under J1 and J2, the
greedy JABA-SD variant, the temporal-dimension extension, and the two
baselines the paper names (cdma2000 FCFS, equal sharing) — at a load beyond
the knee of the delay curve, and prints a side-by-side comparison.

Run it with ``python examples/scheduler_comparison.py [--load N]``.
"""

from __future__ import annotations

import argparse

from repro.experiments.common import paper_scenario
from repro.mac import (
    EqualShareScheduler,
    FcfsScheduler,
    JabaSdScheduler,
    RoundRobinScheduler,
    TemporalExtensionScheduler,
)
from repro.simulation import DynamicSystemSimulator
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=int, default=18,
                        help="data users per cell (default 18)")
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    scenario = paper_scenario(
        num_data_users_per_cell=args.load, duration_s=args.duration, seed=args.seed
    )
    schedulers = [
        JabaSdScheduler("J1"),
        JabaSdScheduler("J2"),
        JabaSdScheduler("J1", solver="greedy"),
        TemporalExtensionScheduler(),
        FcfsScheduler(),
        EqualShareScheduler(),
        RoundRobinScheduler(),
    ]

    rows = []
    for scheduler in schedulers:
        print(f"running {scheduler.name} ...")
        result = DynamicSystemSimulator(scenario, scheduler).run()
        rows.append([
            scheduler.name,
            result.mean_packet_delay_s,
            result.p90_packet_delay_s,
            result.carried_throughput_bps / 1e3,
            result.mean_granted_m,
            result.forward_utilisation,
            result.fch_outage_fraction,
        ])

    print()
    print(format_table(
        ["scheduler", "mean delay (s)", "p90 delay (s)", "carried (kbps)",
         "mean m", "fwd util", "FCH outage"],
        rows,
        title=f"Scheduler comparison at {args.load} data users per cell",
    ))


if __name__ == "__main__":
    main()
