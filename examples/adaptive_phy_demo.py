#!/usr/bin/env python
"""Adaptive physical layer (VTAOC) demonstration.

Reproduces, in miniature, the motivation of Section 2 of the paper:

* shows the constant-BER adaptation thresholds of the 6-mode VTAOC scheme,
* simulates a mobile crossing a cell while its channel fades (path loss +
  correlated shadowing + Rayleigh fading) and shows how the selected mode and
  the offered throughput track the channel, and
* compares the time-averaged throughput against the best fixed-rate mode.

Run it with ``python examples/adaptive_phy_demo.py``.
"""

from __future__ import annotations

import numpy as np

from repro.channel import CompositeChannel
from repro.phy import FixedRatePhy, ModeTable, VtaocCodec, instantaneous_csi
from repro.utils.tables import format_table
from repro.utils.units import db_to_linear, linear_to_db


def main() -> None:
    codec = VtaocCodec(target_ber=1e-3, coding_gain_db=3.0)

    print("Constant-BER adaptation thresholds (mode q is used above zeta_q):")
    rows = [
        [mode.index, mode.bits_per_symbol, float(linear_to_db(threshold))]
        for mode, threshold in zip(codec.mode_table, codec.thresholds)
    ]
    print(format_table(["mode", "bits/symbol", "threshold (dB)"], rows))
    print()

    # --- a mobile driving away from the base station under fading ---------------
    rng = np.random.default_rng(3)
    channel = CompositeChannel.standard(rng, doppler_hz=20.0, shadowing_std_db=8.0)
    frame_s = 0.02
    speed_m_s = 13.9  # 50 km/h
    distance = 400.0
    # Transmit power chosen so the link has ~20 dB local-mean CSI at 400 m.
    reference_gain = channel.path_loss.gain(400.0)
    tx_scale = db_to_linear(20.0) / reference_gain

    log_rows = []
    throughputs = []
    mean_csis = []
    for step in range(500):
        distance += speed_m_s * frame_s
        sample = channel.advance(
            moved_m=speed_m_s * frame_s, dt_s=frame_s, new_distance_m=distance
        )
        mean_csi = tx_scale * sample.local_mean_gain
        csi = instantaneous_csi(sample.fading_gain, mean_csi)
        mode = codec.select_mode(csi)
        throughput = codec.instantaneous_throughput(csi)
        throughputs.append(throughput)
        mean_csis.append(mean_csi)
        if step % 100 == 0:
            log_rows.append([
                round(step * frame_s, 2),
                round(distance),
                round(float(linear_to_db(max(mean_csi, 1e-12))), 1),
                mode,
                throughput,
            ])

    print("Snapshot of the adaptive operation while driving away from the site:")
    print(format_table(
        ["time (s)", "distance (m)", "mean CSI (dB)", "selected mode", "bits/symbol"],
        log_rows,
    ))
    print()

    adaptive_avg = float(np.mean(throughputs))
    overall_mean_csi = float(np.mean(mean_csis))
    fixed = FixedRatePhy.design_for_mean_csi(
        overall_mean_csi, ModeTable.default(), target_ber=1e-3, coding_gain_db=3.0
    )
    fixed_avg = float(fixed.average_throughput(overall_mean_csi))
    print(f"Time-averaged adaptive throughput : {adaptive_avg:.3f} bits/symbol")
    print(f"Best fixed-rate mode (mode {fixed.mode.index}) goodput: {fixed_avg:.3f} bits/symbol")
    print(f"Adaptive gain                      : x{adaptive_avg / max(fixed_avg, 1e-9):.2f}")


if __name__ == "__main__":
    main()
