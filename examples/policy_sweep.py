#!/usr/bin/env python
"""Sweep scheduling policies like loads: JABA-SD vs proportional fair.

The registry makes a policy comparison declarative: schedulers are named
component specs (``"jaba-sd:objective=J1"``, ``"proportional-fair"``) and the
campaign engine pairs them on **shared seed groups** — every policy replays
exactly the same arrival / fading / mobility streams at every load, so row
differences are pure policy effects (common random numbers), not seed noise.

Run it with ``python examples/policy_sweep.py [--loads 8 16] [--seeds 2]``.
"""

from __future__ import annotations

import argparse

from repro.experiments.common import paper_scenario
from repro.experiments.delay_vs_load import run_delay_vs_load
from repro.registry import describe_components

#: Label -> component spec.  Any registered scheduler name works here, with
#: optional kwargs after a colon; add an entry to sweep another policy.
POLICIES = {
    "JABA-SD(J1)": "jaba-sd:objective=J1",
    "proportional-fair": "proportional-fair",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loads", type=int, nargs="+", default=[8, 16],
                        help="data users per cell (default 8 16)")
    parser.add_argument("--seeds", type=int, default=2,
                        help="seed replications per grid point (default 2)")
    parser.add_argument("--duration", type=float, default=6.0)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    print("registered schedulers:")
    for name, summary in describe_components()["scheduler"].items():
        print(f"  {name:20s} {summary}")
    print()

    scenario = paper_scenario(duration_s=args.duration, warmup_s=1.0)
    result = run_delay_vs_load(
        loads=args.loads,
        scenario=scenario,
        scheduler_factories=POLICIES,
        num_seeds=args.seeds,
        workers=args.workers,
    )
    print(result.to_table())
    print()
    print("Every policy saw identical replication streams at each load "
          "(shared seed groups), so the delay gaps above are policy effects.")


if __name__ == "__main__":
    main()
