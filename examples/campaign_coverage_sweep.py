"""Sharded Monte-Carlo coverage sweep with the campaign engine.

Runs the paper's F4 coverage experiment as a :class:`repro.experiments.campaign.Campaign`:
a (load × scheduler) grid, several seed replications per point, replications
sharded over worker processes, results checkpointed to JSON so an
interrupted sweep resumes where it stopped.

Run from the repository root::

    PYTHONPATH=src python examples/campaign_coverage_sweep.py

Things to notice:

* the aggregates (and the printed table) are **bit-identical** for any
  ``WORKERS`` value — every replication's randomness comes from the seed-tree
  leaf addressed by its (seed-group, replication) coordinates, never from
  execution order;
* re-running the script reuses the checkpoint: the second pass prints
  "reused N replications" and finishes immediately;
* the ``coverage_ci`` column is the 95% confidence-interval half-width over
  the seed replications — the statistical context the bare means lacked.
"""

import os
import tempfile

from repro.experiments.coverage import build_coverage_campaign, reduce_coverage

WORKERS = 2
CHECKPOINT = os.path.join(tempfile.gettempdir(), "campaign_coverage_sweep.json")


def main() -> None:
    campaign = build_coverage_campaign(
        loads=[4, 8, 16],
        num_drops=10,
        num_replications=3,
        seed=2026,
    )
    print(
        f"campaign {campaign.name!r}: {len(campaign.points)} points x "
        f"{campaign.replications} replications, root seed {campaign.root_seed}"
    )
    outcome = campaign.run(
        workers=WORKERS,
        checkpoint_path=CHECKPOINT,
        progress=lambda done, total: print(f"\r{done}/{total} replications", end=""),
    )
    print()
    if outcome.reused_replications:
        print(f"reused {outcome.reused_replications} replications from {CHECKPOINT}")
    print(reduce_coverage(outcome, campaign.metadata).to_table())
    print(f"\n(checkpoint kept at {CHECKPOINT}; delete it to recompute from scratch)")


if __name__ == "__main__":
    main()
