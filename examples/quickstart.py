#!/usr/bin/env python
"""Quickstart: one burst admission decision, end to end.

This example walks through the full pipeline of the reproduction on a single
network snapshot:

1. build a 7-cell wideband CDMA network with voice and data users,
2. run power control / hand-off and take the measurement snapshot,
3. create a handful of pending burst requests,
4. run the JABA-SD scheduler and the two baselines on the *same* snapshot,
5. print who got which spreading-gain ratio and the resulting SCH rates.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro.cdma import CdmaNetwork, MobileStation, UserClass
from repro.config import SystemConfig
from repro.geometry import HexagonalCellLayout, RandomDirectionMobility
from repro.mac import (
    BurstAdmissionController,
    BurstRequest,
    EqualShareScheduler,
    FcfsScheduler,
    JabaSdScheduler,
    LinkDirection,
)
from repro.utils.tables import format_table


def build_network(config: SystemConfig, seed: int = 42) -> CdmaNetwork:
    """A 7-cell network with 14 data users and 14 voice users."""
    rng = np.random.default_rng(seed)
    layout = HexagonalCellLayout(
        num_rings=config.radio.num_rings, cell_radius_m=config.radio.cell_radius_m
    )
    bounds = layout.bounding_box()
    mobiles = []
    for index in range(28):
        position = layout.random_position(rng)
        mobiles.append(
            MobileStation(
                index=index,
                user_class=UserClass.DATA if index < 14 else UserClass.VOICE,
                mobility=RandomDirectionMobility(position, bounds, rng=rng),
                fch_pilot_power_ratio=config.radio.fch_pilot_power_ratio,
            )
        )
    return CdmaNetwork(config, mobiles, rng, layout)


def main() -> None:
    config = SystemConfig()
    network = build_network(config)

    # Let the network settle for one second of mobility / power control.
    for _ in range(50):
        network.advance(0.02)
    snapshot = network.snapshot()

    # Eight of the data users request a forward-link burst of 300 kbit each.
    requests = [
        BurstRequest(
            mobile_index=j,
            link=LinkDirection.FORWARD,
            size_bits=300_000.0,
            arrival_time_s=snapshot.time_s,
        )
        for j in range(8)
    ]

    rows = []
    for scheduler in (JabaSdScheduler("J1"), JabaSdScheduler("J2"),
                      FcfsScheduler(), EqualShareScheduler()):
        controller = BurstAdmissionController(config, scheduler)
        decision, grants = controller.decide(snapshot, requests, LinkDirection.FORWARD)
        total_rate = sum(grant.rate_bps for grant in grants)
        rows.append([
            scheduler.name,
            " ".join(str(int(m)) for m in decision.assignment),
            len(grants),
            total_rate / 1e3,
            decision.objective_value,
        ])

    print(format_table(
        ["scheduler", "granted m per request", "grants", "total SCH rate (kbps)", "objective"],
        rows,
        title="One burst-admission decision on the same snapshot",
    ))
    print()
    print("Cell loading (forward traffic power, W):",
          np.round(snapshot.forward_load.current_power_w, 2))
    print("Forward power headroom per cell (W):   ",
          np.round(snapshot.forward_load.headroom_w(), 2))


if __name__ == "__main__":
    main()
