#!/usr/bin/env python
"""Head-to-head scheduler comparison with variance reduction.

Demonstrates the three variance-reduction tools of the campaign engine on
one question — "how much lower is JABA-SD(J1)'s mean packet delay than
FCFS's?":

1. **Paired CRN deltas** — both schedulers share a seed group, so every
   replication pair replays the same traffic; the paired-t interval on the
   per-replication differences is typically 2-3x tighter than the Welch
   interval on the very same samples.
2. **Sequential stopping** — instead of guessing a replication count, pass
   ``--ci-target`` and the campaign replicates in waves until the paired
   metric's 95% half-width is small enough (bit-identical for any worker
   count).
3. **Antithetic streams** — a toy campaign (runners must draw through
   ``rng_for_leaf``; the built-in simulators collapse the leaf to an
   integer seed and so cannot mirror) showing the pair-averaged estimator
   beating plain replications on a monotone response.

Run it with ``python examples/paired_scheduler_comparison.py [--ci-target S]``.
"""

from __future__ import annotations

import argparse

from repro.experiments import Campaign, rng_for_leaf
from repro.experiments.common import paper_scenario
from repro.experiments.compare import run_scheduler_comparison


def _antithetic_demo(replications: int = 16) -> None:
    """Toy campaign: mean of exp(u) — monotone in u, so mirroring helps."""

    def runner(params, seed):
        import math

        rng = rng_for_leaf(seed)
        return {"mean_exp_u": float(
            sum(math.exp(u) for u in rng.random(64)) / 64
        )}

    plain = Campaign("plain", runner, [{}], replications=replications,
                     root_seed=42).run()
    paired = Campaign("antithetic", runner, [{}], replications=replications,
                      root_seed=42, antithetic=True).run()
    plain_summary = plain.points[0].summary()["mean_exp_u"]
    paired_summary = paired.points[0].summary()["mean_exp_u"]
    print(f"antithetic demo (mean of exp(u), {replications} replications):")
    print(f"  plain       ci half-width {plain_summary.ci_half_width:.5f} "
          f"({plain_summary.count} samples)")
    print(f"  antithetic  ci half-width {paired_summary.ci_half_width:.5f} "
          f"({paired_summary.count} pair averages)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scheduler-a", default="JABA-SD(J1)")
    parser.add_argument("--scheduler-b", default="FCFS")
    parser.add_argument("--loads", type=int, nargs="+", default=[12, 18])
    parser.add_argument("--seeds", type=int, default=4,
                        help="replications per point (first wave with --ci-target)")
    parser.add_argument("--duration", type=float, default=6.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--ci-target", type=float, default=None,
                        help="replicate until the mean_delay_s 95%% half-width "
                             "reaches this (seconds) at every point")
    args = parser.parse_args()

    result = run_scheduler_comparison(
        args.scheduler_a,
        args.scheduler_b,
        loads=args.loads,
        scenario=paper_scenario(duration_s=args.duration, warmup_s=1.0),
        num_seeds=args.seeds,
        workers=args.workers,
        ci_target=args.ci_target,
    )
    print(result.to_table())
    print()
    _antithetic_demo()


if __name__ == "__main__":
    main()
