#!/usr/bin/env python
"""Trace a dynamic simulation run with the telemetry recorder.

Demonstrates the three ways to observe a run:

1. ``ScenarioConfig(trace_path=...)`` — the simulator owns a recorder and
   writes a schema-versioned JSONL event stream (published atomically when
   the run completes);
2. an explicit ``RecorderHooks(EventRecorder(MemorySink()))`` for in-process
   analysis of the same events;
3. ``StageTimingHooks`` for a per-stage wall-time profile of the frame
   pipeline (the supported replacement for the deprecated
   ``run(collect_stage_times=True)``).

Run it with ``python examples/trace_dynamic_run.py [--out trace.jsonl]``.
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.mac import JabaSdScheduler
from repro.simulation import DynamicSystemSimulator, ScenarioConfig
from repro.simulation.scenario import TrafficConfig
from repro.utils.hooks import StageTimingHooks
from repro.utils.recorder import read_jsonl, validate_event


def make_scenario(trace_path=None) -> ScenarioConfig:
    return ScenarioConfig.fast_test(
        duration_s=1.0,
        warmup_s=0.2,
        num_data_users_per_cell=4,
        traffic=TrafficConfig(
            mean_reading_time_s=1.0,
            packet_call_min_bits=24_000,
            packet_call_max_bits=200_000,
        ),
        trace_path=trace_path,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="trace_dynamic_run.jsonl",
                        help="JSONL trace output path")
    parser.add_argument("--objective", choices=["J1", "J2"], default="J1")
    args = parser.parse_args()

    # 1. Record a full run to JSONL via the scenario's trace_path.
    scenario = make_scenario(trace_path=args.out)
    result = DynamicSystemSimulator(scenario, JabaSdScheduler(args.objective)).run()
    events = read_jsonl(args.out)
    invalid = sum(1 for event in events if validate_event(event))
    kinds = Counter(event["kind"] for event in events)
    print(f"wrote {args.out}: {len(events)} events ({invalid} invalid)")
    for kind, count in kinds.most_common():
        print(f"  {kind:<12} {count:>6}")
    admissions = [event for event in events if event["kind"] == "admission"]
    granted = sum(event["num_granted"] for event in admissions)
    print(f"admission decisions: {len(admissions)} ({granted} grants), "
          f"mean delay {result.mean_packet_delay_s:.3f} s")

    # 2. Profile the frame pipeline with stage-timing hooks (no file I/O).
    timing = StageTimingHooks()
    DynamicSystemSimulator(make_scenario(), JabaSdScheduler(args.objective),
                           hooks=timing).run()
    print(f"per-stage profile over {timing.frames} frames:")
    for stage, ms in sorted(timing.per_frame_ms().items(), key=lambda kv: -kv[1]):
        print(f"  {stage:<14} {ms:.4f} ms/frame")


if __name__ == "__main__":
    main()
