#!/usr/bin/env python
"""Full multi-cell dynamic simulation (the paper's evaluation methodology).

Runs the complete dynamic system simulation — user mobility, correlated
shadowing, Rayleigh fading, soft hand-off, closed-loop power control, on/off
voice background load and bursty WWW data traffic — for the JABA-SD scheduler
and prints the delay / throughput / loading summary, plus a per-link
breakdown.

Run it with ``python examples/multicell_dynamic_simulation.py [--load N]``.
"""

from __future__ import annotations

import argparse

from repro.experiments.common import paper_scenario
from repro.mac import JabaSdScheduler
from repro.simulation import DynamicSystemSimulator
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=int, default=16,
                        help="data users per cell (default 16)")
    parser.add_argument("--duration", type=float, default=15.0,
                        help="simulated seconds after warm-up (default 15)")
    parser.add_argument("--objective", choices=["J1", "J2"], default="J1")
    parser.add_argument("--seed", type=int, default=2001)
    args = parser.parse_args()

    scenario = paper_scenario(
        num_data_users_per_cell=args.load,
        duration_s=args.duration,
        seed=args.seed,
    )
    scheduler = JabaSdScheduler(args.objective)
    print(
        f"Running {scenario.total_data_users} data users + "
        f"{scenario.total_voice_users} voice users over "
        f"{scenario.duration_s + scenario.warmup_s:.0f} simulated seconds "
        f"({scheduler.name}) ..."
    )
    simulator = DynamicSystemSimulator(scenario, scheduler)
    result = simulator.run(progress=250)

    rows = [
        ["mean packet-call delay (s)", result.mean_packet_delay_s],
        ["90th-percentile delay (s)", result.p90_packet_delay_s],
        ["forward-link delay (s)", result.mean_forward_delay_s],
        ["reverse-link delay (s)", result.mean_reverse_delay_s],
        ["completed packet calls", result.completed_packet_calls],
        ["carried throughput (kbps)", result.carried_throughput_bps / 1e3],
        ["offered load (kbps)", result.offered_load_bps / 1e3],
        ["mean granted m", result.mean_granted_m],
        ["grant rate", result.grant_rate],
        ["mean pending requests", result.mean_queue_length],
        ["forward power utilisation", result.forward_utilisation],
        ["reverse rise over thermal (dB)", result.reverse_rise_db],
        ["FCH outage fraction", result.fch_outage_fraction],
        ["soft hand-off events", result.handoff_events],
    ]
    print()
    print(format_table(["metric", "value"], rows,
                       title=f"Dynamic simulation summary — {scheduler.name}"))


if __name__ == "__main__":
    main()
