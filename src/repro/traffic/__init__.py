"""Traffic models for the dynamic simulation.

* :mod:`~repro.traffic.voice` — on/off voice sources; the large population of
  voice users forms the statistically multiplexed background load the paper
  discusses in the introduction.
* :mod:`~repro.traffic.data` — bursty packet-data (WWW-style packet-call)
  sources whose bursts are what the admission control schedules.
* :mod:`~repro.traffic.arrivals` — generic arrival-process helpers.
"""

from repro.traffic.voice import OnOffVoiceSource
from repro.traffic.data import PacketCallDataSource, TruncatedParetoSize, PacketCall
from repro.traffic.arrivals import PoissonArrivals, exponential_interarrival

__all__ = [
    "OnOffVoiceSource",
    "PacketCallDataSource",
    "TruncatedParetoSize",
    "PacketCall",
    "PoissonArrivals",
    "exponential_interarrival",
]
