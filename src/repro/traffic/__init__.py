"""Traffic models for the dynamic simulation.

* :mod:`~repro.traffic.voice` — on/off voice sources; the large population of
  voice users forms the statistically multiplexed background load the paper
  discusses in the introduction.
* :mod:`~repro.traffic.data` — bursty packet-data (WWW-style packet-call)
  sources whose bursts are what the admission control schedules.
* :mod:`~repro.traffic.arrivals` — generic arrival-process helpers.
"""

from repro.traffic.voice import OnOffVoiceSource, VoiceFleet
from repro.traffic.data import (
    DataTrafficFleet,
    FleetArrivals,
    PacketCall,
    PacketCallDataSource,
    TruncatedParetoSize,
)
from repro.traffic.arrivals import (
    PoissonArrivals,
    exponential_interarrival,
    pull_renewal_arrivals_batch,
)

__all__ = [
    "OnOffVoiceSource",
    "VoiceFleet",
    "PacketCallDataSource",
    "DataTrafficFleet",
    "FleetArrivals",
    "TruncatedParetoSize",
    "PacketCall",
    "PoissonArrivals",
    "exponential_interarrival",
    "pull_renewal_arrivals_batch",
]
