"""Generic arrival-process helpers."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["exponential_interarrival", "PoissonArrivals"]


def exponential_interarrival(rng: np.random.Generator, rate_per_s: float) -> float:
    """Draw one exponential inter-arrival time for a Poisson process."""
    check_positive("rate_per_s", rate_per_s)
    return float(rng.exponential(1.0 / rate_per_s))


class PoissonArrivals:
    """Homogeneous Poisson arrival process.

    Parameters
    ----------
    rate_per_s:
        Arrival rate (events per second).
    rng:
        Random generator.
    start_s:
        Time origin of the process.
    """

    def __init__(
        self,
        rate_per_s: float,
        rng: Optional[np.random.Generator] = None,
        start_s: float = 0.0,
    ) -> None:
        self.rate_per_s = check_positive("rate_per_s", rate_per_s)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._next_s = float(start_s) + exponential_interarrival(
            self._rng, self.rate_per_s
        )

    @property
    def next_arrival_s(self) -> float:
        """Absolute time of the next arrival."""
        return self._next_s

    def pull_arrivals(self, until_s: float) -> list[float]:
        """Return the arrival times up to ``until_s`` and advance the process."""
        times: list[float] = []
        while self._next_s <= until_s:
            times.append(self._next_s)
            self._next_s += exponential_interarrival(self._rng, self.rate_per_s)
        return times

    def iter_arrivals(self, until_s: float) -> Iterator[float]:
        """Iterate over arrivals up to ``until_s`` (consumes the process)."""
        yield from self.pull_arrivals(until_s)
