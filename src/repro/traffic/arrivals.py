"""Generic arrival-process helpers."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "exponential_interarrival",
    "PoissonArrivals",
    "pull_renewal_arrivals_batch",
]


def exponential_interarrival(rng: np.random.Generator, rate_per_s: float) -> float:
    """Draw one exponential inter-arrival time for a Poisson process."""
    check_positive("rate_per_s", rate_per_s)
    return float(rng.exponential(1.0 / rate_per_s))


class PoissonArrivals:
    """Homogeneous Poisson arrival process.

    Parameters
    ----------
    rate_per_s:
        Arrival rate (events per second).
    rng:
        Random generator.
    start_s:
        Time origin of the process.
    """

    def __init__(
        self,
        rate_per_s: float,
        rng: Optional[np.random.Generator] = None,
        start_s: float = 0.0,
    ) -> None:
        self.rate_per_s = check_positive("rate_per_s", rate_per_s)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._next_s = float(start_s) + exponential_interarrival(
            self._rng, self.rate_per_s
        )

    @property
    def next_arrival_s(self) -> float:
        """Absolute time of the next arrival."""
        return self._next_s

    def pull_arrivals(self, until_s: float) -> list[float]:
        """Return the arrival times up to ``until_s`` and advance the process."""
        times: list[float] = []
        while self._next_s <= until_s:
            times.append(self._next_s)
            self._next_s += exponential_interarrival(self._rng, self.rate_per_s)
        return times

    def iter_arrivals(self, until_s: float) -> Iterator[float]:
        """Iterate over arrivals up to ``until_s`` (consumes the process)."""
        yield from self.pull_arrivals(until_s)


def pull_renewal_arrivals_batch(
    next_arrival_s: np.ndarray,
    until_s: float,
    mean_interarrival_s: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pop the due arrivals of a whole population of renewal processes.

    ``next_arrival_s`` holds each process's next absolute arrival time and is
    advanced **in place**: every due process (``next_arrival_s <= until_s``)
    emits its arrival and redraws an exponential inter-arrival gap, round by
    round, until no process is due any more.  The per-round gap draws are
    batched from the single ``rng`` stream, so one frame costs a handful of
    array ops regardless of the population size.

    Returns
    -------
    ``(process_indices, arrival_times_s)`` of all emitted arrivals, ordered
    by arrival time (ties broken by process index).  Both are empty arrays
    when nothing is due.
    """
    check_positive("mean_interarrival_s", mean_interarrival_s)
    emitted_idx = []
    emitted_t = []
    while True:
        due = np.flatnonzero(next_arrival_s <= until_s)
        if due.size == 0:
            break
        emitted_idx.append(due)
        emitted_t.append(next_arrival_s[due].copy())
        next_arrival_s[due] += rng.exponential(
            mean_interarrival_s, size=due.size
        )
    if not emitted_idx:
        return np.zeros(0, dtype=int), np.zeros(0)
    indices = np.concatenate(emitted_idx)
    times = np.concatenate(emitted_t)
    order = np.lexsort((indices, times))
    return indices[order], times[order]
