"""On/off voice traffic sources.

Voice users alternate between exponentially distributed talk spurts and
silence periods; during a talk spurt the FCH carries traffic (contributing
interference / consuming forward power), during silence it does not.  The
long-run fraction of time spent talking is the *voice activity factor* the
paper mentions ("CDMA simply translates voice activity factor ... into
capacity gains").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import constants
from repro.utils.validation import check_non_negative, check_non_negative_int, check_positive

__all__ = ["OnOffVoiceSource", "VoiceFleet"]


class OnOffVoiceSource:
    """Two-state (talk / silence) Markov voice source.

    Parameters
    ----------
    mean_talk_s / mean_silence_s:
        Mean durations of the exponentially distributed talk and silence
        periods.
    rng:
        Random generator.
    start_active:
        Initial state; when ``None`` the state is drawn from the stationary
        distribution.
    """

    def __init__(
        self,
        mean_talk_s: float = constants.VOICE_TALK_SPURT_MEAN_S,
        mean_silence_s: float = constants.VOICE_SILENCE_MEAN_S,
        rng: Optional[np.random.Generator] = None,
        start_active: Optional[bool] = None,
    ) -> None:
        self.mean_talk_s = check_positive("mean_talk_s", mean_talk_s)
        self.mean_silence_s = check_positive("mean_silence_s", mean_silence_s)
        self._rng = rng if rng is not None else np.random.default_rng()
        if start_active is None:
            start_active = bool(self._rng.random() < self.activity_factor)
        self._active = bool(start_active)
        self._time_in_state = 0.0
        self._state_duration = self._draw_duration()

    def _draw_duration(self) -> float:
        mean = self.mean_talk_s if self._active else self.mean_silence_s
        return float(self._rng.exponential(mean))

    @property
    def activity_factor(self) -> float:
        """Long-run probability of being in the talk state."""
        return self.mean_talk_s / (self.mean_talk_s + self.mean_silence_s)

    @property
    def is_active(self) -> bool:
        """True while the source is in a talk spurt."""
        return self._active

    def advance(self, dt_s: float) -> bool:
        """Advance the source by ``dt_s`` seconds; return the final state.

        Multiple state transitions within ``dt_s`` are handled exactly.
        """
        check_non_negative("dt_s", dt_s)
        remaining = dt_s
        while remaining > 0.0:
            left_in_state = self._state_duration - self._time_in_state
            if remaining < left_in_state:
                self._time_in_state += remaining
                break
            remaining -= left_in_state
            self._active = not self._active
            self._time_in_state = 0.0
            self._state_duration = self._draw_duration()
        return self._active


class VoiceFleet:
    """Structure-of-arrays fleet of two-state (talk / silence) voice sources.

    Advances *all* sources of a population in one vectorized exponential-
    transition sweep per frame instead of one Python call per user.  The
    transition logic is the exact multi-transition semantics of
    :class:`OnOffVoiceSource` (a frame may span several talk/silence
    periods), but the fleet owns a **single** random stream from which the
    per-user duration draws are batched, so its sample paths are *not*
    bit-identical to an ensemble of scalar sources — they are statistically
    equivalent (same stationary activity factor, same exponential holding
    times).  See ``benchmarks/README.md`` ("fleet RNG contract").

    Parameters
    ----------
    num_sources:
        Population size ``J``.
    mean_talk_s / mean_silence_s:
        Mean durations of the exponentially distributed talk and silence
        periods (shared by the whole fleet).
    rng:
        The fleet's random generator.
    start_active:
        Initial state of every source; ``None`` (default) draws each
        source's state from the stationary distribution.
    """

    def __init__(
        self,
        num_sources: int,
        mean_talk_s: float = constants.VOICE_TALK_SPURT_MEAN_S,
        mean_silence_s: float = constants.VOICE_SILENCE_MEAN_S,
        rng: Optional[np.random.Generator] = None,
        start_active: Optional[bool] = None,
    ) -> None:
        self.num_sources = check_non_negative_int("num_sources", num_sources)
        self.mean_talk_s = check_positive("mean_talk_s", mean_talk_s)
        self.mean_silence_s = check_positive("mean_silence_s", mean_silence_s)
        self._rng = rng if rng is not None else np.random.default_rng()
        n = self.num_sources
        if start_active is None:
            self._active = self._rng.random(n) < self.activity_factor
        else:
            self._active = np.full(n, bool(start_active))
        self._time_in_state = np.zeros(n)
        self._state_duration = self._rng.exponential(self._state_means())

    def _state_means(self) -> np.ndarray:
        return np.where(self._active, self.mean_talk_s, self.mean_silence_s)

    @property
    def activity_factor(self) -> float:
        """Long-run probability of being in the talk state."""
        return self.mean_talk_s / (self.mean_talk_s + self.mean_silence_s)

    @property
    def active(self) -> np.ndarray:
        """Current talk-spurt mask, shape ``(J,)`` (do not mutate)."""
        return self._active

    def advance(self, dt_s: float) -> np.ndarray:
        """Advance every source by ``dt_s`` seconds; return the active mask.

        Sources whose accumulated state time stays below their drawn state
        duration advance with pure array arithmetic; the (rare) boundary
        crossers are flipped round by round, drawing the fresh exponential
        durations of each round in one batch.  Multiple transitions within
        ``dt_s`` are handled exactly, as in the scalar source.
        """
        check_non_negative("dt_s", dt_s)
        self._time_in_state += dt_s
        while True:
            crossed = np.flatnonzero(self._time_in_state >= self._state_duration)
            if crossed.size == 0:
                break
            self._time_in_state[crossed] -= self._state_duration[crossed]
            self._active[crossed] = ~self._active[crossed]
            means = np.where(
                self._active[crossed], self.mean_talk_s, self.mean_silence_s
            )
            self._state_duration[crossed] = self._rng.exponential(means)
        return self._active
