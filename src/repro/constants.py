"""Physical and system constants used throughout the reproduction.

The numerology follows the cdma2000 spreading-rate-1 (SR1) assumptions of
reference [1] of the paper (Knisely et al., *IEEE Communications Magazine*,
1998), which the paper's system model builds on.  All values are defaults and
may be overridden through :class:`repro.config.SystemConfig`.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Spreading / numerology
# ---------------------------------------------------------------------------

#: cdma2000 SR1 chip rate in chips per second.
CHIP_RATE_HZ: float = 1.2288e6

#: System bandwidth in Hz (approximately equal to the chip rate for SR1).
SYSTEM_BANDWIDTH_HZ: float = 1.25e6

#: Fundamental channel (FCH) information bit rate in bit/s (Rate Set 1).
FCH_BIT_RATE_BPS: float = 9600.0

#: Frame duration of the burst admission / scheduling frame in seconds.
FRAME_DURATION_S: float = 0.020

#: Maximum ratio of FCH spreading gain to SCH spreading gain (``M`` in the
#: paper).  ``m_j`` of every burst request is an integer in ``[0, M]``; the
#: SCH bit rate scales linearly with ``m_j`` (eq. (4) of the paper).
MAX_SPREADING_GAIN_RATIO: int = 16

# ---------------------------------------------------------------------------
# Radio propagation
# ---------------------------------------------------------------------------

#: Default path-loss exponent for the log-distance model (urban macro-cell).
PATH_LOSS_EXPONENT: float = 4.0

#: Default path loss at the reference distance, in dB.
PATH_LOSS_REFERENCE_DB: float = 128.1

#: Reference distance for the log-distance path-loss model, in metres.
PATH_LOSS_REFERENCE_DISTANCE_M: float = 1000.0

#: Default log-normal shadowing standard deviation in dB.
SHADOWING_STD_DB: float = 8.0

#: Default shadowing decorrelation distance in metres (Gudmundson model).
SHADOWING_DECORRELATION_DISTANCE_M: float = 50.0

#: Default carrier frequency in Hz (cellular band).
CARRIER_FREQUENCY_HZ: float = 2.0e9

#: Speed of light in m/s.
SPEED_OF_LIGHT_M_S: float = 299_792_458.0

#: Thermal noise power spectral density in dBm/Hz at 290 K.
THERMAL_NOISE_DENSITY_DBM_HZ: float = -174.0

#: Default mobile receiver noise figure in dB.
MOBILE_NOISE_FIGURE_DB: float = 9.0

#: Default base-station receiver noise figure in dB.
BASE_STATION_NOISE_FIGURE_DB: float = 5.0

# ---------------------------------------------------------------------------
# Power budgets
# ---------------------------------------------------------------------------

#: Maximum base-station transmit power in watts (20 W ~ 43 dBm).
BS_MAX_TX_POWER_W: float = 20.0

#: Fraction of the base-station power reserved for common channels (pilot,
#: paging, sync).
BS_COMMON_CHANNEL_FRACTION: float = 0.20

#: Maximum mobile-station transmit power in watts (200 mW ~ 23 dBm).
MS_MAX_TX_POWER_W: float = 0.200

#: Maximum tolerable reverse-link rise over thermal in dB (interference
#: limit ``L_max`` of the paper's eq. (16)).
REVERSE_LINK_MAX_RISE_DB: float = 6.0

# ---------------------------------------------------------------------------
# Physical layer (VTAOC)
# ---------------------------------------------------------------------------

#: Number of VTAOC transmission modes (excluding the "no transmission" mode).
VTAOC_NUM_MODES: int = 6

#: Default target bit error rate maintained by the constant-BER adaptation.
TARGET_BER: float = 1.0e-3

#: Default FCH target bit error rate (voice-grade).
FCH_TARGET_BER: float = 1.0e-3

#: Default FCH Eb/Io target in dB used by closed-loop power control.
FCH_EB_IO_TARGET_DB: float = 7.0

# ---------------------------------------------------------------------------
# Voice traffic
# ---------------------------------------------------------------------------

#: Voice activity factor (fraction of time an active voice user transmits).
VOICE_ACTIVITY_FACTOR: float = 0.40

#: Mean duration of a voice talk spurt in seconds.
VOICE_TALK_SPURT_MEAN_S: float = 1.0

#: Mean duration of a voice silence period in seconds, chosen so the
#: long-run activity factor equals :data:`VOICE_ACTIVITY_FACTOR`.
VOICE_SILENCE_MEAN_S: float = VOICE_TALK_SPURT_MEAN_S * (
    1.0 / VOICE_ACTIVITY_FACTOR - 1.0
)

# ---------------------------------------------------------------------------
# MAC states (cdma2000, Figure 3 of the paper)
# ---------------------------------------------------------------------------

#: Time after which an idle data user drops from Active to Control-Hold (s).
MAC_ACTIVE_TO_CONTROL_HOLD_S: float = 0.10

#: ``T2`` in eq. (23): waiting time after which the Control-Hold state times
#: out into the Suspended state and the setup-delay penalty becomes ``D1``.
MAC_T2_S: float = 1.0

#: ``T3`` in eq. (23): waiting time after which the Suspended state times out
#: into the Dormant state and the setup-delay penalty becomes ``D2``.
MAC_T3_S: float = 5.0

#: ``D1`` in eq. (23): re-synchronisation penalty from the Suspended state (s).
MAC_D1_PENALTY_S: float = 0.040

#: ``D2`` in eq. (23): full re-connection penalty from the Dormant state (s).
MAC_D2_PENALTY_S: float = 0.300

# ---------------------------------------------------------------------------
# Soft hand-off
# ---------------------------------------------------------------------------

#: Pilot Ec/Io add threshold in dB (T_ADD): a pilot stronger than this enters
#: the active set.
HANDOFF_ADD_THRESHOLD_DB: float = -14.0

#: Pilot Ec/Io drop threshold in dB (T_DROP).
HANDOFF_DROP_THRESHOLD_DB: float = -16.0

#: Maximum size of the (FCH) active set.
ACTIVE_SET_MAX_SIZE: int = 3

#: Size of the *reduced* active set used for the SCH; the paper assumes the
#: 2 strongest pilots.
REDUCED_ACTIVE_SET_SIZE: int = 2

#: Maximum number of pilot strength measurements carried in a SCRM message
#: (footnote 6 of the paper).
SCRM_MAX_PILOTS: int = 8


def thermal_noise_power_w(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Return the thermal noise power in watts over ``bandwidth_hz``.

    Parameters
    ----------
    bandwidth_hz:
        Receiver bandwidth in Hz.
    noise_figure_db:
        Receiver noise figure in dB added on top of the -174 dBm/Hz floor.
    """
    dbm = THERMAL_NOISE_DENSITY_DBM_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db
    return 10.0 ** ((dbm - 30.0) / 10.0)
