"""Vectorised link gains for every mobile–cell pair.

The dynamic simulation needs, at every frame, the full matrix of link power
gains between each mobile and each base station.  Keeping one Python object
per pair would be prohibitively slow for hundreds of users, so this module
maintains the three gain components as NumPy arrays of shape
``(num_mobiles, num_cells)``:

* ``path_gain`` — recomputed from the wrap-around distances each update;
* ``shadowing_db`` — correlated log-normal shadowing advanced with the exact
  Gudmundson AR(1) update driven by the distance each mobile moved, with a
  configurable inter-site correlation (a common per-mobile component);
* ``fading`` — complex Gauss-Markov (Jakes-correlated) Rayleigh amplitudes.

The *local-mean* gain (path loss × shadowing) is what the measurement
sub-layer of the burst admission algorithm uses; the fast-fading component is
only consumed by the adaptive physical layer.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro import constants
from repro.channel.pathloss import LogDistancePathLoss, PathLossModel
from repro.geometry.hexgrid import HexagonalCellLayout
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["LinkGainMap"]


class LinkGainMap:
    """Maintains path loss, shadowing and fast fading for all links.

    Parameters
    ----------
    layout:
        Cell layout providing wrap-around distances.
    num_mobiles:
        Number of mobiles (rows of the gain matrices).
    rng:
        Random generator (shadowing initialisation and innovations, fading).
    path_loss:
        Path-loss model; defaults to :class:`LogDistancePathLoss`.
    shadowing_std_db / decorrelation_distance_m:
        Log-normal shadowing parameters.
    site_correlation:
        Correlation coefficient of the shadowing between different sites for
        the same mobile (0.5 is the common assumption).
    doppler_hz:
        Maximum Doppler frequency of the fast fading.
    """

    def __init__(
        self,
        layout: HexagonalCellLayout,
        num_mobiles: int,
        rng: np.random.Generator,
        path_loss: Optional[PathLossModel] = None,
        shadowing_std_db: float = constants.SHADOWING_STD_DB,
        decorrelation_distance_m: float = constants.SHADOWING_DECORRELATION_DISTANCE_M,
        site_correlation: float = 0.5,
        doppler_hz: float = 10.0,
    ) -> None:
        if num_mobiles < 0:
            raise ValueError("num_mobiles must be non-negative")
        if not 0.0 <= site_correlation < 1.0:
            raise ValueError("site_correlation must lie in [0, 1)")
        self.layout = layout
        self.num_cells = layout.num_cells
        self.num_mobiles = int(num_mobiles)
        self.path_loss = path_loss if path_loss is not None else LogDistancePathLoss()
        self.shadowing_std_db = check_non_negative("shadowing_std_db", shadowing_std_db)
        self.decorrelation_distance_m = check_positive(
            "decorrelation_distance_m", decorrelation_distance_m
        )
        self.site_correlation = float(site_correlation)
        self.doppler_hz = check_non_negative("doppler_hz", doppler_hz)
        self._rng = rng

        shape = (self.num_mobiles, self.num_cells)
        # Shadowing: common per-mobile component + independent per-site component.
        self._common_shadow = self._rng.normal(0.0, 1.0, size=(self.num_mobiles, 1))
        self._site_shadow = self._rng.normal(0.0, 1.0, size=shape)
        # Fast fading: complex Gauss-Markov with unit power.
        scale = math.sqrt(0.5)
        self._fading = self._rng.normal(scale=scale, size=shape) + 1j * self._rng.normal(
            scale=scale, size=shape
        )
        self._path_gain = np.ones(shape, dtype=float)
        self._distances = np.ones(shape, dtype=float)
        # Per-frame cache of the local-mean gain matrix: building it involves
        # a 10**(dB/10) over (J, K), and both the hand-off update and the
        # power-control snapshot need it every frame.  Invalidated whenever
        # positions or shadowing change; the count is exposed so regression
        # tests can assert one build per frame.
        self._local_mean_cache: Optional[np.ndarray] = None
        self.local_mean_builds = 0
        # Doppler correlation cache (j0 is re-evaluated only when dt changes).
        self._rho_cache: Optional[tuple] = None

    # -- state updates ------------------------------------------------------------
    def set_positions(self, positions: np.ndarray) -> None:
        """Recompute path gains for the given mobile ``positions`` (no fading update)."""
        positions = np.asarray(positions, dtype=float).reshape(self.num_mobiles, 2)
        if self.num_mobiles > 0:
            np.copyto(self._distances, self.layout.distances_to_all_batch(positions))
        self._path_gain = np.asarray(self.path_loss.gain(self._distances), dtype=float)
        self._local_mean_cache = None

    def advance(
        self, positions: np.ndarray, moved_m: np.ndarray, dt_s: float
    ) -> None:
        """Advance shadowing and fading, then recompute path gains.

        Parameters
        ----------
        positions:
            New positions, shape ``(num_mobiles, 2)``.
        moved_m:
            Distance each mobile travelled since the last update, shape
            ``(num_mobiles,)``.
        dt_s:
            Elapsed time (fast-fading decorrelation).
        """
        moved = np.asarray(moved_m, dtype=float).reshape(self.num_mobiles)
        if np.any(moved < 0.0):
            raise ValueError("moved_m must be non-negative")
        check_non_negative("dt_s", dt_s)

        if self.shadowing_std_db > 0.0 and self.num_mobiles > 0:
            a = np.exp(-moved / self.decorrelation_distance_m)[:, np.newaxis]
            innovation_scale = np.sqrt(np.maximum(0.0, 1.0 - a ** 2))
            self._common_shadow = a * self._common_shadow + innovation_scale * (
                self._rng.normal(0.0, 1.0, size=(self.num_mobiles, 1))
            )
            self._site_shadow = a * self._site_shadow + innovation_scale * (
                self._rng.normal(0.0, 1.0, size=(self.num_mobiles, self.num_cells))
            )
            self._local_mean_cache = None

        if self.doppler_hz > 0.0 and dt_s > 0.0 and self.num_mobiles > 0:
            rho_key = (dt_s, self.doppler_hz)
            if self._rho_cache is not None and self._rho_cache[0] == rho_key:
                rho = self._rho_cache[1]
            else:
                from scipy import special

                rho = float(special.j0(2.0 * math.pi * self.doppler_hz * dt_s))
                rho = min(max(rho, 0.0), 1.0)
                self._rho_cache = (rho_key, rho)
            scale = math.sqrt(0.5)
            shape = (self.num_mobiles, self.num_cells)
            w = self._rng.normal(scale=scale, size=shape) + 1j * self._rng.normal(
                scale=scale, size=shape
            )
            self._fading = rho * self._fading + math.sqrt(1.0 - rho * rho) * w

        self.set_positions(positions)

    # -- gain queries -----------------------------------------------------------------
    @property
    def distances_m(self) -> np.ndarray:
        """Mobile–cell distances, shape ``(num_mobiles, num_cells)``."""
        return self._distances.copy()

    def shadowing_db(self) -> np.ndarray:
        """Current shadowing values in dB, shape ``(num_mobiles, num_cells)``."""
        rho = self.site_correlation
        combined = math.sqrt(rho) * self._common_shadow + math.sqrt(
            1.0 - rho
        ) * self._site_shadow
        return self.shadowing_std_db * combined

    def local_mean_gain(self) -> np.ndarray:
        """Path loss × shadowing gains (linear), shape ``(num_mobiles, num_cells)``.

        The matrix is cached until the next :meth:`set_positions` /
        :meth:`advance` and returned read-only (every per-frame consumer —
        hand-off, power control, measurements — shares one build).
        """
        if self._local_mean_cache is None:
            gain = self._path_gain * 10.0 ** (self.shadowing_db() / 10.0)
            gain.flags.writeable = False
            self._local_mean_cache = gain
            self.local_mean_builds += 1
        return self._local_mean_cache

    def fading_power(self) -> np.ndarray:
        """Fast-fading power gains ``|h|^2`` (unit mean), same shape."""
        return np.abs(self._fading) ** 2

    def instantaneous_gain(self) -> np.ndarray:
        """Full composite gains including fast fading (eq. (1))."""
        return self.local_mean_gain() * self.fading_power()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LinkGainMap(mobiles={self.num_mobiles}, cells={self.num_cells}, "
            f"sigma={self.shadowing_std_db} dB, doppler={self.doppler_hz} Hz)"
        )
