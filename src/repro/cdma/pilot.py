"""Pilot strength (Ec/Io) measurements.

Pilot measurements drive both soft hand-off (forward pilot Ec/Io measured at
the mobile) and the reverse-link burst measurements of the paper:

* ``t_j,k^(FL)`` — forward-link pilot strength of cell ``k`` measured by
  mobile ``j`` and reported in the SCRM message (used in eqs. (13)–(15) to
  estimate relative path loss towards non-soft-hand-off neighbour cells);
* ``t_j,k^(RL)`` — reverse-link pilot strength of mobile ``j`` measured at
  base station ``k`` (used in eqs. (10)–(12) to express the FCH reverse-link
  loading of the mobile).
"""

from __future__ import annotations

import numpy as np

__all__ = ["forward_pilot_ec_io", "reverse_pilot_ec_io"]


def forward_pilot_ec_io(
    gains: np.ndarray,
    bs_total_tx_power_w: np.ndarray,
    bs_pilot_power_w: np.ndarray,
    mobile_noise_power_w: float,
) -> np.ndarray:
    """Forward pilot Ec/Io of every cell as seen by every mobile.

    Parameters
    ----------
    gains:
        Local-mean link gains, shape ``(num_mobiles, num_cells)``.
    bs_total_tx_power_w:
        Current total transmit power of each base station, shape
        ``(num_cells,)``.
    bs_pilot_power_w:
        Pilot power of each base station, shape ``(num_cells,)``.
    mobile_noise_power_w:
        Thermal noise power at the mobile receiver.

    Returns
    -------
    numpy.ndarray
        ``t^(FL)`` of shape ``(num_mobiles, num_cells)``: received pilot
        power of cell ``k`` divided by the total received power (all cells
        plus noise) at mobile ``j``.
    """
    gains = np.asarray(gains, dtype=float)
    total = np.asarray(bs_total_tx_power_w, dtype=float)
    pilot = np.asarray(bs_pilot_power_w, dtype=float)
    if gains.ndim != 2:
        raise ValueError("gains must be a 2-D (mobiles x cells) array")
    if total.shape != (gains.shape[1],) or pilot.shape != (gains.shape[1],):
        raise ValueError("power vectors must have one entry per cell")
    if mobile_noise_power_w < 0.0:
        raise ValueError("mobile_noise_power_w must be non-negative")
    received_total = gains @ total + mobile_noise_power_w  # (num_mobiles,)
    received_pilot = gains * pilot[np.newaxis, :]
    return received_pilot / received_total[:, np.newaxis]


def reverse_pilot_ec_io(
    gains: np.ndarray,
    mobile_pilot_tx_power_w: np.ndarray,
    bs_total_received_power_w: np.ndarray,
) -> np.ndarray:
    """Reverse pilot Ec/Io of every mobile as seen by every base station.

    Parameters
    ----------
    gains:
        Local-mean link gains, shape ``(num_mobiles, num_cells)``.
    mobile_pilot_tx_power_w:
        Reverse pilot transmit power of each mobile, shape ``(num_mobiles,)``.
    bs_total_received_power_w:
        Total received power (including thermal noise) at each base station,
        shape ``(num_cells,)`` — the ``L_k`` of the paper.

    Returns
    -------
    numpy.ndarray
        ``t^(RL)`` of shape ``(num_mobiles, num_cells)``.
    """
    gains = np.asarray(gains, dtype=float)
    pilot = np.asarray(mobile_pilot_tx_power_w, dtype=float)
    total = np.asarray(bs_total_received_power_w, dtype=float)
    if gains.ndim != 2:
        raise ValueError("gains must be a 2-D (mobiles x cells) array")
    if pilot.shape != (gains.shape[0],):
        raise ValueError("mobile_pilot_tx_power_w must have one entry per mobile")
    if total.shape != (gains.shape[1],):
        raise ValueError("bs_total_received_power_w must have one entry per cell")
    if np.any(total <= 0.0):
        raise ValueError("bs_total_received_power_w must be strictly positive")
    received_pilot = gains * pilot[:, np.newaxis]
    return received_pilot / total[np.newaxis, :]
