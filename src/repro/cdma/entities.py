"""Base-station and mobile-station entities."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.geometry.mobility import MobilityModel, StaticMobility
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["UserClass", "BaseStation", "MobileStation"]


class UserClass(enum.Enum):
    """Service class of a mobile user."""

    #: Circuit voice user: on/off activity, FCH only, background load.
    VOICE = "voice"
    #: High-speed packet-data user: FCH (or dedicated control channel) plus
    #: burst-admitted SCH.
    DATA = "data"


@dataclass
class BaseStation:
    """One cell site.

    Attributes
    ----------
    index:
        Cell index ``k``.
    position:
        Coordinates in metres.
    max_tx_power_w:
        Total forward-link power budget ``P_max``.
    common_channel_power_w:
        Power permanently consumed by pilot/paging/sync channels.
    pilot_power_w:
        Pilot channel power (part of the common channel power).
    noise_power_w:
        Thermal noise power at the base-station receiver (reverse link).
    max_rise_over_thermal_db:
        Reverse-link interference limit expressed as rise over thermal
        (defines ``L_max`` in eq. (16)).
    """

    index: int
    position: np.ndarray
    max_tx_power_w: float = constants.BS_MAX_TX_POWER_W
    common_channel_power_w: float = (
        constants.BS_MAX_TX_POWER_W * constants.BS_COMMON_CHANNEL_FRACTION
    )
    pilot_power_w: float = constants.BS_MAX_TX_POWER_W * 0.10
    noise_power_w: float = constants.thermal_noise_power_w(
        constants.SYSTEM_BANDWIDTH_HZ, constants.BASE_STATION_NOISE_FIGURE_DB
    )
    max_rise_over_thermal_db: float = constants.REVERSE_LINK_MAX_RISE_DB

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float).reshape(2)
        check_positive("max_tx_power_w", self.max_tx_power_w)
        check_non_negative("common_channel_power_w", self.common_channel_power_w)
        check_positive("pilot_power_w", self.pilot_power_w)
        check_positive("noise_power_w", self.noise_power_w)
        if self.common_channel_power_w >= self.max_tx_power_w:
            raise ValueError("common channel power must be below the power budget")
        if self.pilot_power_w > self.common_channel_power_w:
            raise ValueError("pilot power cannot exceed the common channel power")

    @property
    def max_traffic_power_w(self) -> float:
        """Power available for traffic channels (``P_max`` minus overhead)."""
        return self.max_tx_power_w - self.common_channel_power_w

    @property
    def max_reverse_interference_w(self) -> float:
        """Reverse-link interference ceiling ``L_max`` (absolute power)."""
        rise = 10.0 ** (self.max_rise_over_thermal_db / 10.0)
        return self.noise_power_w * rise


@dataclass
class MobileStation:
    """One mobile user.

    Attributes
    ----------
    index:
        Mobile index ``j``.
    user_class:
        Voice or data.
    mobility:
        Mobility model providing the position over time.
    max_tx_power_w:
        Mobile power amplifier limit.
    fch_pilot_power_ratio:
        ``xi_j`` of eq. (10): ratio of the (full-rate) FCH transmit power to
        the reverse pilot transmit power at the mobile.
    fch_active:
        Whether the FCH/DCCH currently carries traffic (voice activity / data
        session active); inactive users contribute no FCH load.
    fch_rate_factor:
        Rate of the currently held dedicated channel relative to the
        full-rate FCH: 1.0 for a full-rate FCH (voice talk spurt, data user
        with a burst on air), a small fraction for the low-rate dedicated
        control channel a data user keeps while waiting between bursts.
    """

    index: int
    user_class: UserClass
    mobility: MobilityModel
    max_tx_power_w: float = constants.MS_MAX_TX_POWER_W
    fch_pilot_power_ratio: float = 4.0
    fch_active: bool = True
    fch_rate_factor: float = 1.0

    def __post_init__(self) -> None:
        check_positive("max_tx_power_w", self.max_tx_power_w)
        check_positive("fch_pilot_power_ratio", self.fch_pilot_power_ratio)
        if not 0.0 < self.fch_rate_factor <= 1.0:
            raise ValueError("fch_rate_factor must lie in (0, 1]")

    def __setattr__(self, name: str, value) -> None:
        # Plain attribute assignment stays the public API for toggling FCH
        # activity (voice on/off model, MAC state machine), but consumers
        # that keep the population in structure-of-arrays form (the radio
        # network) must see those toggles without re-scanning every mobile
        # per frame — so FCH field writes are pushed to registered observers.
        object.__setattr__(self, name, value)
        if name == "fch_active" or name == "fch_rate_factor":
            self._notify_fch_observers()

    def _notify_fch_observers(self) -> None:
        """Push the current FCH fields to every registered observer.

        Bulk writers (:meth:`repro.cdma.network.CdmaNetwork.set_fch_state`)
        update the fields with ``object.__setattr__`` — which skips
        :meth:`__setattr__` — and call this once per mobile only when a
        *foreign* observer needs the notification.
        """
        observers = self.__dict__.get("_fch_observers")
        if observers:
            results = [callback(self) for callback in observers]
            if False in results:
                # Prune observers of garbage-collected networks so long
                # ablation sweeps reusing mobiles don't accumulate them.
                observers[:] = [
                    cb
                    for cb, alive in zip(observers, results)
                    if alive is not False
                ]

    def _add_fch_observer(self, callback) -> None:
        """Register an FCH-write observer.

        ``callback(mobile)`` fires on every FCH field write; a callback
        returning ``False`` signals its consumer is gone and is pruned.
        """
        self.__dict__.setdefault("_fch_observers", []).append(callback)

    @property
    def position(self) -> np.ndarray:
        """Current position (m)."""
        return self.mobility.position

    @classmethod
    def static(
        cls,
        index: int,
        position: np.ndarray,
        user_class: UserClass = UserClass.DATA,
        **kwargs,
    ) -> "MobileStation":
        """Create a non-moving mobile at ``position`` (snapshot analyses)."""
        return cls(
            index=index,
            user_class=user_class,
            mobility=StaticMobility(position),
            **kwargs,
        )
