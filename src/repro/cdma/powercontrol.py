"""SIR-based power control for the fundamental channels.

The paper's dynamic simulation "takes into account of ... power control".  At
the system level we model the closed-loop power control in its quasi-static
(per-frame) form: at each scheduling frame the transmit powers of all FCHs
are set so every link just meets its Eb/Io target given the interference
created by everybody else.  This fixed point is computed with the standard
interference-function iteration (Yates), which converges monotonically and is
vectorised over all mobiles/cells.

Forward and reverse links are power-limited and interference-limited
respectively (Section 3.1), and are therefore handled by separate solvers:

* :class:`ReverseLinkPowerControl` — mobiles adjust their FCH (plus reverse
  pilot) transmit power towards their serving base station; produces the
  total received power ``L_k`` of every cell.
* :class:`ForwardLinkPowerControl` — each base station allocates FCH power to
  every mobile in its active set; produces the per-cell transmit power ``P_k``
  and the per-mobile-per-cell FCH allocations ``P_{j,k}`` used by the
  forward-link burst measurements (eq. (6)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "PowerControlResult",
    "ReverseLinkPowerControl",
    "ForwardLinkPowerControl",
]


@dataclass
class PowerControlResult:
    """Outcome of one power-control fixed-point computation.

    Attributes
    ----------
    tx_power_w:
        Reverse link: per-mobile transmit power (FCH only), shape ``(J,)``.
        Forward link: per-mobile-per-cell FCH allocation, shape ``(J, K)``.
    total_power_w:
        Reverse link: total received power ``L_k`` per cell (including
        noise), shape ``(K,)``.  Forward link: total transmit power ``P_k``
        per cell, shape ``(K,)``.
    achieved_sir:
        Achieved FCH Eb/Io (linear) per mobile, shape ``(J,)``; ``nan`` for
        inactive mobiles.
    power_limited:
        Boolean per-mobile flag set when the power limit prevented the link
        from reaching its target (outage).
    iterations:
        Number of fixed-point iterations performed.
    """

    tx_power_w: np.ndarray
    total_power_w: np.ndarray
    achieved_sir: np.ndarray
    power_limited: np.ndarray
    iterations: int


def _reverse_direct_seed(
    gains: np.ndarray,
    serving: np.ndarray,
    connectable: np.ndarray,
    coeff: np.ndarray,
    tx_cap: float,
    overhead: float,
    noise_extra: np.ndarray,
    initial: np.ndarray,
    max_passes: int = 4,
) -> np.ndarray:
    """Direct active-set solve of the reverse-link fixed point.

    With the set of power-capped mobiles fixed, the Yates iteration is the
    affine map ``L = c + A L`` over the per-cell totals — a ``K x K``
    linear system solved exactly here.  The cap set is detected from the
    warm guess and re-checked for a few passes.  Used only to *seed* the
    plain iteration (which still certifies convergence), so any numerical
    bail-out simply falls back to the unrefined guess.
    """
    num_cells = gains.shape[1]
    eye = np.eye(num_cells)
    cells = np.arange(num_cells)
    weighted = gains * (overhead * coeff)[:, np.newaxis]
    totals = initial
    capped = connectable & (coeff * totals[serving] >= tx_cap)
    for _ in range(max_passes):
        free = connectable & ~capped
        constant = noise_extra
        if capped.any():
            constant = constant + gains[capped].sum(axis=0) * (tx_cap * overhead)
        onehot = (serving[free] == cells[:, np.newaxis]).astype(float)
        coupling = (onehot @ weighted[free]).T
        try:
            solved = np.linalg.solve(eye - coupling, constant)
        except np.linalg.LinAlgError:
            return initial
        if not (np.all(np.isfinite(solved)) and np.all(solved > 0.0)):
            return initial
        totals = solved
        new_capped = connectable & (coeff * totals[serving] >= tx_cap)
        if np.array_equal(new_capped, capped):
            break
        capped = new_capped
    return totals


def _forward_direct_seed(
    gains: np.ndarray,
    serving: np.ndarray,
    allocatable: np.ndarray,
    q: np.ndarray,
    legs: np.ndarray,
    own_fraction: float,
    mobile_noise_power_w: float,
    base_extra: np.ndarray,
    budget: np.ndarray,
    extra: np.ndarray,
    max_link_power_w: Optional[float],
    initial: np.ndarray,
    max_passes: int = 6,
) -> np.ndarray:
    """Direct active-set solve of the forward-link fixed point.

    With the per-link-capped allocations and the budget-saturated cells
    held fixed, the per-cell totals satisfy an affine ``K x K`` system:
    capped links contribute a constant, and a saturated cell's total is
    pinned at the value the Yates iteration's proportional down-scaling
    converges to.  The iteration scales only the *controlled* allocations
    ``s_k`` (committed SCH burst power ``extra`` is held), so the pinned
    total is ``base + extra + budget * s / (s + extra)`` — computed here
    from the raw allocation sums of the current pass, which makes the pin
    exact for nonzero committed power too (``base + budget`` when
    ``extra == 0``).  Cap membership is detected from the warm guess and
    re-checked for a few passes.  Like the reverse-link seed this only
    provides the starting point — the Yates loop still certifies the
    solution — so any numerical bail-out falls back to the unrefined guess.
    """
    num_mobiles, num_cells = gains.shape
    rows = np.arange(num_mobiles)
    own = gains[rows, serving]
    per_unit_all = np.where(
        allocatable, (q / legs)[:, np.newaxis] / np.maximum(gains, 1e-300), 0.0
    )
    interference_of = gains.copy()
    interference_of[rows, serving] -= own_fraction * own
    eye = np.eye(num_cells)
    totals = initial
    prev_capped = None
    prev_saturated = None
    prev_pinned = None
    for _ in range(max_passes):
        interference = interference_of @ totals + mobile_noise_power_w
        alloc = per_unit_all * interference[:, np.newaxis]
        if max_link_power_w is not None:
            capped = allocatable & (alloc >= max_link_power_w)
            alloc = np.minimum(alloc, max_link_power_w)
        else:
            capped = np.zeros_like(allocatable)
        raw_traffic = alloc.sum(axis=0)
        saturated = raw_traffic + extra > budget
        # Fixed point of the down-scaled totals of a saturated cell; the
        # scale budget/(s + extra) applies to the controlled allocations s
        # only, never to the committed burst power.
        pinned_value = base_extra + budget * raw_traffic / np.maximum(
            raw_traffic + extra, 1e-300
        )
        if (
            prev_capped is not None
            and np.array_equal(capped, prev_capped)
            and np.array_equal(saturated, prev_saturated)
            and (
                not saturated.any()
                or np.allclose(
                    pinned_value[saturated], prev_pinned[saturated], rtol=1e-9
                )
            )
        ):
            break
        prev_capped, prev_saturated = capped, saturated
        prev_pinned = pinned_value

        free_units = np.where(capped, 0.0, per_unit_all)
        coupling = free_units.T @ interference_of
        constant = base_extra + mobile_noise_power_w * free_units.sum(axis=0)
        if max_link_power_w is not None and capped.any():
            constant = constant + max_link_power_w * capped.sum(axis=0)
        try:
            if saturated.any():
                unknown = ~saturated
                if not unknown.any():
                    solved = pinned_value.copy()
                else:
                    sub = np.ix_(unknown, unknown)
                    rhs = constant[unknown] + (
                        coupling[np.ix_(unknown, saturated)]
                        @ pinned_value[saturated]
                    )
                    part = np.linalg.solve(eye[sub] - coupling[sub], rhs)
                    solved = pinned_value.copy()
                    solved[unknown] = part
            else:
                solved = np.linalg.solve(eye - coupling, constant)
        except np.linalg.LinAlgError:
            return initial
        if not (np.all(np.isfinite(solved)) and np.all(solved > 0.0)):
            return initial
        totals = solved
    return totals


class ReverseLinkPowerControl:
    """Reverse-link (uplink) FCH power control.

    Parameters
    ----------
    processing_gain:
        FCH processing gain ``W / Rf``.
    ebio_target:
        FCH Eb/Io target (linear).
    pilot_overhead:
        Fraction of additional transmit power spent on the reverse pilot,
        expressed relative to the FCH power (``1 / xi_j`` with the paper's
        notation); included in the interference the mobile generates.
    max_tx_power_w:
        Mobile power amplifier limit (applied to FCH + pilot).
    iterations / tolerance:
        Fixed-point iteration controls.
    """

    def __init__(
        self,
        processing_gain: float,
        ebio_target: float,
        pilot_overhead: float = 0.25,
        max_tx_power_w: float = 0.2,
        iterations: int = 30,
        tolerance: float = 1e-6,
    ) -> None:
        self.processing_gain = check_positive("processing_gain", processing_gain)
        self.ebio_target = check_positive("ebio_target", ebio_target)
        if pilot_overhead < 0.0:
            raise ValueError("pilot_overhead must be non-negative")
        self.pilot_overhead = float(pilot_overhead)
        self.max_tx_power_w = check_positive("max_tx_power_w", max_tx_power_w)
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self.iterations = int(iterations)
        self.tolerance = check_positive("tolerance", tolerance)

    def solve(
        self,
        gains: np.ndarray,
        serving_cells: np.ndarray,
        active: np.ndarray,
        noise_power_w: np.ndarray,
        extra_received_power_w: Optional[np.ndarray] = None,
        rate_factor: Optional[np.ndarray] = None,
        initial_total_power_w: Optional[np.ndarray] = None,
    ) -> PowerControlResult:
        """Solve the reverse-link power-control fixed point.

        Parameters
        ----------
        gains:
            Local-mean link gains, shape ``(J, K)``.
        serving_cells:
            Index of each mobile's serving cell, shape ``(J,)``.
        active:
            Boolean mask of mobiles whose FCH currently carries traffic.
        noise_power_w:
            Thermal noise power at each base station, shape ``(K,)``.
        extra_received_power_w:
            Additional received power per cell not controlled here (granted
            reverse SCH bursts), shape ``(K,)``.
        rate_factor:
            Per-mobile dedicated-channel rate relative to the full-rate FCH
            (1.0 = full rate, e.g. 0.125 for the low-rate control channel a
            data user keeps while waiting between bursts); scales the user's
            load factor accordingly.
        initial_total_power_w:
            Optional warm start: total received power ``L_k`` per cell to
            seed the fixed-point iteration with (typically the previous
            frame's solution), shape ``(K,)``.  The iteration converges to
            the same fixed point from any non-negative start; a warm start
            merely cuts the number of Yates iterations on quasi-static
            frames.  Omitted = cold start from the noise floor.
        """
        gains = np.asarray(gains, dtype=float)
        num_mobiles, num_cells = gains.shape
        serving = np.asarray(serving_cells, dtype=int).reshape(num_mobiles)
        active = np.asarray(active, dtype=bool).reshape(num_mobiles)
        noise = np.asarray(noise_power_w, dtype=float).reshape(num_cells)
        extra = (
            np.zeros(num_cells)
            if extra_received_power_w is None
            else np.asarray(extra_received_power_w, dtype=float).reshape(num_cells)
        )
        rate = (
            np.ones(num_mobiles)
            if rate_factor is None
            else np.asarray(rate_factor, dtype=float).reshape(num_mobiles)
        )
        if np.any(rate <= 0.0) or np.any(rate > 1.0):
            raise ValueError("rate_factor entries must lie in (0, 1]")

        q = self.ebio_target * rate / self.processing_gain
        own_gain = gains[np.arange(num_mobiles), serving]
        tx = np.zeros(num_mobiles, dtype=float)
        if initial_total_power_w is None:
            totals = noise + extra
        else:
            totals = np.asarray(initial_total_power_w, dtype=float).reshape(num_cells)
            if np.any(totals < 0.0):
                raise ValueError("initial_total_power_w must be non-negative")
        iterations_done = 0
        overhead = 1.0 + self.pilot_overhead
        # Loop invariants.
        q_fraction = q / (1.0 + q)
        connectable = active & (own_gain > 0.0)
        own_gain_safe = np.maximum(own_gain, 1e-300)
        tx_cap = self.max_tx_power_w / overhead
        noise_extra = noise + extra
        # Warm-started solves additionally accelerate the linear contraction
        # with a geometric (Aitken-style) extrapolation of the totals; cold
        # starts run the plain Yates iteration so their numerics stay
        # reproducible bit-for-bit.
        accelerate = initial_total_power_w is not None
        prev_delta: Optional[float] = None
        received = np.empty_like(gains)
        if accelerate and num_mobiles > 0:
            # Refine the warm guess with the direct active-set solve of the
            # (piecewise) linear fixed point; the Yates loop below then
            # typically certifies convergence within one or two iterations.
            totals = _reverse_direct_seed(
                gains=gains,
                serving=serving,
                connectable=connectable,
                coeff=np.where(connectable, q_fraction / own_gain_safe, 0.0),
                tx_cap=tx_cap,
                overhead=overhead,
                noise_extra=noise_extra,
                initial=totals,
            )

        for iteration in range(self.iterations):
            iterations_done = iteration + 1
            # Received FCH power needed at the serving cell so that
            # (pg / rate) * S / (L - S) = target  =>  S = (q / (1 + q)) * L.
            required_rx = q_fraction * totals[serving]
            new_tx = np.where(connectable, required_rx / own_gain_safe, 0.0)
            # Power limit applies to FCH plus pilot overhead.
            new_tx = np.minimum(new_tx, tx_cap)
            np.multiply(gains, (new_tx * overhead)[:, np.newaxis], out=received)
            new_totals = noise_extra + received.sum(axis=0)
            delta = (np.abs(new_totals - totals) / np.maximum(new_totals, 1e-300)).max()
            step = new_totals - totals
            tx, totals = new_tx, new_totals
            if delta < self.tolerance:
                break
            # Never extrapolate on the final iteration: a capped solve must
            # return a consistent (tx, totals) Yates pair, not a jumped total.
            if accelerate and iterations_done < self.iterations:
                if prev_delta is not None and delta < 0.95 * prev_delta:
                    # Contraction ratio r = delta/prev estimates the linear
                    # regime; jump the remaining geometric series r/(1-r)
                    # ahead, clamped to the physical noise floor.
                    ratio = delta / prev_delta
                    totals = np.maximum(
                        totals + step * (ratio / (1.0 - ratio)), noise_extra
                    )
                    prev_delta = None  # re-measure contraction after the jump
                else:
                    prev_delta = delta

        received = tx * own_gain
        interference = totals[serving] - received
        with np.errstate(divide="ignore", invalid="ignore"):
            achieved = np.where(
                active & (interference > 0.0),
                (self.processing_gain / rate)
                * received
                / np.maximum(interference, 1e-300),
                np.nan,
            )
        limited = active & (tx >= self.max_tx_power_w / overhead - 1e-12) & (
            achieved < self.ebio_target * (1.0 - 1e-6)
        )
        return PowerControlResult(
            tx_power_w=tx,
            total_power_w=totals,
            achieved_sir=achieved,
            power_limited=limited,
            iterations=iterations_done,
        )


class ForwardLinkPowerControl:
    """Forward-link (downlink) FCH power allocation.

    Parameters
    ----------
    processing_gain:
        FCH processing gain ``W / Rf``.
    ebio_target:
        FCH Eb/Io target (linear).
    orthogonality_factor:
        Fraction of the *own-cell* transmit power that appears as
        interference after despreading (0 = perfectly orthogonal downlink,
        1 = fully non-orthogonal).  Typical urban value ~0.6.
    mobile_noise_power_w:
        Thermal noise power at the mobile receiver.
    iterations / tolerance:
        Fixed-point iteration controls.
    """

    def __init__(
        self,
        processing_gain: float,
        ebio_target: float,
        orthogonality_factor: float = 0.6,
        mobile_noise_power_w: float = 1e-13,
        iterations: int = 30,
        tolerance: float = 1e-6,
    ) -> None:
        self.processing_gain = check_positive("processing_gain", processing_gain)
        self.ebio_target = check_positive("ebio_target", ebio_target)
        if not 0.0 <= orthogonality_factor <= 1.0:
            raise ValueError("orthogonality_factor must lie in [0, 1]")
        self.orthogonality_factor = float(orthogonality_factor)
        self.mobile_noise_power_w = check_positive(
            "mobile_noise_power_w", mobile_noise_power_w
        )
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self.iterations = int(iterations)
        self.tolerance = check_positive("tolerance", tolerance)

    def solve(
        self,
        gains: np.ndarray,
        active_set: np.ndarray,
        active: np.ndarray,
        base_power_w: np.ndarray,
        max_traffic_power_w: np.ndarray,
        extra_traffic_power_w: Optional[np.ndarray] = None,
        max_link_power_w: Optional[float] = None,
        rate_factor: Optional[np.ndarray] = None,
        initial_total_power_w: Optional[np.ndarray] = None,
    ) -> PowerControlResult:
        """Solve the forward-link power-allocation fixed point.

        Parameters
        ----------
        gains:
            Local-mean link gains, shape ``(J, K)``.
        active_set:
            Boolean FCH active-set membership, shape ``(J, K)``; the FCH power
            of a soft-hand-off user is split across its legs.
        active:
            Boolean mask of mobiles whose FCH currently carries traffic.
        base_power_w:
            Power of the always-on common channels per cell, shape ``(K,)``.
        max_traffic_power_w:
            Traffic-power budget per cell (``P_max`` minus overhead), shape
            ``(K,)``.
        extra_traffic_power_w:
            Already-committed traffic power per cell (granted forward SCH
            bursts), shape ``(K,)``.
        max_link_power_w:
            Optional cap on the FCH power of a single link (per leg); links
            that hit the cap show up as ``power_limited`` (forward-link
            outage for cell-edge users).
        rate_factor:
            Per-mobile dedicated-channel rate relative to the full-rate FCH;
            scales the per-link power requirement.
        initial_total_power_w:
            Optional warm start: total transmit power ``P_k`` per cell to
            seed the fixed-point iteration with (typically the previous
            frame's solution), shape ``(K,)``.  Converges to the same fixed
            point; cuts iterations on quasi-static frames.  Omitted = cold
            start from the common-channel floor.
        """
        gains = np.asarray(gains, dtype=float)
        num_mobiles, num_cells = gains.shape
        active_set = np.asarray(active_set, dtype=bool).reshape(num_mobiles, num_cells)
        active = np.asarray(active, dtype=bool).reshape(num_mobiles)
        base = np.asarray(base_power_w, dtype=float).reshape(num_cells)
        budget = np.asarray(max_traffic_power_w, dtype=float).reshape(num_cells)
        extra = (
            np.zeros(num_cells)
            if extra_traffic_power_w is None
            else np.asarray(extra_traffic_power_w, dtype=float).reshape(num_cells)
        )
        rate = (
            np.ones(num_mobiles)
            if rate_factor is None
            else np.asarray(rate_factor, dtype=float).reshape(num_mobiles)
        )
        if np.any(rate <= 0.0) or np.any(rate > 1.0):
            raise ValueError("rate_factor entries must lie in (0, 1]")

        legs = active_set.sum(axis=1)
        legs = np.maximum(legs, 1)
        alloc = np.zeros((num_mobiles, num_cells), dtype=float)
        if initial_total_power_w is None:
            totals = base + extra
        else:
            totals = np.asarray(initial_total_power_w, dtype=float).reshape(num_cells)
            if np.any(totals < 0.0):
                raise ValueError("initial_total_power_w must be non-negative")
        serving = np.argmax(np.where(active_set, gains, -np.inf), axis=1)
        iterations_done = 0
        q = self.ebio_target * rate / self.processing_gain
        # Loop invariants and reused iteration buffers.
        rows = np.arange(num_mobiles)
        allocatable = active_set & active[:, np.newaxis] & (gains > 0.0)
        gains_safe = np.maximum(gains, 1e-300)
        own_fraction = 1.0 - self.orthogonality_factor
        base_extra = base + extra
        received_all = np.empty_like(gains)
        # Same warm-start acceleration as the reverse link (see there).
        accelerate = initial_total_power_w is not None
        prev_delta: Optional[float] = None
        if accelerate and num_mobiles > 0:
            totals = _forward_direct_seed(
                gains=gains,
                serving=serving,
                allocatable=allocatable,
                q=q,
                legs=legs,
                own_fraction=own_fraction,
                mobile_noise_power_w=self.mobile_noise_power_w,
                base_extra=base_extra,
                budget=budget,
                extra=extra,
                max_link_power_w=max_link_power_w,
                initial=totals,
            )

        with np.errstate(divide="ignore"):
            for iteration in range(self.iterations):
                iterations_done = iteration + 1
                # Interference seen by each mobile: other-cell power fully,
                # own (strongest-leg) cell scaled by the orthogonality factor.
                np.multiply(gains, totals[np.newaxis, :], out=received_all)
                own = received_all[rows, serving]
                interference = (
                    received_all.sum(axis=1)
                    - own_fraction * own
                    + self.mobile_noise_power_w
                )
                required_rx = q * interference  # total received FCH power needed
                per_leg_rx = required_rx / legs
                new_alloc = np.where(
                    allocatable, per_leg_rx[:, np.newaxis] / gains_safe, 0.0
                )
                if max_link_power_w is not None:
                    np.minimum(new_alloc, max_link_power_w, out=new_alloc)
                traffic = new_alloc.sum(axis=0) + extra
                # If a cell exceeds its budget, scale its allocations down
                # proportionally (the overloaded users will show as power
                # limited).
                scale = np.where(
                    traffic > budget, budget / np.maximum(traffic, 1e-300), 1.0
                )
                new_alloc *= scale[np.newaxis, :]
                new_totals = base_extra + new_alloc.sum(axis=0)
                delta = (
                    np.abs(new_totals - totals) / np.maximum(new_totals, 1e-300)
                ).max()
                step = new_totals - totals
                alloc, totals = new_alloc, new_totals
                if delta < self.tolerance:
                    break
                # See the reverse link: no jump on the final iteration, so a
                # capped solve returns a consistent (alloc, totals) pair.
                if accelerate and iterations_done < self.iterations:
                    if prev_delta is not None and delta < 0.95 * prev_delta:
                        ratio = delta / prev_delta
                        totals = np.maximum(
                            totals + step * (ratio / (1.0 - ratio)), base_extra
                        )
                        prev_delta = None
                    else:
                        prev_delta = delta

        # Achieved Eb/Io with the final allocation.
        received_all = gains * totals[np.newaxis, :]
        own = received_all[rows, serving]
        interference = (
            received_all.sum(axis=1)
            - (1.0 - self.orthogonality_factor) * own
            + self.mobile_noise_power_w
        )
        received_fch = (alloc * gains).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            achieved = np.where(
                active,
                (self.processing_gain / rate)
                * received_fch
                / np.maximum(interference, 1e-300),
                np.nan,
            )
        # Outage definition: more than ~1.25 dB below the Eb/Io target.  Small
        # shortfalls caused by the proportional scaling of a momentarily
        # saturated cell are absorbed by the link margin and interleaving and
        # are not counted as coverage loss.
        limited = active & (achieved < 0.75 * self.ebio_target)
        return PowerControlResult(
            tx_power_w=alloc,
            total_power_w=totals,
            achieved_sir=achieved,
            power_limited=limited,
            iterations=iterations_done,
        )
