"""Forward-link power-budget and reverse-link interference bookkeeping.

These two snapshot dataclasses bundle exactly the quantities the measurement
sub-layer of the burst admission algorithm consumes (Figure 2 of the paper):

* forward link: the current cell loading ``P_k``, the per-mobile FCH forward
  power ``P_{j,k}``, and the traffic-power ceiling ``P_max`` of every cell;
* reverse link: the current received interference ``L_k``, the reverse pilot
  strengths ``t^{RL}_{j,k}`` from soft-hand-off cells, the forward pilot
  strengths ``t^{FL}_{j,k}`` reported in the SCRM message, the FCH-to-pilot
  power ratio ``xi_j`` and the interference ceiling ``L_max``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ForwardLinkLoad", "ReverseLinkLoad"]


@dataclass
class ForwardLinkLoad:
    """Forward-link loading snapshot (inputs of eqs. (6)–(8)).

    Attributes
    ----------
    max_traffic_power_w:
        ``P_max`` per cell: traffic-power ceiling, shape ``(K,)``.
    current_power_w:
        ``P_k`` per cell: currently committed transmit power (common channels
        + FCH allocations + already-granted SCH bursts), shape ``(K,)``.
    fch_power_w:
        ``P_{j,k}``: FCH forward power allocated to mobile ``j`` by cell
        ``k`` (0 when ``k`` is not serving the mobile), shape ``(J, K)``.
    """

    max_traffic_power_w: np.ndarray
    current_power_w: np.ndarray
    fch_power_w: np.ndarray

    def __post_init__(self) -> None:
        self.max_traffic_power_w = np.asarray(self.max_traffic_power_w, dtype=float)
        self.current_power_w = np.asarray(self.current_power_w, dtype=float)
        self.fch_power_w = np.asarray(self.fch_power_w, dtype=float)
        k = self.max_traffic_power_w.shape[0]
        if self.current_power_w.shape != (k,):
            raise ValueError("current_power_w must have one entry per cell")
        if self.fch_power_w.ndim != 2 or self.fch_power_w.shape[1] != k:
            raise ValueError("fch_power_w must have shape (num_mobiles, num_cells)")

    @property
    def num_cells(self) -> int:
        """Number of cells ``K``."""
        return self.max_traffic_power_w.shape[0]

    @property
    def num_mobiles(self) -> int:
        """Number of mobiles ``J``."""
        return self.fch_power_w.shape[0]

    def headroom_w(self) -> np.ndarray:
        """Available forward-link power per cell, ``max(P_max - P_k, 0)``."""
        return np.maximum(self.max_traffic_power_w - self.current_power_w, 0.0)

    def utilisation(self) -> np.ndarray:
        """Fraction of the traffic-power budget in use per cell."""
        return self.current_power_w / self.max_traffic_power_w


@dataclass
class ReverseLinkLoad:
    """Reverse-link loading snapshot (inputs of eqs. (9)–(18)).

    Attributes
    ----------
    max_interference_w:
        ``L_max`` per cell: received-interference ceiling, shape ``(K,)``.
    current_interference_w:
        ``L_k`` per cell: current total received power (noise + all users +
        granted reverse bursts), shape ``(K,)``.
    reverse_pilot_strength:
        ``t^{RL}_{j,k}``: reverse pilot Ec/Io of mobile ``j`` at cell ``k``,
        shape ``(J, K)``.
    forward_pilot_strength:
        ``t^{FL}_{j,k}``: forward pilot Ec/Io of cell ``k`` measured and
        reported by mobile ``j`` (SCRM content), shape ``(J, K)``.
    fch_pilot_power_ratio:
        ``xi_j``: FCH-to-pilot transmit power ratio per mobile, shape ``(J,)``.
    """

    max_interference_w: np.ndarray
    current_interference_w: np.ndarray
    reverse_pilot_strength: np.ndarray
    forward_pilot_strength: np.ndarray
    fch_pilot_power_ratio: np.ndarray

    def __post_init__(self) -> None:
        self.max_interference_w = np.asarray(self.max_interference_w, dtype=float)
        self.current_interference_w = np.asarray(
            self.current_interference_w, dtype=float
        )
        self.reverse_pilot_strength = np.asarray(self.reverse_pilot_strength, dtype=float)
        self.forward_pilot_strength = np.asarray(self.forward_pilot_strength, dtype=float)
        self.fch_pilot_power_ratio = np.asarray(self.fch_pilot_power_ratio, dtype=float)
        k = self.max_interference_w.shape[0]
        j = self.reverse_pilot_strength.shape[0]
        if self.current_interference_w.shape != (k,):
            raise ValueError("current_interference_w must have one entry per cell")
        if self.reverse_pilot_strength.shape != (j, k):
            raise ValueError("reverse_pilot_strength must have shape (J, K)")
        if self.forward_pilot_strength.shape != (j, k):
            raise ValueError("forward_pilot_strength must have shape (J, K)")
        if self.fch_pilot_power_ratio.shape != (j,):
            raise ValueError("fch_pilot_power_ratio must have one entry per mobile")

    @property
    def num_cells(self) -> int:
        """Number of cells ``K``."""
        return self.max_interference_w.shape[0]

    @property
    def num_mobiles(self) -> int:
        """Number of mobiles ``J``."""
        return self.reverse_pilot_strength.shape[0]

    def headroom_w(self) -> np.ndarray:
        """Available reverse-link interference margin per cell."""
        return np.maximum(self.max_interference_w - self.current_interference_w, 0.0)

    def rise_over_thermal_db(self, noise_power_w: np.ndarray) -> np.ndarray:
        """Current rise over thermal (dB) per cell given the noise floor."""
        noise = np.asarray(noise_power_w, dtype=float)
        return 10.0 * np.log10(self.current_interference_w / noise)
