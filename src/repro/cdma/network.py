"""The multi-cell wideband CDMA network.

:class:`CdmaNetwork` ties the substrate together: cell layout, link gains,
pilot measurements, soft hand-off, forward/reverse FCH power control and the
bookkeeping of granted SCH burst powers.  Its :meth:`CdmaNetwork.step` method
advances the radio network by one scheduling frame and produces a
:class:`NetworkSnapshot` containing every measurement the burst admission
layer needs (Figure 2 of the paper).
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cdma.entities import BaseStation, MobileStation, UserClass
from repro.cdma.handoff import ActiveSetState, SoftHandoffController
from repro.cdma.linkgain import LinkGainMap
from repro.cdma.loading import ForwardLinkLoad, ReverseLinkLoad
from repro.cdma.pilot import forward_pilot_ec_io, reverse_pilot_ec_io
from repro.cdma.powercontrol import (
    ForwardLinkPowerControl,
    PowerControlResult,
    ReverseLinkPowerControl,
)
from repro.channel.pathloss import LogDistancePathLoss
from repro.config import SystemConfig
from repro.geometry.hexgrid import HexagonalCellLayout
from repro.geometry.mobility import MobilityBatch

__all__ = ["CdmaNetwork", "NetworkSnapshot"]


@dataclass
class NetworkSnapshot:
    """Per-frame measurement snapshot consumed by the burst admission layer.

    Attributes
    ----------
    time_s:
        Simulation time of the snapshot.
    gains:
        Local-mean link gains, shape ``(J, K)``.
    forward_load / reverse_load:
        Loading snapshots (see :mod:`repro.cdma.loading`).
    handoff_states:
        Per-mobile soft hand-off state.
    serving_cells:
        Strongest-pilot cell per mobile.
    sch_mean_csi_forward / sch_mean_csi_reverse:
        Local-mean SCH symbol Es/Io per mobile on each link; drives the VTAOC
        average throughput ``delta_rho``.
    forward_pc / reverse_pc:
        Raw power-control results (achieved SIR, power-limited flags).
    active_set_matrix / reduced_active_set_matrix:
        Boolean soft-hand-off membership matrices, shape ``(J, K)``; consumed
        by the batched measurement kernels.  Optional: snapshots built by
        hand (tests, transcribed baselines) may omit them, in which case
        :meth:`active_membership` / :meth:`reduced_membership` materialise
        them from ``handoff_states`` on first use.
    """

    time_s: float
    gains: np.ndarray
    forward_load: ForwardLinkLoad
    reverse_load: ReverseLinkLoad
    handoff_states: Sequence[ActiveSetState]
    serving_cells: np.ndarray
    sch_mean_csi_forward: np.ndarray
    sch_mean_csi_reverse: np.ndarray
    forward_pc: PowerControlResult
    reverse_pc: PowerControlResult
    active_set_matrix: Optional[np.ndarray] = None
    reduced_active_set_matrix: Optional[np.ndarray] = None

    @property
    def num_mobiles(self) -> int:
        """Number of mobiles in the snapshot."""
        return self.gains.shape[0]

    @property
    def num_cells(self) -> int:
        """Number of cells in the snapshot."""
        return self.gains.shape[1]

    def _membership_from_states(self, reduced: bool) -> np.ndarray:
        out = np.zeros((len(self.handoff_states), self.num_cells), dtype=bool)
        for j, state in enumerate(self.handoff_states):
            cells = state.reduced_active_set if reduced else state.active_set
            out[j, list(cells)] = True
        out.flags.writeable = False
        return out

    def active_membership(self) -> np.ndarray:
        """Boolean FCH active-set membership, shape ``(J, K)``."""
        if self.active_set_matrix is None:
            self.active_set_matrix = self._membership_from_states(reduced=False)
        return self.active_set_matrix

    def reduced_membership(self) -> np.ndarray:
        """Boolean reduced-active-set (SCH legs) membership, shape ``(J, K)``."""
        if self.reduced_active_set_matrix is None:
            self.reduced_active_set_matrix = self._membership_from_states(reduced=True)
        return self.reduced_active_set_matrix

    def fch_outage_fraction(self) -> float:
        """Fraction of active FCH links that failed to reach their SIR target."""
        fwd = self.forward_pc.power_limited
        rev = self.reverse_pc.power_limited
        active = ~np.isnan(self.forward_pc.achieved_sir)
        if not np.any(active):
            return 0.0
        return float(np.mean((fwd | rev)[active]))


class CdmaNetwork:
    """Multi-cell CDMA radio network substrate.

    Parameters
    ----------
    config:
        System configuration (radio section drives this class).
    mobiles:
        The mobile stations (voice and data users).
    rng:
        Random generator for the propagation processes.
    layout:
        Optional pre-built cell layout (built from ``config`` when omitted).
    warm_start_power_control:
        Seed each frame's forward/reverse power-control fixed point with the
        previous frame's solution.  On quasi-static frames this cuts the
        Yates iterations substantially; the solution agrees with a cold
        start to within the solver tolerance (cold start stays the default
        so snapshot numerics are reproducible bit-for-bit across versions).
    mobility_fleet:
        Optional structure-of-arrays mobility back-end (e.g.
        :class:`repro.geometry.mobility.RandomDirectionFleet`) adopted
        instead of building a :class:`MobilityBatch` over the mobiles' model
        objects.  Must expose ``positions`` of shape ``(J, 2)`` (adopted as
        the network's position storage) and
        ``advance(dt_s, out_moved=...)``.  The mobiles' own ``mobility``
        models are then placement-only and never advanced by the network.

    Notes
    -----
    Per-frame state is kept in structure-of-arrays form: static per-cell
    vectors (common/pilot/noise power, traffic budget) are precomputed once,
    and the per-mobile FCH activity/rate arrays are maintained in place via
    write-through from :class:`MobileStation` attribute assignments, so a
    ``snapshot()`` never re-scans the Python entity objects.
    """

    def __init__(
        self,
        config: SystemConfig,
        mobiles: Sequence[MobileStation],
        rng: np.random.Generator,
        layout: Optional[HexagonalCellLayout] = None,
        warm_start_power_control: bool = False,
        mobility_fleet=None,
    ) -> None:
        self.config = config
        radio = config.radio
        self.layout = (
            layout
            if layout is not None
            else HexagonalCellLayout(
                num_rings=radio.num_rings,
                cell_radius_m=radio.cell_radius_m,
                wraparound=radio.wraparound,
            )
        )
        self.mobiles: List[MobileStation] = list(mobiles)
        self.base_stations: List[BaseStation] = [
            BaseStation(
                index=k,
                position=self.layout.position_of(k),
                max_tx_power_w=radio.bs_max_tx_power_w,
                common_channel_power_w=radio.bs_max_tx_power_w
                * radio.bs_common_channel_fraction,
                pilot_power_w=radio.bs_max_tx_power_w * radio.bs_pilot_fraction,
                noise_power_w=radio.bs_noise_power_w,
                max_rise_over_thermal_db=radio.max_rise_over_thermal_db,
            )
            for k in range(self.layout.num_cells)
        ]
        self.link_gains = LinkGainMap(
            layout=self.layout,
            num_mobiles=len(self.mobiles),
            rng=rng,
            path_loss=LogDistancePathLoss(
                exponent=radio.path_loss_exponent,
                reference_loss_db=radio.path_loss_reference_db,
                reference_distance_m=radio.path_loss_reference_distance_m,
            ),
            shadowing_std_db=radio.shadowing_std_db,
            decorrelation_distance_m=radio.shadowing_decorrelation_m,
            site_correlation=radio.shadowing_site_correlation,
            doppler_hz=radio.doppler_hz,
        )
        self.handoff = SoftHandoffController(
            num_mobiles=len(self.mobiles),
            add_threshold_db=radio.handoff_add_threshold_db,
            drop_threshold_db=radio.handoff_drop_threshold_db,
            max_active_set_size=radio.active_set_max_size,
            reduced_active_set_size=radio.reduced_active_set_size,
        )
        self.reverse_pc = ReverseLinkPowerControl(
            processing_gain=radio.fch_processing_gain,
            ebio_target=radio.fch_ebio_target,
            pilot_overhead=radio.reverse_pilot_overhead,
            max_tx_power_w=radio.ms_max_tx_power_w,
            iterations=radio.power_control_iterations,
            tolerance=radio.power_control_tolerance,
        )
        self.forward_pc = ForwardLinkPowerControl(
            processing_gain=radio.fch_processing_gain,
            ebio_target=radio.fch_ebio_target,
            orthogonality_factor=radio.orthogonality_factor,
            mobile_noise_power_w=radio.mobile_noise_power_w,
            iterations=radio.power_control_iterations,
            tolerance=radio.power_control_tolerance,
        )
        #: Committed SCH burst transmit power per cell (forward link), watts.
        self.forward_burst_power_w = np.zeros(self.num_cells)
        #: Committed SCH burst received power per cell (reverse link), watts.
        self.reverse_burst_power_w = np.zeros(self.num_cells)

        # -- structure-of-arrays state ------------------------------------------
        # Static per-cell vectors (base-station parameters never change after
        # construction): computed once instead of one list comprehension per
        # frame.
        bs = self.base_stations
        self._bs_common_power_w = np.asarray([b.common_channel_power_w for b in bs])
        self._bs_pilot_power_w = np.asarray([b.pilot_power_w for b in bs])
        self._bs_noise_power_w = np.asarray([b.noise_power_w for b in bs])
        self._bs_traffic_budget_w = np.asarray([b.max_traffic_power_w for b in bs])
        self._bs_max_reverse_interference_w = np.asarray(
            [b.max_reverse_interference_w for b in bs]
        )
        self._max_link_power_w = (
            radio.fch_max_power_fraction * self._bs_traffic_budget_w.min()
        )
        self._mobile_noise_power_w = radio.mobile_noise_power_w

        # Static per-mobile vectors.
        self._xi = np.asarray(
            [m.fch_pilot_power_ratio for m in self.mobiles], dtype=float
        )
        self._data_indices = np.asarray(
            [m.index for m in self.mobiles if m.user_class is UserClass.DATA],
            dtype=int,
        )
        self._voice_indices = np.asarray(
            [m.index for m in self.mobiles if m.user_class is UserClass.VOICE],
            dtype=int,
        )
        self._data_indices.flags.writeable = False
        self._voice_indices.flags.writeable = False

        # Dynamic per-mobile arrays, updated in place: FCH activity/rate via
        # write-through observers, positions by the batched mobility advance.
        num_mobiles = len(self.mobiles)
        self._fch_active = np.asarray(
            [m.fch_active for m in self.mobiles], dtype=bool
        ).reshape(num_mobiles)
        self._fch_rate = np.asarray(
            [m.fch_rate_factor for m in self.mobiles], dtype=float
        ).reshape(num_mobiles)
        # Keep our own sync callbacks addressable by row: the bulk writer
        # (set_fch_state) updates the arrays directly and only dispatches
        # observers foreign to this network.
        self._fch_sync_callbacks = []
        for row, mobile in enumerate(self.mobiles):
            sync = self._make_fch_sync(row)
            self._fch_sync_callbacks.append(sync)
            mobile._add_fch_observer(sync)
        if mobility_fleet is not None:
            if mobility_fleet.positions.shape != (num_mobiles, 2):
                raise ValueError(
                    "mobility_fleet.positions must have shape (num_mobiles, 2)"
                )
            self._mobility_batch = mobility_fleet
        else:
            self._mobility_batch = MobilityBatch(
                [m.mobility for m in self.mobiles],
                positions_out=np.zeros((num_mobiles, 2)),
            )
        self._positions_arr = self._mobility_batch.positions
        self._moved_buf = np.zeros(num_mobiles)
        #: Optional per-stage wall-time accumulator (seconds); when set to a
        #: dict, :meth:`advance` adds its mobility kernel time under
        #: ``"mobility"`` (used by the fleet benchmark harness).
        self.stage_times_s: Optional[dict] = None
        #: Optional :class:`repro.utils.hooks.SimHooks` observer; when set,
        #: :meth:`advance` reports the mobility kernel as a ``"mobility"``
        #: stage (enter/exit with wall time).  Assigned by the dynamic
        #: simulator so network stages join its hooked frame pipeline.
        self.hooks = None

        # Warm-start state for the power-control solvers.
        self.warm_start_power_control = bool(warm_start_power_control)
        self._prev_forward_totals: Optional[np.ndarray] = None
        self._prev_reverse_totals: Optional[np.ndarray] = None

        self._time_s = 0.0
        # Initialise positions/gains and hand-off from the starting locations.
        self.link_gains.set_positions(self._positions_arr)
        self._update_handoff()

    def _make_fch_sync(self, row: int):
        """Observer syncing one mobile's FCH fields into the network arrays.

        Holds only a weak reference to the network so mobiles reused across
        several networks (ablation sweeps) do not keep old instances alive.
        """
        net_ref = weakref.ref(self)

        def _sync(mobile: MobileStation, _row: int = row) -> bool:
            net = net_ref()
            if net is None:
                return False  # network collected: ask the mobile to prune us
            net._fch_active[_row] = mobile.fch_active
            net._fch_rate[_row] = mobile.fch_rate_factor
            return True

        return _sync

    # -- basic accessors ---------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Number of cells."""
        return self.layout.num_cells

    @property
    def num_mobiles(self) -> int:
        """Number of mobiles."""
        return len(self.mobiles)

    @property
    def time_s(self) -> float:
        """Current network time (advanced by :meth:`step`)."""
        return self._time_s

    def data_mobile_indices(self) -> np.ndarray:
        """Indices of the high-speed data users (cached; user classes are fixed)."""
        return self._data_indices

    def voice_mobile_indices(self) -> np.ndarray:
        """Indices of the voice users (cached; user classes are fixed)."""
        return self._voice_indices

    def _positions(self) -> np.ndarray:
        return self._positions_arr

    def _fch_active_mask(self) -> np.ndarray:
        return self._fch_active

    def _fch_rate_factors(self) -> np.ndarray:
        return self._fch_rate

    def set_fch_state(
        self, indices: np.ndarray, active: np.ndarray, rate_factor: np.ndarray
    ) -> None:
        """Bulk-update the FCH activity/rate of a subset of mobiles.

        Diffs the desired per-mobile state against the current arrays, writes
        the changed entries into this network's arrays in one vectorised
        assignment, and back-fills the :class:`MobileStation` entities with
        plain ``object.__setattr__`` — no observer dispatch — so the entity
        objects stay authoritative while a bulk transition (e.g. the first
        J=1e5 frame, where every mobile changes) costs two raw attribute
        stores per changed mobile instead of two observed writes.  Mobiles
        watched by *other* networks (ablation sweeps sharing entities) get
        one combined observer notification per changed mobile.  Used by the
        structure-of-arrays fleet path of the dynamic simulator.
        """
        indices = np.asarray(indices, dtype=int)
        active = np.asarray(active, dtype=bool)
        rate_factor = np.asarray(rate_factor, dtype=float)
        changed = (self._fch_active[indices] != active) | (
            self._fch_rate[indices] != rate_factor
        )
        changed_pos = np.flatnonzero(changed)
        if changed_pos.size == 0:
            return
        rows = indices[changed_pos]
        new_active = active[changed_pos]
        new_rate = rate_factor[changed_pos]
        # Vectorised write-through of this network's SoA state, then the
        # entity write-back with object.__setattr__ (skipping the per-write
        # observer dispatch of MobileStation.__setattr__ — our arrays are
        # already current).  Observers registered by *other* networks still
        # fire, once per changed mobile instead of once per field write.
        self._fch_active[rows] = new_active
        self._fch_rate[rows] = new_rate
        own = self._fch_sync_callbacks
        mobiles = self.mobiles
        set_attr = object.__setattr__
        for row, act, rate in zip(rows.tolist(), new_active.tolist(), new_rate.tolist()):
            mobile = mobiles[row]
            set_attr(mobile, "fch_active", act)
            set_attr(mobile, "fch_rate_factor", rate)
            observers = mobile.__dict__.get("_fch_observers")
            if observers and (len(observers) != 1 or observers[0] is not own[row]):
                mobile._notify_fch_observers()

    def _update_handoff(self) -> None:
        gains = self.link_gains.local_mean_gain()
        if gains.shape[0] == 0:
            return
        total_power = self._bs_common_power_w + self.forward_burst_power_w
        pilots = forward_pilot_ec_io(
            gains, total_power, self._bs_pilot_power_w, self._mobile_noise_power_w
        )
        self.handoff.update(pilots)

    # -- main frame update ----------------------------------------------------------
    def advance(self, dt_s: float) -> None:
        """Advance mobility, propagation and hand-off by ``dt_s`` seconds.

        Power control is *not* run here; call :meth:`snapshot` to obtain the
        measurements at the new state.  The update order is mobility →
        propagation → hand-off.
        """
        if dt_s < 0.0:
            raise ValueError("dt_s must be non-negative")
        hooks = self.hooks
        if self.stage_times_s is None and hooks is None:
            self._mobility_batch.advance(dt_s, out_moved=self._moved_buf)
        else:
            if hooks is not None:
                hooks.stage_enter("mobility", self._time_s)
            t0 = time.perf_counter()
            self._mobility_batch.advance(dt_s, out_moved=self._moved_buf)
            elapsed = time.perf_counter() - t0
            if self.stage_times_s is not None:
                self.stage_times_s["mobility"] = (
                    self.stage_times_s.get("mobility", 0.0) + elapsed
                )
            if hooks is not None:
                hooks.stage_exit("mobility", self._time_s, elapsed)
        if self.num_mobiles > 0:
            self.link_gains.advance(self._positions_arr, self._moved_buf, dt_s)
        self._time_s += dt_s
        self._update_handoff()

    def step(self, dt_s: float) -> NetworkSnapshot:
        """Advance the network by ``dt_s`` seconds and return the new snapshot.

        Convenience wrapper: :meth:`advance` followed by :meth:`snapshot`
        (mobility → propagation → hand-off → power control → measurements).
        """
        self.advance(dt_s)
        return self.snapshot()

    def snapshot(self) -> NetworkSnapshot:
        """Run power control at the current state and assemble the measurements."""
        radio = self.config.radio
        phy = self.config.phy
        gains = self.link_gains.local_mean_gain()
        num_mobiles, num_cells = gains.shape if gains.size else (0, self.num_cells)
        active = self._fch_active
        rate_factors = self._fch_rate
        active_set = self.handoff.active_set_matrix(self.num_cells)
        serving = (
            self.handoff.serving_cells()
            if num_mobiles > 0
            else np.zeros(0, dtype=int)
        )

        bs_common = self._bs_common_power_w
        bs_budget = self._bs_traffic_budget_w
        bs_noise = self._bs_noise_power_w
        bs_pilot = self._bs_pilot_power_w
        max_link_power = self._max_link_power_w
        warm = self.warm_start_power_control

        # -- reverse link FCH power control -------------------------------------
        reverse_result = self.reverse_pc.solve(
            gains=gains,
            serving_cells=serving,
            active=active,
            noise_power_w=bs_noise,
            extra_received_power_w=self.reverse_burst_power_w,
            rate_factor=rate_factors,
            initial_total_power_w=self._prev_reverse_totals if warm else None,
        )
        # -- forward link FCH power control -------------------------------------
        forward_result = self.forward_pc.solve(
            gains=gains,
            active_set=active_set,
            active=active,
            base_power_w=bs_common,
            max_traffic_power_w=bs_budget,
            extra_traffic_power_w=self.forward_burst_power_w,
            max_link_power_w=max_link_power,
            rate_factor=rate_factors,
            initial_total_power_w=self._prev_forward_totals if warm else None,
        )
        if warm:
            self._prev_reverse_totals = reverse_result.total_power_w.copy()
            self._prev_forward_totals = forward_result.total_power_w.copy()

        # -- pilot measurements ----------------------------------------------------
        forward_pilots = forward_pilot_ec_io(
            gains,
            forward_result.total_power_w,
            bs_pilot,
            self._mobile_noise_power_w,
        )
        xi = self._xi
        # The reverse pilot tracks the channel the way a *full-rate* FCH
        # would, so the burst measurements (eq. (10)) reconstruct the
        # full-rate FCH power from it regardless of the rate of the channel
        # currently held (DCCH vs FCH).
        fullrate_tx = np.where(
            active, reverse_result.tx_power_w / np.maximum(rate_factors, 1e-12), 0.0
        )
        mobile_pilot_tx = fullrate_tx / np.maximum(xi, 1e-12)
        reverse_pilots = reverse_pilot_ec_io(
            gains, mobile_pilot_tx, reverse_result.total_power_w
        )

        # -- loading snapshots ---------------------------------------------------------
        forward_traffic = (
            forward_result.total_power_w - bs_common
        )  # FCH allocations + committed bursts
        # Full-rate-equivalent FCH forward power per link (eq. (6) assumes the
        # measured P_{j,k} refers to a full-rate FCH).
        with np.errstate(divide="ignore", invalid="ignore"):
            fullrate_fch = forward_result.tx_power_w / np.maximum(
                rate_factors[:, np.newaxis], 1e-12
            )
        forward_load = ForwardLinkLoad(
            max_traffic_power_w=bs_budget,
            current_power_w=forward_traffic,
            fch_power_w=fullrate_fch,
        )
        l_max = self._bs_max_reverse_interference_w
        reverse_load = ReverseLinkLoad(
            max_interference_w=l_max,
            current_interference_w=reverse_result.total_power_w,
            reverse_pilot_strength=reverse_pilots,
            forward_pilot_strength=forward_pilots,
            fch_pilot_power_ratio=xi,
        )

        # -- SCH local-mean CSI per mobile -----------------------------------------------
        # A user whose FCH is exactly on target experiences the reference SCH
        # CSI; power-limited (cell-edge) users are scaled down proportionally.
        target = radio.fch_ebio_target
        with np.errstate(invalid="ignore"):
            fwd_quality = np.clip(
                np.nan_to_num(forward_result.achieved_sir / target, nan=1.0), 0.0, 1.0
            )
            rev_quality = np.clip(
                np.nan_to_num(reverse_result.achieved_sir / target, nan=1.0), 0.0, 1.0
            )
        sch_csi_forward = phy.sch_reference_csi * fwd_quality
        sch_csi_reverse = phy.sch_reference_csi * rev_quality

        return NetworkSnapshot(
            time_s=self._time_s,
            gains=gains,
            forward_load=forward_load,
            reverse_load=reverse_load,
            handoff_states=self.handoff.states,
            serving_cells=serving,
            sch_mean_csi_forward=sch_csi_forward,
            sch_mean_csi_reverse=sch_csi_reverse,
            forward_pc=forward_result,
            reverse_pc=reverse_result,
            active_set_matrix=active_set,
            reduced_active_set_matrix=self.handoff.reduced_active_set_matrix(
                self.num_cells
            ),
        )

    # -- burst power bookkeeping --------------------------------------------------------
    def commit_forward_burst_power(self, cell_index: int, power_w: float) -> None:
        """Reserve forward-link SCH power at ``cell_index`` for a granted burst."""
        if power_w < 0.0:
            raise ValueError("power_w must be non-negative")
        self.forward_burst_power_w[cell_index] += power_w

    def release_forward_burst_power(self, cell_index: int, power_w: float) -> None:
        """Release previously committed forward-link SCH power."""
        self.forward_burst_power_w[cell_index] = max(
            0.0, self.forward_burst_power_w[cell_index] - power_w
        )

    def commit_reverse_burst_power(self, cell_index: int, power_w: float) -> None:
        """Account the extra reverse-link received power of a granted burst."""
        if power_w < 0.0:
            raise ValueError("power_w must be non-negative")
        self.reverse_burst_power_w[cell_index] += power_w

    def release_reverse_burst_power(self, cell_index: int, power_w: float) -> None:
        """Release previously accounted reverse-link burst power."""
        self.reverse_burst_power_w[cell_index] = max(
            0.0, self.reverse_burst_power_w[cell_index] - power_w
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CdmaNetwork(cells={self.num_cells}, mobiles={self.num_mobiles}, "
            f"time={self._time_s:.3f} s)"
        )
