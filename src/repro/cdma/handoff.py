"""Soft hand-off: active set and reduced active set maintenance.

The FCH of a mobile may be in soft hand-off with several base stations (the
*active set*), governed by the usual pilot add/drop hysteresis.  The paper's
footnote 4 explains that the high-power SCH uses a *reduced active set*: "the
set of the 2 base stations with the strongest pilot Ec/Io and is a subset of
the active set of FCH".  The reduced-active-set size is configurable here so
experiment T3 can ablate it.

The controller keeps its state in structure-of-arrays form — one ``(J,
max_active_set_size)`` matrix of cell indices ordered by pilot strength
(padded with ``-1``) — so the per-frame update is a handful of array kernels
instead of a Python loop over mobiles.  The per-mobile
:class:`ActiveSetState` views consumed by the measurement sub-layer are
materialised lazily and cached between updates.
"""

from __future__ import annotations

from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import constants

__all__ = ["ActiveSetState", "SoftHandoffController"]


@dataclass
class ActiveSetState:
    """Hand-off state of one mobile.

    Attributes
    ----------
    active_set:
        Cell indices currently in the FCH active set (strongest pilot first).
    reduced_active_set:
        Subset of the active set used for the SCH (strongest pilots).
    serving_cell:
        The strongest-pilot cell (host cell of burst requests).
    """

    active_set: List[int] = field(default_factory=list)
    reduced_active_set: List[int] = field(default_factory=list)
    serving_cell: int = 0

    @property
    def in_soft_handoff(self) -> bool:
        """True when more than one cell is in the active set."""
        return len(self.active_set) > 1


class _LazyActiveSetStates(SequenceABC):
    """Read-only sequence materialising :class:`ActiveSetState` on demand.

    A network snapshot is taken every frame, but the per-mobile state
    objects are only consumed for the handful of users with pending burst
    requests — so the ``(J,)`` Python-object views are built lazily from
    the controller's index matrix (which is replaced, never mutated, on
    update, making the captured arrays a stable snapshot).
    """

    __slots__ = ("_ordered", "_count", "_reduced", "_cache")

    def __init__(self, ordered: np.ndarray, count: np.ndarray, reduced: int) -> None:
        self._ordered = ordered
        self._count = count
        self._reduced = reduced
        self._cache: dict = {}

    def __len__(self) -> int:
        return self._ordered.shape[0]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("mobile index out of range")
        state = self._cache.get(index)
        if state is None:
            members = [int(k) for k in self._ordered[index, : self._count[index]]]
            state = ActiveSetState(
                active_set=members,
                reduced_active_set=members[: self._reduced],
                serving_cell=members[0] if members else 0,
            )
            self._cache[index] = state
        return state


class SoftHandoffController:
    """Maintains active sets from forward pilot Ec/Io measurements.

    Parameters
    ----------
    num_mobiles:
        Number of mobiles tracked.
    add_threshold_db / drop_threshold_db:
        Pilot Ec/Io thresholds (T_ADD / T_DROP) in dB.  A pilot must exceed
        the add threshold to join the active set and is removed once it falls
        below the drop threshold (hysteresis: drop < add).
    max_active_set_size:
        Maximum number of cells in the FCH active set.
    reduced_active_set_size:
        Number of strongest cells retained for the SCH (2 in the paper).
    """

    def __init__(
        self,
        num_mobiles: int,
        add_threshold_db: float = constants.HANDOFF_ADD_THRESHOLD_DB,
        drop_threshold_db: float = constants.HANDOFF_DROP_THRESHOLD_DB,
        max_active_set_size: int = constants.ACTIVE_SET_MAX_SIZE,
        reduced_active_set_size: int = constants.REDUCED_ACTIVE_SET_SIZE,
    ) -> None:
        if num_mobiles < 0:
            raise ValueError("num_mobiles must be non-negative")
        if drop_threshold_db > add_threshold_db:
            raise ValueError("drop threshold must not exceed the add threshold")
        if max_active_set_size < 1:
            raise ValueError("max_active_set_size must be at least 1")
        if not 1 <= reduced_active_set_size <= max_active_set_size:
            raise ValueError(
                "reduced_active_set_size must lie in [1, max_active_set_size]"
            )
        self.num_mobiles = int(num_mobiles)
        self.add_threshold_db = float(add_threshold_db)
        self.drop_threshold_db = float(drop_threshold_db)
        self.max_active_set_size = int(max_active_set_size)
        self.reduced_active_set_size = int(reduced_active_set_size)
        # Ordered active-set members (strongest pilot first), -1 padded.
        self._ordered = np.full(
            (self.num_mobiles, self.max_active_set_size), -1, dtype=np.int64
        )
        self._count = np.zeros(self.num_mobiles, dtype=np.int64)
        self._states_cache: Optional[_LazyActiveSetStates] = None
        self._active_matrix_cache: Optional[Tuple[int, np.ndarray]] = None
        self._reduced_matrix_cache: Optional[Tuple[int, np.ndarray]] = None
        #: Count of hand-off events (active-set changes), for reporting.
        self.handoff_events = 0

    def _invalidate_caches(self) -> None:
        self._states_cache = None
        self._active_matrix_cache = None
        self._reduced_matrix_cache = None

    def state(self, mobile_index: int) -> ActiveSetState:
        """Hand-off state of mobile ``mobile_index``."""
        return self.states[mobile_index]

    @property
    def states(self) -> Sequence[ActiveSetState]:
        """All hand-off states (index = mobile index), materialised lazily."""
        if self._states_cache is None:
            self._states_cache = _LazyActiveSetStates(
                self._ordered, self._count, self.reduced_active_set_size
            )
        return self._states_cache

    def update(self, pilot_ec_io: np.ndarray) -> None:
        """Update every mobile's active set from pilot measurements.

        Parameters
        ----------
        pilot_ec_io:
            Forward pilot Ec/Io (linear), shape ``(num_mobiles, num_cells)``.
        """
        pilots = np.asarray(pilot_ec_io, dtype=float)
        if pilots.shape[0] != self.num_mobiles:
            raise ValueError("pilot matrix has the wrong number of mobiles")
        if self.num_mobiles == 0:
            return
        num_cells = pilots.shape[1]
        add_lin = 10.0 ** (self.add_threshold_db / 10.0)
        drop_lin = 10.0 ** (self.drop_threshold_db / 10.0)

        # A cell stays in the set while above the drop threshold and joins
        # when above the add threshold; the strongest cell is always kept so
        # the mobile stays connected even in a coverage hole (it will be in
        # outage, but the bookkeeping remains well-defined).
        member = self.active_set_matrix(num_cells)
        eligible = (member & (pilots >= drop_lin)) | (pilots >= add_lin)
        strongest = np.argmax(pilots, axis=1)
        orphaned = ~eligible.any(axis=1)
        if np.any(orphaned):
            eligible[orphaned, strongest[orphaned]] = True

        # Rank eligible cells by current pilot strength and keep the top
        # max_active_set_size of them, -1 padded.  Matches the per-mobile
        # reference loop for continuous pilot values; on *exactly* tied
        # pilots (measure zero under shadowing) ties resolve by lowest cell
        # index, where the reference loop's ordering was itself unspecified.
        score = np.where(eligible, pilots, -np.inf)
        width = min(self.max_active_set_size, num_cells)
        top = np.argsort(-score, axis=1, kind="stable")[:, :width]
        counts = np.minimum(eligible.sum(axis=1), self.max_active_set_size)
        new_ordered = np.full_like(self._ordered, -1)
        slots = np.arange(width)[np.newaxis, :]
        new_ordered[:, :width] = np.where(slots < counts[:, np.newaxis], top, -1)

        changed = (new_ordered != self._ordered).any(axis=1)
        self.handoff_events += int(np.count_nonzero(changed))
        self._ordered = new_ordered
        self._count = counts
        self._invalidate_caches()

    def active_set_matrix(self, num_cells: int) -> np.ndarray:
        """Boolean matrix ``(num_mobiles, num_cells)`` of FCH active-set membership."""
        cache = self._active_matrix_cache
        if cache is not None and cache[0] == num_cells:
            return cache[1]
        out = self._scatter_membership(self._ordered, num_cells)
        self._active_matrix_cache = (num_cells, out)
        return out

    def reduced_active_set_matrix(self, num_cells: int) -> np.ndarray:
        """Boolean matrix of *reduced* active-set membership (SCH legs)."""
        cache = self._reduced_matrix_cache
        if cache is not None and cache[0] == num_cells:
            return cache[1]
        out = self._scatter_membership(
            self._ordered[:, : self.reduced_active_set_size], num_cells
        )
        self._reduced_matrix_cache = (num_cells, out)
        return out

    @staticmethod
    def _scatter_membership(ordered: np.ndarray, num_cells: int) -> np.ndarray:
        out = np.zeros((ordered.shape[0], num_cells), dtype=bool)
        rows, slots = np.nonzero(ordered >= 0)
        out[rows, ordered[rows, slots]] = True
        # The matrix is cached and shared between per-frame consumers.
        out.flags.writeable = False
        return out

    def serving_cells(self) -> np.ndarray:
        """Serving (strongest-pilot) cell of each mobile."""
        return np.where(self._count > 0, self._ordered[:, 0], 0).astype(int)

    def soft_handoff_fraction(self) -> float:
        """Fraction of mobiles currently in soft hand-off."""
        if self.num_mobiles == 0:
            return 0.0
        return float(np.mean(self._count > 1))
