"""Soft hand-off: active set and reduced active set maintenance.

The FCH of a mobile may be in soft hand-off with several base stations (the
*active set*), governed by the usual pilot add/drop hysteresis.  The paper's
footnote 4 explains that the high-power SCH uses a *reduced active set*: "the
set of the 2 base stations with the strongest pilot Ec/Io and is a subset of
the active set of FCH".  The reduced-active-set size is configurable here so
experiment T3 can ablate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import constants
from repro.utils.units import linear_to_db

__all__ = ["ActiveSetState", "SoftHandoffController"]


@dataclass
class ActiveSetState:
    """Hand-off state of one mobile.

    Attributes
    ----------
    active_set:
        Cell indices currently in the FCH active set (strongest pilot first).
    reduced_active_set:
        Subset of the active set used for the SCH (strongest pilots).
    serving_cell:
        The strongest-pilot cell (host cell of burst requests).
    """

    active_set: List[int] = field(default_factory=list)
    reduced_active_set: List[int] = field(default_factory=list)
    serving_cell: int = 0

    @property
    def in_soft_handoff(self) -> bool:
        """True when more than one cell is in the active set."""
        return len(self.active_set) > 1


class SoftHandoffController:
    """Maintains active sets from forward pilot Ec/Io measurements.

    Parameters
    ----------
    num_mobiles:
        Number of mobiles tracked.
    add_threshold_db / drop_threshold_db:
        Pilot Ec/Io thresholds (T_ADD / T_DROP) in dB.  A pilot must exceed
        the add threshold to join the active set and is removed once it falls
        below the drop threshold (hysteresis: drop < add).
    max_active_set_size:
        Maximum number of cells in the FCH active set.
    reduced_active_set_size:
        Number of strongest cells retained for the SCH (2 in the paper).
    """

    def __init__(
        self,
        num_mobiles: int,
        add_threshold_db: float = constants.HANDOFF_ADD_THRESHOLD_DB,
        drop_threshold_db: float = constants.HANDOFF_DROP_THRESHOLD_DB,
        max_active_set_size: int = constants.ACTIVE_SET_MAX_SIZE,
        reduced_active_set_size: int = constants.REDUCED_ACTIVE_SET_SIZE,
    ) -> None:
        if num_mobiles < 0:
            raise ValueError("num_mobiles must be non-negative")
        if drop_threshold_db > add_threshold_db:
            raise ValueError("drop threshold must not exceed the add threshold")
        if max_active_set_size < 1:
            raise ValueError("max_active_set_size must be at least 1")
        if not 1 <= reduced_active_set_size <= max_active_set_size:
            raise ValueError(
                "reduced_active_set_size must lie in [1, max_active_set_size]"
            )
        self.num_mobiles = int(num_mobiles)
        self.add_threshold_db = float(add_threshold_db)
        self.drop_threshold_db = float(drop_threshold_db)
        self.max_active_set_size = int(max_active_set_size)
        self.reduced_active_set_size = int(reduced_active_set_size)
        self._states: List[ActiveSetState] = [
            ActiveSetState() for _ in range(self.num_mobiles)
        ]
        #: Count of hand-off events (active-set changes), for reporting.
        self.handoff_events = 0

    def state(self, mobile_index: int) -> ActiveSetState:
        """Hand-off state of mobile ``mobile_index``."""
        return self._states[mobile_index]

    @property
    def states(self) -> Sequence[ActiveSetState]:
        """All hand-off states (index = mobile index)."""
        return tuple(self._states)

    def update(self, pilot_ec_io: np.ndarray) -> None:
        """Update every mobile's active set from pilot measurements.

        Parameters
        ----------
        pilot_ec_io:
            Forward pilot Ec/Io (linear), shape ``(num_mobiles, num_cells)``.
        """
        pilots = np.asarray(pilot_ec_io, dtype=float)
        if pilots.shape[0] != self.num_mobiles:
            raise ValueError("pilot matrix has the wrong number of mobiles")
        add_lin = 10.0 ** (self.add_threshold_db / 10.0)
        drop_lin = 10.0 ** (self.drop_threshold_db / 10.0)

        for j in range(self.num_mobiles):
            row = pilots[j]
            state = self._states[j]
            previous = list(state.active_set)
            # Keep current members above the drop threshold.
            retained = [k for k in state.active_set if row[k] >= drop_lin]
            # Candidates above the add threshold, strongest first.
            order = np.argsort(row)[::-1]
            for k in order:
                k = int(k)
                if row[k] < add_lin:
                    break
                if k not in retained:
                    retained.append(k)
            if not retained:
                # Always keep at least the strongest cell so the mobile stays
                # connected even in a coverage hole (it will be in outage, but
                # the bookkeeping remains well-defined).
                retained = [int(order[0])]
            # Sort by pilot strength and truncate to the maximum size.
            retained.sort(key=lambda cell: -row[cell])
            retained = retained[: self.max_active_set_size]
            state.active_set = retained
            state.reduced_active_set = retained[: self.reduced_active_set_size]
            state.serving_cell = retained[0]
            if retained != previous:
                self.handoff_events += 1

    def active_set_matrix(self, num_cells: int) -> np.ndarray:
        """Boolean matrix ``(num_mobiles, num_cells)`` of FCH active-set membership."""
        out = np.zeros((self.num_mobiles, num_cells), dtype=bool)
        for j, state in enumerate(self._states):
            out[j, state.active_set] = True
        return out

    def reduced_active_set_matrix(self, num_cells: int) -> np.ndarray:
        """Boolean matrix of *reduced* active-set membership (SCH legs)."""
        out = np.zeros((self.num_mobiles, num_cells), dtype=bool)
        for j, state in enumerate(self._states):
            out[j, state.reduced_active_set] = True
        return out

    def serving_cells(self) -> np.ndarray:
        """Serving (strongest-pilot) cell of each mobile."""
        return np.asarray([s.serving_cell for s in self._states], dtype=int)

    def soft_handoff_fraction(self) -> float:
        """Fraction of mobiles currently in soft hand-off."""
        if not self._states:
            return 0.0
        return float(np.mean([s.in_soft_handoff for s in self._states]))
