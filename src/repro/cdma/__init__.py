"""Wideband CDMA multi-cell network substrate.

This package provides everything the burst admission layer measures and
controls (Section 3.1 of the paper):

* base stations and mobiles (:mod:`~repro.cdma.entities`),
* vectorised link gains combining path loss, correlated shadowing and fast
  fading for every mobile–cell pair (:mod:`~repro.cdma.linkgain`),
* pilot Ec/Io measurements (:mod:`~repro.cdma.pilot`),
* soft hand-off active sets and the *reduced* active set used by the SCH
  (:mod:`~repro.cdma.handoff`),
* SIR-based power control for the forward and reverse fundamental channels
  (:mod:`~repro.cdma.powercontrol`),
* forward-link power-budget and reverse-link interference bookkeeping
  (:mod:`~repro.cdma.loading`), and
* :class:`~repro.cdma.network.CdmaNetwork`, which assembles all of the above
  and exposes the measurement snapshots consumed by
  :mod:`repro.mac.measurement`.
"""

from repro.cdma.entities import BaseStation, MobileStation, UserClass
from repro.cdma.linkgain import LinkGainMap
from repro.cdma.pilot import forward_pilot_ec_io, reverse_pilot_ec_io
from repro.cdma.handoff import SoftHandoffController, ActiveSetState
from repro.cdma.powercontrol import (
    ReverseLinkPowerControl,
    ForwardLinkPowerControl,
    PowerControlResult,
)
from repro.cdma.loading import ForwardLinkLoad, ReverseLinkLoad
from repro.cdma.network import CdmaNetwork, NetworkSnapshot

__all__ = [
    "BaseStation",
    "MobileStation",
    "UserClass",
    "LinkGainMap",
    "forward_pilot_ec_io",
    "reverse_pilot_ec_io",
    "SoftHandoffController",
    "ActiveSetState",
    "ReverseLinkPowerControl",
    "ForwardLinkPowerControl",
    "PowerControlResult",
    "ForwardLinkLoad",
    "ReverseLinkLoad",
    "CdmaNetwork",
    "NetworkSnapshot",
]
