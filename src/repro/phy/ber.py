"""Bit-error-rate models for the adaptive and fixed-rate physical layers.

The paper relies on the VTAOC analysis of refs. [3] and [7] for the exact
error-probability expressions; those papers use orthogonal coding and
modulation over Rayleigh fading channels.  For the reproduction we need a BER
model with three properties (see DESIGN.md §5):

1. monotonically decreasing in the symbol energy-to-interference ratio
   ``gamma``;
2. monotonically increasing in the per-symbol information load of the mode
   (more bits per symbol ⇒ more required energy), so that the constant-BER
   adaptation thresholds are increasing across modes;
3. invertible, so the thresholds can be computed in closed form.

Two models are provided:

* :func:`ber_adaptive_mode` — the exponential adaptive-modulation
  approximation ``Pb ≈ 0.2 * exp(-1.5 * gamma / (2**b - 1))`` (Chung &
  Goldsmith), optionally shifted by a coding gain; this is the default model
  used by :class:`repro.phy.vtaoc.VtaocCodec` because it is closed-form
  invertible.
* :func:`ber_orthogonal_union` — the union bound for coherent M-ary
  orthogonal signalling, ``Pb ≈ (M/2) * Q(sqrt(gamma))``; used in tests to
  check that the qualitative conclusions do not depend on the BER model.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np
from scipy import special

from repro.utils.validation import check_positive

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "q_function",
    "inverse_q_function",
    "ber_adaptive_mode",
    "required_csi_adaptive_mode",
    "ber_orthogonal_union",
    "required_csi_orthogonal_union",
]

#: Prefactor of the exponential BER approximation.
_BER_PREFACTOR = 0.2
#: Slope factor of the exponential BER approximation.
_BER_SLOPE = 1.5


def q_function(x: ArrayLike) -> ArrayLike:
    """Gaussian tail probability ``Q(x) = P(N(0,1) > x)``."""
    out = 0.5 * special.erfc(np.asarray(x, dtype=float) / math.sqrt(2.0))
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(out)
    return out


def inverse_q_function(p: ArrayLike) -> ArrayLike:
    """Inverse of :func:`q_function` for ``p`` in (0, 1)."""
    arr = np.asarray(p, dtype=float)
    if np.any((arr <= 0.0) | (arr >= 1.0)):
        raise ValueError("inverse_q_function requires p in (0, 1)")
    out = math.sqrt(2.0) * special.erfcinv(2.0 * arr)
    if np.isscalar(p) or np.ndim(p) == 0:
        return float(out)
    return out


def _coding_gain_linear(coding_gain_db: float) -> float:
    return 10.0 ** (coding_gain_db / 10.0)


def ber_adaptive_mode(
    gamma: ArrayLike, bits_per_symbol: float, coding_gain_db: float = 0.0
) -> ArrayLike:
    """BER of an adaptive mode carrying ``bits_per_symbol`` at CSI ``gamma``.

    ``Pb = min(0.5, 0.2 * exp(-1.5 * G * gamma / (2**b - 1)))`` where ``G`` is
    the linear coding gain.  ``gamma`` is the instantaneous symbol
    energy-to-interference ratio (linear).
    """
    check_positive("bits_per_symbol", bits_per_symbol)
    g = _coding_gain_linear(coding_gain_db)
    gam = np.asarray(gamma, dtype=float)
    if np.any(gam < 0.0):
        raise ValueError("gamma must be non-negative")
    denom = 2.0 ** bits_per_symbol - 1.0
    pb = _BER_PREFACTOR * np.exp(-_BER_SLOPE * g * gam / denom)
    pb = np.minimum(pb, 0.5)
    if np.isscalar(gamma) or np.ndim(gamma) == 0:
        return float(pb)
    return pb


def required_csi_adaptive_mode(
    target_ber: float, bits_per_symbol: float, coding_gain_db: float = 0.0
) -> float:
    """Minimum CSI at which the mode meets ``target_ber`` (inverse of the BER).

    This is the constant-BER adaptation threshold of the mode.
    """
    if not 0.0 < target_ber < _BER_PREFACTOR:
        raise ValueError(
            f"target_ber must lie in (0, {_BER_PREFACTOR}) for the exponential model"
        )
    check_positive("bits_per_symbol", bits_per_symbol)
    g = _coding_gain_linear(coding_gain_db)
    denom = 2.0 ** bits_per_symbol - 1.0
    return float(-math.log(target_ber / _BER_PREFACTOR) * denom / (_BER_SLOPE * g))


def ber_orthogonal_union(gamma: ArrayLike, order: int) -> ArrayLike:
    """Union-bound BER of coherent ``order``-ary orthogonal signalling.

    ``Ps <= (M - 1) * Q(sqrt(gamma))`` and ``Pb = Ps * (M/2) / (M - 1)``,
    clipped to 0.5.  ``gamma`` is the symbol energy-to-interference ratio.
    """
    if order < 2 or (order & (order - 1)) != 0:
        raise ValueError("order must be a power of two >= 2")
    gam = np.asarray(gamma, dtype=float)
    if np.any(gam < 0.0):
        raise ValueError("gamma must be non-negative")
    pb = (order / 2.0) * q_function(np.sqrt(gam))
    pb = np.minimum(pb, 0.5)
    if np.isscalar(gamma) or np.ndim(gamma) == 0:
        return float(pb)
    return pb


def required_csi_orthogonal_union(target_ber: float, order: int) -> float:
    """Minimum symbol CSI meeting ``target_ber`` under the union-bound model."""
    if not 0.0 < target_ber < 0.5:
        raise ValueError("target_ber must lie in (0, 0.5)")
    if order < 2 or (order & (order - 1)) != 0:
        raise ValueError("order must be a power of two >= 2")
    p_arg = 2.0 * target_ber / order
    if p_arg >= 1.0:
        return 0.0
    x = inverse_q_function(p_arg)
    return float(x * x)
