"""Constant-BER adaptation thresholds for the VTAOC scheme.

"In this paper, it is assumed that the VTAOC scheme is operated in the
constant BER mode.  That is, the adaptation thresholds are set optimally to
maintain a target transmission error level over a range of CSI values."
(Section 2.2 of the paper.)

Mode ``q`` is used when the CSI lies in ``[zeta_q, zeta_{q+1})``; below
``zeta_1`` no transmission takes place (mode 0).  With a BER that is
monotonically decreasing in CSI, the *optimal* constant-BER threshold of mode
``q`` is simply the smallest CSI at which the mode still meets the target
BER — which is what :func:`threshold_for_mode` computes by inverting the BER
model of :mod:`repro.phy.ber`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.phy.ber import required_csi_adaptive_mode
from repro.phy.modes import ModeTable

__all__ = ["threshold_for_mode", "constant_ber_thresholds"]


def threshold_for_mode(
    bits_per_symbol: float, target_ber: float, coding_gain_db: float = 0.0
) -> float:
    """Adaptation threshold (linear CSI) of a mode with ``bits_per_symbol``.

    The threshold is the smallest CSI for which the mode's BER does not
    exceed ``target_ber``.
    """
    return required_csi_adaptive_mode(target_ber, bits_per_symbol, coding_gain_db)


def constant_ber_thresholds(
    table: ModeTable, target_ber: float, coding_gain_db: float = 0.0
) -> np.ndarray:
    """Thresholds ``[zeta_1, ..., zeta_Q]`` for every mode in ``table``.

    The returned array is strictly increasing (guaranteed by the strictly
    increasing ``bits_per_symbol`` of a valid :class:`ModeTable`).
    """
    thresholds: List[float] = [
        threshold_for_mode(mode.bits_per_symbol, target_ber, coding_gain_db)
        for mode in table
    ]
    arr = np.asarray(thresholds, dtype=float)
    if np.any(np.diff(arr) <= 0.0):  # pragma: no cover - defensive
        raise RuntimeError("thresholds are not strictly increasing")
    return arr
