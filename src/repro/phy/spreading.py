"""Spreading-stage relations between FCH and SCH (eqs. (2), (4), (5)).

In cdma2000 high-speed data transmission is supported by a *supplemental
channel* (SCH) whose spreading gain is reduced by an integer factor ``m``
relative to the *fundamental channel* (FCH).  Together with the higher
average throughput ``delta_rho`` of the adaptive VTAOC coding, the relative
SCH bit rate is (eq. (4))

``Rs / Rf = delta_rho * m``

and the required SCH transmit power relative to the FCH is (eq. (5))

``Xs / Xf = m * gamma_s``

where ``gamma_s`` is the relative symbol energy-to-interference ratio needed
by the SCH, a constant depending only on the FCH/SCH error targets and the
FCH throughput (it does not depend on the local-mean CSI or the SCH rate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

__all__ = [
    "processing_gain",
    "sch_relative_bit_rate",
    "sch_bit_rate",
    "sch_power_ratio",
    "relative_symbol_energy_ratio",
    "SpreadingConfig",
]


def processing_gain(bandwidth_hz: float, bit_rate_bps: float) -> float:
    """Overall processing gain ``beta = W / Rb`` (eq. (2))."""
    check_positive("bandwidth_hz", bandwidth_hz)
    check_positive("bit_rate_bps", bit_rate_bps)
    return bandwidth_hz / bit_rate_bps


def sch_relative_bit_rate(m: int, delta_rho: float) -> float:
    """Relative SCH bit rate ``Rs/Rf = delta_rho * m`` (eq. (4)).

    ``m`` is the ratio of the FCH spreading gain to the SCH spreading gain;
    ``m = 0`` means the burst request is rejected (rate 0).
    """
    if m < 0:
        raise ValueError("m must be non-negative")
    check_non_negative("delta_rho", delta_rho)
    return float(m) * delta_rho


def sch_bit_rate(m: int, delta_rho: float, fch_bit_rate_bps: float) -> float:
    """Absolute SCH bit rate in bit/s."""
    check_positive("fch_bit_rate_bps", fch_bit_rate_bps)
    return sch_relative_bit_rate(m, delta_rho) * fch_bit_rate_bps


def sch_power_ratio(m: int, gamma_s: float) -> float:
    """Required SCH-to-FCH transmit power ratio ``Xs/Xf = m * gamma_s`` (eq. (5))."""
    if m < 0:
        raise ValueError("m must be non-negative")
    check_non_negative("gamma_s", gamma_s)
    return float(m) * gamma_s


def relative_symbol_energy_ratio(
    sch_es_io_target: float, fch_es_io_target: float
) -> float:
    """The constant ``gamma_s``: SCH over FCH required symbol energy ratio.

    The paper notes gamma_s "is a fixed parameter which is dependent only on
    the target error levels of the FCH and SCH as well as the FCH throughput";
    we expose it as the ratio of the two (linear) symbol-level targets.
    """
    check_positive("sch_es_io_target", sch_es_io_target)
    check_positive("fch_es_io_target", fch_es_io_target)
    return sch_es_io_target / fch_es_io_target


@dataclass(frozen=True)
class SpreadingConfig:
    """Numerology of the spreading stage shared by FCH and SCH.

    Attributes
    ----------
    bandwidth_hz:
        System bandwidth ``W``.
    chip_rate_hz:
        PN chip rate.
    fch_bit_rate_bps:
        Fixed FCH information bit rate ``Rf``.
    fch_throughput:
        Fixed FCH throughput ``rho_f`` (information bits per modulation
        symbol of the FCH's fixed-rate code).
    max_spreading_gain_ratio:
        Maximum value of ``m`` (``M`` in the paper).
    gamma_s:
        Relative SCH/FCH symbol energy-to-interference requirement.
    """

    bandwidth_hz: float = constants.SYSTEM_BANDWIDTH_HZ
    chip_rate_hz: float = constants.CHIP_RATE_HZ
    fch_bit_rate_bps: float = constants.FCH_BIT_RATE_BPS
    fch_throughput: float = 1.0
    max_spreading_gain_ratio: int = constants.MAX_SPREADING_GAIN_RATIO
    gamma_s: float = 1.0

    def __post_init__(self) -> None:
        check_positive("bandwidth_hz", self.bandwidth_hz)
        check_positive("chip_rate_hz", self.chip_rate_hz)
        check_positive("fch_bit_rate_bps", self.fch_bit_rate_bps)
        check_positive("fch_throughput", self.fch_throughput)
        check_positive_int("max_spreading_gain_ratio", self.max_spreading_gain_ratio)
        check_positive("gamma_s", self.gamma_s)

    @property
    def fch_processing_gain(self) -> float:
        """Overall FCH processing gain ``W / Rf``."""
        return processing_gain(self.bandwidth_hz, self.fch_bit_rate_bps)

    def sch_bit_rate(self, m: int, delta_rho: float) -> float:
        """SCH bit rate for spreading-gain ratio ``m`` and relative throughput."""
        return sch_bit_rate(m, delta_rho, self.fch_bit_rate_bps)

    def sch_power_ratio(self, m: int) -> float:
        """SCH/FCH power ratio for spreading-gain ratio ``m`` (eq. (5))."""
        return sch_power_ratio(m, self.gamma_s)

    def max_sch_bit_rate(self, delta_rho: float) -> float:
        """Highest SCH bit rate reachable with the configured ``M``."""
        return self.sch_bit_rate(self.max_spreading_gain_ratio, delta_rho)
