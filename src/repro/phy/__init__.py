"""Variable-throughput adaptive physical layer (Section 2.2 of the paper).

The physical layer consists of two stages (Figure 1(a) of the paper):

* an **adaptive coding stage** — the variable-throughput adaptive orthogonal
  coding scheme (VTAOC) selects one of several transmission modes per symbol
  based on the CSI fed back from the receiver; the adaptation thresholds are
  set to keep the bit error rate at a constant target ("constant BER mode"),
  so the penalty for a bad channel is reduced throughput rather than
  increased error rate;
* a **spreading stage** — the coded symbols are spread by a PN sequence; the
  supplemental channel (SCH) attains its high bit rate through a reduced
  spreading gain (factor ``m``) and the higher average throughput of the
  VTAOC (eqs. (2), (4), (5)).

Public API
----------
:class:`~repro.phy.modes.TransmissionMode` / :class:`~repro.phy.modes.ModeTable`
    The mode family (throughput per mode).
:class:`~repro.phy.vtaoc.VtaocCodec`
    Adaptive codec: mode selection, instantaneous and average throughput.
:class:`~repro.phy.fixedrate.FixedRatePhy`
    Non-adaptive baseline used in experiment F1.
:mod:`~repro.phy.spreading`
    FCH/SCH spreading-gain and power-ratio relations.
"""

from repro.phy.ber import q_function, ber_adaptive_mode, ber_orthogonal_union
from repro.phy.modes import TransmissionMode, ModeTable
from repro.phy.thresholds import constant_ber_thresholds, threshold_for_mode
from repro.phy.vtaoc import VtaocCodec, instantaneous_csi
from repro.phy.fixedrate import FixedRatePhy
from repro.phy.spreading import (
    SpreadingConfig,
    processing_gain,
    sch_relative_bit_rate,
    sch_power_ratio,
)

__all__ = [
    "q_function",
    "ber_adaptive_mode",
    "ber_orthogonal_union",
    "TransmissionMode",
    "ModeTable",
    "constant_ber_thresholds",
    "threshold_for_mode",
    "VtaocCodec",
    "instantaneous_csi",
    "FixedRatePhy",
    "SpreadingConfig",
    "processing_gain",
    "sch_relative_bit_rate",
    "sch_power_ratio",
]
