"""Fixed-throughput (non-adaptive) physical layer baseline.

"Traditional physical layer delivers a constant throughput in that the amount
of error protection incorporated into a packet is fixed without regard to the
time varying channel condition." (Section 1 of the paper.)

The baseline transmits a single fixed mode at all times.  Under fast fading
the error rate is no longer constant; we account for this in the *effective*
(goodput) throughput by discarding symbols whose instantaneous CSI falls
below the mode's constant-BER threshold (they would fail the target error
level and the corresponding frames would be lost / retransmitted).  This is
the conventional outage-based comparison used by the adaptive-modulation
literature the paper cites ([3]).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro import constants
from repro.phy.ber import ber_adaptive_mode, required_csi_adaptive_mode
from repro.phy.modes import ModeTable, TransmissionMode
from repro.utils.validation import check_non_negative

ArrayLike = Union[float, np.ndarray]

__all__ = ["FixedRatePhy"]


class FixedRatePhy:
    """Non-adaptive physical layer transmitting a single fixed mode.

    Parameters
    ----------
    mode:
        The fixed transmission mode.
    target_ber:
        Error-rate target used to define the outage threshold.
    coding_gain_db:
        Coding gain of the error-protection code, in dB.
    """

    def __init__(
        self,
        mode: TransmissionMode,
        target_ber: float = constants.TARGET_BER,
        coding_gain_db: float = 0.0,
    ) -> None:
        self.mode = mode
        if not 0.0 < target_ber < 0.2:
            raise ValueError("target_ber must lie in (0, 0.2)")
        self.target_ber = float(target_ber)
        self.coding_gain_db = float(coding_gain_db)
        self._threshold = required_csi_adaptive_mode(
            self.target_ber, mode.bits_per_symbol, self.coding_gain_db
        )

    @property
    def threshold(self) -> float:
        """Outage threshold: minimum CSI at which the target BER is met."""
        return self._threshold

    @property
    def nominal_throughput(self) -> float:
        """Throughput when the channel is good enough (bits per symbol)."""
        return self.mode.throughput

    def instantaneous_throughput(self, csi: ArrayLike) -> ArrayLike:
        """Effective throughput at instantaneous CSI ``csi``.

        Equals the nominal throughput when the CSI meets the outage threshold
        and 0 otherwise (frame lost).
        """
        gam = np.asarray(csi, dtype=float)
        if np.any(gam < 0.0):
            raise ValueError("csi must be non-negative")
        out = np.where(gam >= self._threshold, self.mode.throughput, 0.0)
        if np.ndim(csi) == 0:
            return float(out)
        return out

    def ber(self, csi: float) -> float:
        """Raw (pre-outage) BER of the fixed mode at CSI ``csi``."""
        check_non_negative("csi", csi)
        return float(
            ber_adaptive_mode(csi, self.mode.bits_per_symbol, self.coding_gain_db)
        )

    def average_throughput(self, mean_csi: ArrayLike) -> ArrayLike:
        """Average effective throughput under Rayleigh fading at ``mean_csi``."""
        mean = np.atleast_1d(np.asarray(mean_csi, dtype=float))
        if np.any(mean < 0.0):
            raise ValueError("mean_csi must be non-negative")
        out = np.zeros_like(mean)
        positive = mean > 0.0
        out[positive] = self.mode.throughput * np.exp(
            -self._threshold / mean[positive]
        )
        if np.ndim(mean_csi) == 0:
            return float(out[0])
        return out

    def outage_probability(self, mean_csi: float) -> float:
        """Probability that the fixed mode misses the target BER."""
        check_non_negative("mean_csi", mean_csi)
        if mean_csi == 0.0:
            return 1.0
        return float(1.0 - np.exp(-self._threshold / mean_csi))

    @classmethod
    def design_for_mean_csi(
        cls,
        mean_csi: float,
        mode_table: Optional[ModeTable] = None,
        target_ber: float = constants.TARGET_BER,
        coding_gain_db: float = 0.0,
    ) -> "FixedRatePhy":
        """Pick the fixed mode with the best *average* throughput at ``mean_csi``.

        This is the strongest possible fixed-rate competitor: for each
        candidate mode the expected goodput under Rayleigh fading is computed
        and the best mode is selected.  Experiment F1 uses this design rule so
        the adaptive gain is not exaggerated by a strawman baseline.
        """
        check_non_negative("mean_csi", mean_csi)
        table = mode_table if mode_table is not None else ModeTable.default()
        best: Optional[FixedRatePhy] = None
        best_throughput = -1.0
        for mode in table:
            candidate = cls(mode, target_ber=target_ber, coding_gain_db=coding_gain_db)
            throughput = candidate.average_throughput(mean_csi)
            if throughput > best_throughput:
                best = candidate
                best_throughput = float(throughput)
        assert best is not None
        return best
