"""The VTAOC adaptive codec (Section 2.2 of the paper).

The codec maps the fed-back CSI to a transmission mode and hence to an
instantaneous throughput, and — crucially for the burst admission layer —
provides the *average* throughput as a function of the local-mean CSI.  The
paper uses exactly this split: "the fast fading component (Xl) is handled by
the VTAOC system while the offered SCH bit rate (short-term average), Rs, is
varying in accordance with the local mean CSI (Es)".

Eq. (3) of the paper defines the instantaneous CSI as the product of the fast
fading power gain and the short-term average symbol energy-to-interference
ratio; :func:`instantaneous_csi` implements it.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro import constants
from repro.phy.ber import ber_adaptive_mode
from repro.phy.modes import ModeTable
from repro.phy.thresholds import constant_ber_thresholds
from repro.utils.validation import check_non_negative, check_positive

ArrayLike = Union[float, np.ndarray]

__all__ = ["instantaneous_csi", "VtaocCodec"]


def instantaneous_csi(fading_power_gain: ArrayLike, mean_csi: ArrayLike) -> ArrayLike:
    """Instantaneous symbol energy-to-interference ratio (eq. (3)).

    ``gamma = Xl * E`` where ``Xl`` is the fast-fading power gain (unit mean)
    and ``E`` the short-term average symbol energy-to-interference ratio.
    """
    fade = np.asarray(fading_power_gain, dtype=float)
    mean = np.asarray(mean_csi, dtype=float)
    if np.any(fade < 0.0) or np.any(mean < 0.0):
        raise ValueError("fading gain and mean CSI must be non-negative")
    out = fade * mean
    if np.ndim(out) == 0:
        return float(out)
    return out


class VtaocCodec:
    """Variable-throughput adaptive orthogonal coding/modulation codec.

    Parameters
    ----------
    mode_table:
        The available transmission modes; defaults to the 6-mode table.
    target_ber:
        Target bit error rate of the constant-BER adaptation.
    coding_gain_db:
        Additional coding gain of the orthogonal coding stage, in dB; shifts
        all thresholds down by the same factor.

    Notes
    -----
    *Mode 0* denotes "no transmission" (outage): it is selected when the CSI
    lies below the threshold of the most-protected mode.
    """

    def __init__(
        self,
        mode_table: Optional[ModeTable] = None,
        target_ber: float = constants.TARGET_BER,
        coding_gain_db: float = 0.0,
    ) -> None:
        self.mode_table = mode_table if mode_table is not None else ModeTable.default()
        if not 0.0 < target_ber < 0.2:
            raise ValueError("target_ber must lie in (0, 0.2)")
        self.target_ber = float(target_ber)
        self.coding_gain_db = float(coding_gain_db)
        self._thresholds = constant_ber_thresholds(
            self.mode_table, self.target_ber, self.coding_gain_db
        )
        self._throughputs = np.asarray(self.mode_table.throughputs(), dtype=float)

    # -- basic properties -----------------------------------------------------
    @property
    def num_modes(self) -> int:
        """Number of transmission modes (excluding the outage mode)."""
        return len(self.mode_table)

    @property
    def thresholds(self) -> np.ndarray:
        """Adaptation thresholds ``[zeta_1, ..., zeta_Q]`` (linear CSI)."""
        return self._thresholds.copy()

    @property
    def max_throughput(self) -> float:
        """Throughput of the highest mode (bits per symbol)."""
        return float(self._throughputs[-1])

    # -- per-symbol operation ---------------------------------------------------
    def select_mode(self, csi: float) -> int:
        """Return the mode index used at CSI ``csi`` (0 = no transmission)."""
        check_non_negative("csi", csi)
        idx = int(np.searchsorted(self._thresholds, csi, side="right"))
        return idx

    def instantaneous_throughput(self, csi: ArrayLike) -> ArrayLike:
        """Throughput (bits/symbol) offered at instantaneous CSI ``csi``."""
        gam = np.asarray(csi, dtype=float)
        if np.any(gam < 0.0):
            raise ValueError("csi must be non-negative")
        idx = np.searchsorted(self._thresholds, gam, side="right")
        padded = np.concatenate(([0.0], self._throughputs))
        out = padded[idx]
        if np.ndim(csi) == 0:
            return float(out)
        return out

    def ber(self, csi: float) -> float:
        """BER experienced at instantaneous CSI ``csi`` with the selected mode.

        Returns 0 for the outage mode (nothing is transmitted, nothing can be
        in error); by the constant-BER construction the returned value never
        exceeds the target BER for csi >= zeta_1.
        """
        mode_idx = self.select_mode(csi)
        if mode_idx == 0:
            return 0.0
        mode = self.mode_table[mode_idx]
        return float(
            ber_adaptive_mode(csi, mode.bits_per_symbol, self.coding_gain_db)
        )

    # -- averages over fast fading ------------------------------------------------
    def mode_probabilities(self, mean_csi: float) -> np.ndarray:
        """Probability of using each mode (index 0..Q) under Rayleigh fading.

        The instantaneous CSI is exponentially distributed with mean
        ``mean_csi`` (unit-mean Rayleigh power fading times the local-mean
        CSI); mode ``q`` is used when the CSI falls in
        ``[zeta_q, zeta_{q+1})``.
        """
        check_non_negative("mean_csi", mean_csi)
        probs = np.zeros(self.num_modes + 1, dtype=float)
        if mean_csi == 0.0:
            probs[0] = 1.0
            return probs
        # Survival function of the exponential at each threshold.
        survival = np.exp(-self._thresholds / mean_csi)
        upper = np.concatenate((survival, [0.0]))  # survival at zeta_{Q+1} = inf
        probs[0] = 1.0 - survival[0]
        probs[1:] = upper[:-1] - upper[1:]
        return probs

    def average_throughput(self, mean_csi: ArrayLike) -> ArrayLike:
        """Average throughput (bits/symbol) at local-mean CSI ``mean_csi``.

        Closed-form expectation under unit-mean exponential (Rayleigh power)
        fading.  This is the quantity that drives the SCH offered bit rate in
        eq. (4) of the paper.
        """
        mean = np.atleast_1d(np.asarray(mean_csi, dtype=float))
        if np.any(mean < 0.0):
            raise ValueError("mean_csi must be non-negative")
        out = np.zeros_like(mean)
        positive = mean > 0.0
        if np.any(positive):
            # survival[i, q] = P(gamma >= zeta_q) for mean_csi[i]
            survival = np.exp(
                -self._thresholds[np.newaxis, :] / mean[positive, np.newaxis]
            )
            upper = np.concatenate(
                (survival, np.zeros((survival.shape[0], 1))), axis=1
            )
            probs = upper[:, :-1] - upper[:, 1:]
            # Row-wise multiply+sum instead of `probs @ throughputs`: the
            # BLAS matvec rounds differently depending on the batch size,
            # which would make the queue-wide burst admission gather drift
            # (in the last ulp) from per-request evaluation.
            out[positive] = (probs * self._throughputs).sum(axis=1)
        if np.ndim(mean_csi) == 0:
            return float(out[0])
        return out

    def average_throughput_mc(
        self,
        mean_csi: float,
        rng: np.random.Generator,
        num_samples: int = 100_000,
    ) -> float:
        """Monte-Carlo estimate of :meth:`average_throughput` (validation aid)."""
        check_non_negative("mean_csi", mean_csi)
        check_positive("num_samples", num_samples)
        if mean_csi == 0.0:
            return 0.0
        csi = rng.exponential(scale=mean_csi, size=int(num_samples))
        return float(np.mean(self.instantaneous_throughput(csi)))

    def relative_average_throughput(
        self, mean_csi: ArrayLike, fch_throughput: float
    ) -> ArrayLike:
        """``delta_rho`` of eq. (4): SCH average throughput over FCH throughput."""
        check_positive("fch_throughput", fch_throughput)
        avg = self.average_throughput(mean_csi)
        return avg / fch_throughput

    def outage_probability(self, mean_csi: float) -> float:
        """Probability of selecting the outage mode at local-mean CSI ``mean_csi``."""
        return float(self.mode_probabilities(mean_csi)[0])

    def mean_csi_for_throughput(self, throughput: float, tol: float = 1e-9) -> float:
        """Invert :meth:`average_throughput`: smallest mean CSI achieving ``throughput``.

        Uses bisection; raises :class:`ValueError` when the requested
        throughput exceeds the maximum mode throughput (unreachable).
        """
        check_positive("throughput", throughput)
        if throughput >= self.max_throughput:
            raise ValueError(
                f"requested throughput {throughput} is not achievable "
                f"(maximum mode throughput is {self.max_throughput})"
            )
        lo, hi = 1e-9, 1.0
        while self.average_throughput(hi) < throughput:
            hi *= 2.0
            if hi > 1e12:  # pragma: no cover - defensive
                raise RuntimeError("bisection upper bound exploded")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.average_throughput(mid) < throughput:
                lo = mid
            else:
                hi = mid
            if hi - lo < tol * max(1.0, hi):
                break
        return hi

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"VtaocCodec(num_modes={self.num_modes}, target_ber={self.target_ber}, "
            f"coding_gain_db={self.coding_gain_db})"
        )
