"""Transmission modes of the variable-throughput adaptive physical layer.

The paper employs a 6-mode symbol-by-symbol variable-throughput adaptive
orthogonal coding scheme (VTAOC); transmission mode ``q`` is chosen when the
fed-back CSI falls inside the adaptation interval ``[zeta_q, zeta_{q+1})``.
Each mode offers a different information throughput per modulation symbol.

The exact throughput values in the scanned paper are OCR-garbled (DESIGN.md
§5); the default table below uses ``bits_per_symbol = q`` for ``q = 1..6``
with a normalising ``symbol_rate_factor`` so the *relative* throughputs across
modes — which is all the burst admission layer consumes through
``delta_rho`` — span the same ×6 dynamic range regardless of the absolute
normalisation.  The table is fully configurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro import constants
from repro.utils.validation import check_positive

__all__ = ["TransmissionMode", "ModeTable"]


@dataclass(frozen=True)
class TransmissionMode:
    """One VTAOC transmission mode.

    Attributes
    ----------
    index:
        Mode number ``q`` (1-based; 0 is reserved for "no transmission").
    bits_per_symbol:
        Information bits carried per modulation symbol in this mode.
    label:
        Human-readable name used in reports.
    """

    index: int
    bits_per_symbol: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("mode index must be >= 1 (0 is the outage mode)")
        check_positive("bits_per_symbol", self.bits_per_symbol)

    @property
    def throughput(self) -> float:
        """Information throughput of the mode (bits per modulation symbol)."""
        return self.bits_per_symbol


class ModeTable:
    """Ordered collection of :class:`TransmissionMode` objects.

    Modes must have strictly increasing ``bits_per_symbol`` with increasing
    index, so that the constant-BER adaptation thresholds are strictly
    increasing as well.
    """

    def __init__(self, modes: Sequence[TransmissionMode]) -> None:
        modes = list(modes)
        if not modes:
            raise ValueError("ModeTable requires at least one mode")
        for i, mode in enumerate(modes, start=1):
            if mode.index != i:
                raise ValueError(
                    f"mode indices must be consecutive starting at 1; "
                    f"got {mode.index} at position {i}"
                )
        for prev, nxt in zip(modes, modes[1:]):
            if nxt.bits_per_symbol <= prev.bits_per_symbol:
                raise ValueError(
                    "bits_per_symbol must be strictly increasing across modes"
                )
        self._modes: List[TransmissionMode] = modes

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._modes)

    def __iter__(self) -> Iterator[TransmissionMode]:
        return iter(self._modes)

    def __getitem__(self, index: int) -> TransmissionMode:
        """Return the mode with 1-based mode index ``index``."""
        if index < 1 or index > len(self._modes):
            raise IndexError(f"mode index {index} out of range 1..{len(self._modes)}")
        return self._modes[index - 1]

    # -- convenience ----------------------------------------------------------
    @property
    def max_throughput(self) -> float:
        """Throughput of the highest mode."""
        return self._modes[-1].throughput

    @property
    def min_throughput(self) -> float:
        """Throughput of the lowest (most protected) mode."""
        return self._modes[0].throughput

    def throughputs(self) -> List[float]:
        """Per-mode throughput list (index order)."""
        return [m.throughput for m in self._modes]

    @classmethod
    def default(cls, num_modes: int = constants.VTAOC_NUM_MODES) -> "ModeTable":
        """The default 6-mode table: mode ``q`` carries ``q`` bits per symbol."""
        if num_modes < 1:
            raise ValueError("num_modes must be >= 1")
        return cls(
            [
                TransmissionMode(index=q, bits_per_symbol=float(q), label=f"mode-{q}")
                for q in range(1, num_modes + 1)
            ]
        )

    @classmethod
    def from_throughputs(cls, throughputs: Iterable[float]) -> "ModeTable":
        """Build a table from an increasing sequence of per-mode throughputs."""
        return cls(
            [
                TransmissionMode(index=i, bits_per_symbol=float(t), label=f"mode-{i}")
                for i, t in enumerate(throughputs, start=1)
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ModeTable({[m.bits_per_symbol for m in self._modes]})"
