"""repro — reproduction of Kwok & Lau's channel-adaptive multiple-burst admission control.

This package reproduces, in pure Python, the system described in

    Y.-K. Kwok and V. K. N. Lau, "On Channel-Adaptive Multiple Burst
    Admission Control for Mobile Computing Based on Wideband CDMA",
    Proc. International Conference on Parallel Processing Workshops, 2001.

The top-level namespace re-exports the most commonly used entry points; see
the sub-packages for the full API:

* :mod:`repro.phy` — variable-throughput adaptive physical layer (VTAOC).
* :mod:`repro.channel` — fading / shadowing / path-loss models.
* :mod:`repro.cdma` — multi-cell wideband CDMA network substrate.
* :mod:`repro.mac` — burst admission control (measurement + scheduling),
  including the JABA-SD scheduler and the FCFS / equal-share baselines.
* :mod:`repro.simulation` — dynamic and snapshot system simulators.
* :mod:`repro.experiments` — the paper-style evaluation harness.
"""

from repro.version import __version__, PAPER
from repro.config import SystemConfig, PhyConfig, RadioConfig, MacConfig

__all__ = [
    "__version__",
    "PAPER",
    "SystemConfig",
    "PhyConfig",
    "RadioConfig",
    "MacConfig",
]
