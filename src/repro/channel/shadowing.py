"""Long-term log-normal shadowing ``Xl(t)``.

Section 2.1 of the paper: "Long-term shadowing is caused by terrain
configuration or obstacles and is fluctuating only in a relatively much slower
manner (on the order of one to two seconds)."

The standard model for the temporal/spatial correlation of shadowing is the
Gudmundson exponential-correlation model: the shadowing value in dB is a
Gauss-Markov (AR(1)) process whose correlation decays exponentially with the
distance travelled,

``E[S(d0) S(d0 + d)] = sigma^2 * exp(-|d| / d_corr)``.

For a mobile moving at speed ``v`` the distance travelled in time ``dt`` is
``v*dt``, which converts the spatial correlation into the one-to-two second
coherence time quoted by the paper for typical vehicular speeds.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro import constants
from repro.utils.validation import check_non_negative, check_positive

ArrayLike = Union[float, np.ndarray]

__all__ = ["GudmundsonShadowing", "ConstantShadowing"]


class ConstantShadowing:
    """Degenerate shadowing process that always returns the same gain.

    Useful for tests and for snapshot analyses where shadowing is drawn once
    per drop rather than evolved over time.
    """

    def __init__(self, gain_db: float = 0.0) -> None:
        self.gain_db = float(gain_db)

    def current_db(self) -> float:
        """Current shadowing value in dB."""
        return self.gain_db

    def current_linear(self) -> float:
        """Current shadowing gain as a linear power factor."""
        return 10.0 ** (self.gain_db / 10.0)

    def advance(self, distance_m: float) -> float:
        """Advance the process by ``distance_m`` metres; value is unchanged."""
        check_non_negative("distance_m", distance_m)
        return self.gain_db


class GudmundsonShadowing:
    """Correlated log-normal shadowing (Gudmundson AR(1) model).

    Parameters
    ----------
    std_db:
        Standard deviation of the shadowing in dB (``sigma``).
    decorrelation_distance_m:
        Distance over which the autocorrelation drops to ``1/e``.
    rng:
        Random generator; required unless ``initial_db`` is given and the
        process is never advanced.
    initial_db:
        Optional initial value in dB; drawn from ``N(0, sigma^2)`` when
        omitted.

    Notes
    -----
    :meth:`advance` implements the exact AR(1) update

    ``S(k+1) = a * S(k) + sqrt(1 - a^2) * sigma * w(k)``,

    with ``a = exp(-delta_d / d_corr)`` and ``w(k) ~ N(0, 1)``, which keeps the
    process exactly stationary with variance ``sigma^2`` for any step size.
    """

    def __init__(
        self,
        std_db: float = constants.SHADOWING_STD_DB,
        decorrelation_distance_m: float = constants.SHADOWING_DECORRELATION_DISTANCE_M,
        rng: Optional[np.random.Generator] = None,
        initial_db: Optional[float] = None,
    ) -> None:
        self.std_db = check_non_negative("std_db", std_db)
        self.decorrelation_distance_m = check_positive(
            "decorrelation_distance_m", decorrelation_distance_m
        )
        self._rng = rng if rng is not None else np.random.default_rng()
        if initial_db is None:
            initial_db = float(self._rng.normal(0.0, self.std_db))
        self._value_db = float(initial_db)

    def current_db(self) -> float:
        """Current shadowing value in dB."""
        return self._value_db

    def current_linear(self) -> float:
        """Current shadowing gain as a linear power factor."""
        return 10.0 ** (self._value_db / 10.0)

    def correlation(self, distance_m: float) -> float:
        """Normalised autocorrelation after moving ``distance_m`` metres."""
        check_non_negative("distance_m", distance_m)
        return math.exp(-distance_m / self.decorrelation_distance_m)

    def advance(self, distance_m: float) -> float:
        """Advance the process by ``distance_m`` metres and return the new dB value."""
        check_non_negative("distance_m", distance_m)
        if distance_m == 0.0 or self.std_db == 0.0:
            return self._value_db
        a = self.correlation(distance_m)
        innovation = self._rng.normal(0.0, 1.0)
        self._value_db = a * self._value_db + math.sqrt(
            max(0.0, 1.0 - a * a)
        ) * self.std_db * innovation
        return self._value_db

    def sample_path_db(self, step_m: float, num_steps: int) -> np.ndarray:
        """Return ``num_steps`` successive dB values moving ``step_m`` per step.

        The returned array starts with the value *after* the first step; the
        internal state is advanced accordingly.
        """
        check_positive("step_m", step_m)
        if num_steps < 0:
            raise ValueError("num_steps must be non-negative")
        out = np.empty(num_steps, dtype=float)
        for i in range(num_steps):
            out[i] = self.advance(step_m)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GudmundsonShadowing(std_db={self.std_db}, "
            f"d_corr={self.decorrelation_distance_m} m, "
            f"current={self._value_db:.2f} dB)"
        )
