"""Deterministic path-loss models.

The paper (and the cdma2000 evaluation methodology it builds on, refs [1,2])
uses a distance-power-law path loss; two standard variants are provided:

* :class:`LogDistancePathLoss` — ``PL(d) = PL0 + 10*n*log10(d/d0)`` dB.
* :class:`HataPathLoss` — COST-231/Hata urban macro-cell formula, useful to
  check that the conclusions do not depend on the particular exponent model.

All models expose *gain* (linear, <= 1) and *loss in dB* so that the link-gain
bookkeeping in :mod:`repro.cdma.linkgain` can stay in linear units.
"""

from __future__ import annotations

import abc
import math
from typing import Union

import numpy as np

from repro import constants
from repro.utils.validation import check_positive

ArrayLike = Union[float, np.ndarray]

__all__ = ["PathLossModel", "LogDistancePathLoss", "HataPathLoss"]


class PathLossModel(abc.ABC):
    """Abstract distance-dependent path-loss model."""

    #: Minimum distance used to avoid the near-field singularity, metres.
    min_distance_m: float = 1.0

    @abc.abstractmethod
    def loss_db(self, distance_m: ArrayLike) -> ArrayLike:
        """Path loss in dB at ``distance_m`` metres (element-wise)."""

    def gain(self, distance_m: ArrayLike) -> ArrayLike:
        """Linear power gain (<= 1) at ``distance_m`` metres."""
        loss = np.asarray(self.loss_db(distance_m), dtype=float)
        out = 10.0 ** (-loss / 10.0)
        if np.isscalar(distance_m) or out.ndim == 0:
            return float(out)
        return out

    def _clip_distance(self, distance_m: ArrayLike) -> np.ndarray:
        dist = np.asarray(distance_m, dtype=float)
        if np.any(dist < 0.0):
            raise ValueError("distance must be non-negative")
        return np.maximum(dist, self.min_distance_m)


class LogDistancePathLoss(PathLossModel):
    """Log-distance path-loss model.

    ``PL(d) = reference_loss_db + 10 * exponent * log10(d / reference_distance)``

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n`` (typically 3.5 – 4.5 for urban macro cells).
    reference_loss_db:
        Loss at the reference distance, dB.
    reference_distance_m:
        Reference distance ``d0`` in metres.
    """

    def __init__(
        self,
        exponent: float = constants.PATH_LOSS_EXPONENT,
        reference_loss_db: float = constants.PATH_LOSS_REFERENCE_DB,
        reference_distance_m: float = constants.PATH_LOSS_REFERENCE_DISTANCE_M,
    ) -> None:
        self.exponent = check_positive("exponent", exponent)
        self.reference_loss_db = float(reference_loss_db)
        self.reference_distance_m = check_positive(
            "reference_distance_m", reference_distance_m
        )

    def loss_db(self, distance_m: ArrayLike) -> ArrayLike:
        dist = self._clip_distance(distance_m)
        loss = self.reference_loss_db + 10.0 * self.exponent * np.log10(
            dist / self.reference_distance_m
        )
        if np.isscalar(distance_m) or loss.ndim == 0:
            return float(loss)
        return loss

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LogDistancePathLoss(exponent={self.exponent}, "
            f"reference_loss_db={self.reference_loss_db}, "
            f"reference_distance_m={self.reference_distance_m})"
        )


class HataPathLoss(PathLossModel):
    """COST-231 Hata urban macro-cell path loss.

    Valid for carrier frequencies of 1.5 – 2 GHz, base-station antenna heights
    of 30 – 200 m and mobile antenna heights of 1 – 10 m.  Outside those
    ranges the formula is still evaluated (the model degrades gracefully) but
    a :class:`ValueError` is raised for non-physical inputs.

    Parameters
    ----------
    carrier_frequency_hz:
        Carrier frequency in Hz.
    base_height_m:
        Base-station antenna height in metres.
    mobile_height_m:
        Mobile antenna height in metres.
    large_city:
        Use the large-city correction term when True.
    """

    def __init__(
        self,
        carrier_frequency_hz: float = constants.CARRIER_FREQUENCY_HZ,
        base_height_m: float = 30.0,
        mobile_height_m: float = 1.5,
        large_city: bool = False,
    ) -> None:
        self.carrier_frequency_hz = check_positive(
            "carrier_frequency_hz", carrier_frequency_hz
        )
        self.base_height_m = check_positive("base_height_m", base_height_m)
        self.mobile_height_m = check_positive("mobile_height_m", mobile_height_m)
        self.large_city = bool(large_city)

    def _mobile_correction_db(self) -> float:
        f_mhz = self.carrier_frequency_hz / 1e6
        h = self.mobile_height_m
        if self.large_city:
            return 3.2 * (math.log10(11.75 * h)) ** 2 - 4.97
        return (1.1 * math.log10(f_mhz) - 0.7) * h - (1.56 * math.log10(f_mhz) - 0.8)

    def loss_db(self, distance_m: ArrayLike) -> ArrayLike:
        dist_km = self._clip_distance(distance_m) / 1000.0
        dist_km = np.maximum(dist_km, 0.02)  # formula breaks below ~20 m
        f_mhz = self.carrier_frequency_hz / 1e6
        hb = self.base_height_m
        a_hm = self._mobile_correction_db()
        c_m = 3.0 if self.large_city else 0.0
        loss = (
            46.3
            + 33.9 * math.log10(f_mhz)
            - 13.82 * math.log10(hb)
            - a_hm
            + (44.9 - 6.55 * math.log10(hb)) * np.log10(dist_km)
            + c_m
        )
        if np.isscalar(distance_m) or np.ndim(loss) == 0:
            return float(loss)
        return loss

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"HataPathLoss(f={self.carrier_frequency_hz / 1e6:.0f} MHz, "
            f"hb={self.base_height_m} m, hm={self.mobile_height_m} m, "
            f"large_city={self.large_city})"
        )
