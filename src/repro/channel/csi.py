"""Channel-state-information (CSI) estimation and feedback.

Section 2.2 of the paper: "Channel state information (CSI), which is
estimated at the receiver, is feedback to the transmitter via a low-capacity
feedback channel.  Based on the CSI, the level of redundancy and the
modulation applied to the information packets are adjusted accordingly."

Two effects of the low-capacity feedback channel are modelled:

* **feedback delay** — the transmitter acts on a CSI value that is
  ``delay_s`` old, which matters when the fast fading decorrelates within the
  delay;
* **quantisation** — only a few bits are available, so the CSI is quantised
  to one of ``2**bits`` representative levels (in dB).

Estimation noise can be added on top (Gaussian in dB), modelling imperfect
pilot-based estimation.
"""

from __future__ import annotations

import collections
import math
from typing import Deque, Optional, Tuple

import numpy as np

from repro.utils.validation import check_non_negative

__all__ = ["CsiEstimator", "CsiFeedbackChannel"]


class CsiEstimator:
    """Pilot-based CSI estimator with optional Gaussian estimation error.

    Parameters
    ----------
    error_std_db:
        Standard deviation of the estimation error in dB (0 = perfect).
    rng:
        Random generator used for the estimation error.
    """

    def __init__(
        self,
        error_std_db: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.error_std_db = check_non_negative("error_std_db", error_std_db)
        self._rng = rng if rng is not None else np.random.default_rng()

    def estimate(self, true_csi: float) -> float:
        """Return the estimated CSI given the true (linear) CSI."""
        if true_csi < 0.0:
            raise ValueError("true_csi must be non-negative")
        if self.error_std_db == 0.0 or true_csi == 0.0:
            return float(true_csi)
        err_db = self._rng.normal(0.0, self.error_std_db)
        return float(true_csi * 10.0 ** (err_db / 10.0))


class CsiFeedbackChannel:
    """Low-capacity delayed, quantised CSI feedback channel.

    Parameters
    ----------
    delay_s:
        Feedback delay in seconds; the transmitter sees CSI that old.
    quantisation_bits:
        Number of feedback bits per report; ``None`` disables quantisation.
    csi_range_db:
        (min, max) dB range represented by the quantiser.
    """

    def __init__(
        self,
        delay_s: float = 0.00125,
        quantisation_bits: Optional[int] = 4,
        csi_range_db: Tuple[float, float] = (-10.0, 30.0),
    ) -> None:
        self.delay_s = check_non_negative("delay_s", delay_s)
        if quantisation_bits is not None and quantisation_bits < 1:
            raise ValueError("quantisation_bits must be >= 1 or None")
        self.quantisation_bits = quantisation_bits
        if csi_range_db[1] <= csi_range_db[0]:
            raise ValueError("csi_range_db must be an increasing pair")
        self.csi_range_db = (float(csi_range_db[0]), float(csi_range_db[1]))
        # (report_time, value) pairs waiting to be delivered.
        self._pipeline: Deque[Tuple[float, float]] = collections.deque()
        self._delivered: Optional[float] = None

    def quantise(self, csi_linear: float) -> float:
        """Quantise a linear CSI value onto the feedback grid."""
        if csi_linear <= 0.0:
            return 0.0
        if self.quantisation_bits is None:
            return float(csi_linear)
        lo, hi = self.csi_range_db
        levels = 2 ** self.quantisation_bits
        csi_db = 10.0 * math.log10(csi_linear)
        csi_db = min(max(csi_db, lo), hi)
        step = (hi - lo) / (levels - 1)
        idx = round((csi_db - lo) / step)
        return float(10.0 ** ((lo + idx * step) / 10.0))

    def report(self, time_s: float, csi_linear: float) -> None:
        """Receiver reports a CSI measurement at simulation time ``time_s``."""
        self._pipeline.append((float(time_s), self.quantise(csi_linear)))

    def transmitter_csi(self, time_s: float) -> Optional[float]:
        """CSI available at the transmitter at time ``time_s``.

        Returns the most recent report older than the feedback delay, or
        ``None`` if no report has propagated yet.
        """
        while self._pipeline and self._pipeline[0][0] + self.delay_s <= time_s:
            _, value = self._pipeline.popleft()
            self._delivered = value
        return self._delivered
