"""Wireless channel models (Section 2.1 of the paper).

The link between a mobile and a base station is modelled as the product of

* a distance-dependent deterministic **path loss** (:mod:`repro.channel.pathloss`),
* a slowly varying log-normal **shadowing** component ``Xl(t)``
  (:mod:`repro.channel.shadowing`), coherence on the order of seconds, and
* a fast **Rayleigh fading** component ``Xs(t)``
  (:mod:`repro.channel.fastfading`), coherence on the order of milliseconds,

combined by :class:`repro.channel.composite.CompositeChannel` according to
eq. (1) of the paper, ``X(t) = Xl(t) * Xs(t)``.  Channel state information
(CSI) estimation and its low-capacity delayed feedback to the transmitter are
modelled in :mod:`repro.channel.csi`.
"""

from repro.channel.pathloss import LogDistancePathLoss, HataPathLoss, PathLossModel
from repro.channel.shadowing import GudmundsonShadowing, ConstantShadowing
from repro.channel.fastfading import (
    RayleighBlockFading,
    JakesFading,
    NoFading,
    rayleigh_power_samples,
)
from repro.channel.composite import CompositeChannel, ChannelSample
from repro.channel.csi import CsiEstimator, CsiFeedbackChannel

__all__ = [
    "PathLossModel",
    "LogDistancePathLoss",
    "HataPathLoss",
    "GudmundsonShadowing",
    "ConstantShadowing",
    "RayleighBlockFading",
    "JakesFading",
    "NoFading",
    "rayleigh_power_samples",
    "CompositeChannel",
    "ChannelSample",
    "CsiEstimator",
    "CsiFeedbackChannel",
]
