"""Fast (multipath) fading ``Xs(t)``.

Section 2.1 of the paper: "Fast fading is caused by the superposition of
multipath components and is therefore fluctuating in a very fast manner (on
the order of a few msec)."

Two complementary models are provided:

* :class:`RayleighBlockFading` — the power gain in each coding block (frame)
  is an independent-ish exponential random variable with unit mean, but an
  optional first-order temporal correlation parameterised by the Doppler
  frequency keeps successive frames correlated (Jakes autocorrelation
  ``J0(2*pi*fd*dt)`` mapped onto a Gauss-Markov complex amplitude).  This is
  the model used by the symbol-by-symbol VTAOC analysis and the dynamic
  simulation.
* :class:`JakesFading` — classical sum-of-sinusoids generator producing a
  continuous sample path; used for validating the statistics of the block
  model and in the physical-layer example scripts.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np
from scipy import special

from repro.utils.validation import check_non_negative, check_positive

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "NoFading",
    "RayleighBlockFading",
    "JakesFading",
    "rayleigh_power_samples",
    "doppler_frequency_hz",
]


def doppler_frequency_hz(speed_m_s: float, carrier_frequency_hz: float) -> float:
    """Maximum Doppler shift ``fd = v * fc / c`` in Hz."""
    check_non_negative("speed_m_s", speed_m_s)
    check_positive("carrier_frequency_hz", carrier_frequency_hz)
    from repro import constants

    return speed_m_s * carrier_frequency_hz / constants.SPEED_OF_LIGHT_M_S


def rayleigh_power_samples(
    rng: np.random.Generator, size: int, mean: float = 1.0
) -> np.ndarray:
    """Draw i.i.d. Rayleigh-fading *power* gains (exponential with ``mean``)."""
    check_positive("mean", mean)
    if size < 0:
        raise ValueError("size must be non-negative")
    return rng.exponential(scale=mean, size=size)


class NoFading:
    """Fading model stub that always returns unit power gain."""

    def current_power(self) -> float:
        """Current fading power gain (always 1)."""
        return 1.0

    def advance(self, dt_s: float) -> float:
        """Advance time; the gain stays 1."""
        check_non_negative("dt_s", dt_s)
        return 1.0


class RayleighBlockFading:
    """Block Rayleigh fading with optional inter-block correlation.

    The complex amplitude ``h`` evolves as a Gauss-Markov process

    ``h(k+1) = rho * h(k) + sqrt(1 - rho^2) * w(k)``,

    with ``w(k)`` standard complex normal and ``rho = J0(2*pi*fd*dt)`` clipped
    to ``[0, 1)``.  The *power* gain is ``|h|^2`` which is exponentially
    distributed with unit mean in steady state, i.e. Rayleigh amplitude
    fading.

    Parameters
    ----------
    doppler_hz:
        Maximum Doppler frequency; 0 freezes the channel.
    rng:
        Random generator.
    """

    def __init__(
        self,
        doppler_hz: float = 10.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.doppler_hz = check_non_negative("doppler_hz", doppler_hz)
        self._rng = rng if rng is not None else np.random.default_rng()
        # Complex amplitude with E[|h|^2] = 1.
        self._h = (self._rng.normal(scale=math.sqrt(0.5)) + 1j * self._rng.normal(
            scale=math.sqrt(0.5)
        ))

    def current_power(self) -> float:
        """Current fading power gain ``|h|^2``."""
        return float(abs(self._h) ** 2)

    def correlation(self, dt_s: float) -> float:
        """Amplitude autocorrelation over ``dt_s`` seconds (Jakes ``J0``)."""
        check_non_negative("dt_s", dt_s)
        if self.doppler_hz == 0.0:
            return 1.0
        rho = float(special.j0(2.0 * math.pi * self.doppler_hz * dt_s))
        return min(max(rho, 0.0), 1.0)

    def advance(self, dt_s: float) -> float:
        """Advance the channel by ``dt_s`` seconds; return the new power gain."""
        rho = self.correlation(dt_s)
        if rho < 1.0:
            w = self._rng.normal(scale=math.sqrt(0.5)) + 1j * self._rng.normal(
                scale=math.sqrt(0.5)
            )
            self._h = rho * self._h + math.sqrt(1.0 - rho * rho) * w
        return self.current_power()

    def sample_block_powers(self, dt_s: float, num_blocks: int) -> np.ndarray:
        """Return ``num_blocks`` successive block power gains spaced ``dt_s`` apart."""
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        out = np.empty(num_blocks, dtype=float)
        for i in range(num_blocks):
            out[i] = self.advance(dt_s)
        return out


class JakesFading:
    """Sum-of-sinusoids (Jakes/Clarke) Rayleigh fading sample-path generator.

    Parameters
    ----------
    doppler_hz:
        Maximum Doppler frequency in Hz.
    num_oscillators:
        Number of sinusoids in the quadrature sums (8–16 is ample).
    rng:
        Random generator used to draw the oscillator phases.
    """

    def __init__(
        self,
        doppler_hz: float,
        num_oscillators: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.doppler_hz = check_positive("doppler_hz", doppler_hz)
        if num_oscillators < 1:
            raise ValueError("num_oscillators must be at least 1")
        self.num_oscillators = int(num_oscillators)
        rng = rng if rng is not None else np.random.default_rng()
        n = self.num_oscillators
        # Random arrival angles and phases (Clarke's model with random phases).
        self._theta = rng.uniform(0.0, 2.0 * math.pi, size=n)
        self._phi_i = rng.uniform(0.0, 2.0 * math.pi, size=n)
        self._phi_q = rng.uniform(0.0, 2.0 * math.pi, size=n)

    def amplitude(self, t_s: ArrayLike) -> ArrayLike:
        """Complex fading amplitude at times ``t_s`` (seconds)."""
        t = np.atleast_1d(np.asarray(t_s, dtype=float))
        wd = 2.0 * math.pi * self.doppler_hz
        # Shape: (len(t), num_oscillators)
        arg = wd * np.outer(t, np.cos(self._theta))
        in_phase = np.cos(arg + self._phi_i).sum(axis=1)
        quadrature = np.cos(arg + self._phi_q).sum(axis=1)
        h = (in_phase + 1j * quadrature) / math.sqrt(self.num_oscillators)
        if np.isscalar(t_s) or np.ndim(t_s) == 0:
            return complex(h[0])
        return h

    def power(self, t_s: ArrayLike) -> ArrayLike:
        """Fading power gain ``|h(t)|^2`` at times ``t_s``."""
        h = self.amplitude(t_s)
        p = np.abs(h) ** 2
        if np.isscalar(t_s) or np.ndim(t_s) == 0:
            return float(p)
        return p

    def coherence_time_s(self) -> float:
        """Approximate coherence time ``0.423 / fd`` (Clarke's definition)."""
        return 0.423 / self.doppler_hz
