"""Composite channel ``X(t) = Xl(t) * Xs(t)`` — eq. (1) of the paper.

The composite channel combines the deterministic path loss, the slowly
varying shadowing component and the fast Rayleigh fading component into a
single time-varying link power gain.  The burst admission layer operates on
the *local-mean* (shadowing + path loss) part, while the adaptive physical
layer (VTAOC) tracks the fast component symbol-by-symbol — exactly the split
described at the end of Section 2.2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.fastfading import NoFading, RayleighBlockFading
from repro.channel.pathloss import LogDistancePathLoss, PathLossModel
from repro.channel.shadowing import ConstantShadowing, GudmundsonShadowing

__all__ = ["ChannelSample", "CompositeChannel"]


@dataclass(frozen=True)
class ChannelSample:
    """One observation of the composite channel.

    Attributes
    ----------
    path_gain:
        Deterministic path-loss gain (linear, <= 1).
    shadowing_gain:
        Long-term shadowing gain ``Xl`` (linear).
    fading_gain:
        Fast-fading power gain ``Xs`` (linear, unit mean).
    """

    path_gain: float
    shadowing_gain: float
    fading_gain: float

    @property
    def local_mean_gain(self) -> float:
        """Gain averaged over fast fading: ``path_gain * shadowing_gain``.

        This is the quantity the measurement sub-layer of the burst admission
        algorithm sees (the "local mean CSI" of the paper).
        """
        return self.path_gain * self.shadowing_gain

    @property
    def instantaneous_gain(self) -> float:
        """Full composite gain including fast fading (eq. (1))."""
        return self.path_gain * self.shadowing_gain * self.fading_gain


class CompositeChannel:
    """Time-evolving composite channel between one mobile and one base station.

    Parameters
    ----------
    path_loss:
        Path-loss model; defaults to :class:`LogDistancePathLoss`.
    shadowing:
        Shadowing process; defaults to an uncorrelated constant 0 dB (tests) —
        the network substrate always supplies a :class:`GudmundsonShadowing`.
    fading:
        Fast-fading process; defaults to :class:`NoFading`.

    The channel is advanced by telling it how far the mobile moved
    (:meth:`advance`); the distance drives both the shadowing innovation and
    (via elapsed time) the fast-fading decorrelation.
    """

    def __init__(
        self,
        path_loss: Optional[PathLossModel] = None,
        shadowing: Optional[object] = None,
        fading: Optional[object] = None,
    ) -> None:
        self.path_loss = path_loss if path_loss is not None else LogDistancePathLoss()
        self.shadowing = shadowing if shadowing is not None else ConstantShadowing()
        self.fading = fading if fading is not None else NoFading()
        self._distance_m = 1.0

    @property
    def distance_m(self) -> float:
        """Current transmitter–receiver distance in metres."""
        return self._distance_m

    def set_distance(self, distance_m: float) -> None:
        """Set the current distance without advancing the random processes."""
        if distance_m < 0.0:
            raise ValueError("distance must be non-negative")
        self._distance_m = float(distance_m)

    def advance(self, moved_m: float, dt_s: float, new_distance_m: Optional[float] = None) -> ChannelSample:
        """Advance the channel state.

        Parameters
        ----------
        moved_m:
            Distance travelled by the mobile since the last update (drives the
            shadowing decorrelation).
        dt_s:
            Elapsed time (drives the fast-fading decorrelation).
        new_distance_m:
            New transmitter–receiver distance; unchanged when omitted.

        Returns
        -------
        ChannelSample
            The channel state *after* the update.
        """
        if new_distance_m is not None:
            self.set_distance(new_distance_m)
        self.shadowing.advance(moved_m)
        self.fading.advance(dt_s)
        return self.sample()

    def sample(self) -> ChannelSample:
        """Return the current channel state without advancing it."""
        return ChannelSample(
            path_gain=float(self.path_loss.gain(self._distance_m)),
            shadowing_gain=float(self.shadowing.current_linear())
            if hasattr(self.shadowing, "current_linear")
            else 1.0,
            fading_gain=float(self.fading.current_power())
            if hasattr(self.fading, "current_power")
            else 1.0,
        )

    @classmethod
    def standard(
        cls,
        rng: np.random.Generator,
        doppler_hz: float = 10.0,
        shadowing_std_db: float = 8.0,
        decorrelation_distance_m: float = 50.0,
        path_loss: Optional[PathLossModel] = None,
    ) -> "CompositeChannel":
        """Factory for the standard simulation channel.

        Uses correlated Gudmundson shadowing and correlated block Rayleigh
        fading, each with its own independent random stream derived from
        ``rng``.
        """
        shadow_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        fade_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        return cls(
            path_loss=path_loss if path_loss is not None else LogDistancePathLoss(),
            shadowing=GudmundsonShadowing(
                std_db=shadowing_std_db,
                decorrelation_distance_m=decorrelation_distance_m,
                rng=shadow_rng,
            ),
            fading=RayleighBlockFading(doppler_hz=doppler_hz, rng=fade_rng),
        )
