"""Version information for the :mod:`repro` package."""

__version__ = "1.0.0"

#: Paper reproduced by this package.
PAPER = (
    "Y.-K. Kwok and V. K. N. Lau, 'On Channel-Adaptive Multiple Burst "
    "Admission Control for Mobile Computing Based on Wideband CDMA', "
    "Proc. International Conference on Parallel Processing Workshops, "
    "2001, pp. 435-440."
)
