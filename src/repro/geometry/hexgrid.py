"""Hexagonal multi-cell layout with optional wrap-around.

Base stations sit at the centres of hexagonal cells arranged in concentric
rings around a centre cell (ring count ``num_rings``; 0 rings = 1 cell,
1 ring = 7 cells, 2 rings = 19 cells).  With wrap-around enabled, distances
are computed modulo the cluster's translation lattice so that every cell —
not just the centre one — experiences a full tier of interferers.  This is
the standard technique used in CDMA system-level simulations and removes the
boundary effects a finite layout would otherwise introduce.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_non_negative_int, check_positive

__all__ = ["HexagonalCellLayout"]


class HexagonalCellLayout:
    """Hexagonal grid of cells.

    Parameters
    ----------
    num_rings:
        Number of rings around the centre cell (0, 1, 2, ... giving 1, 7,
        19, ... cells).
    cell_radius_m:
        Cell radius (centre-to-vertex) in metres.
    wraparound:
        Compute distances modulo the cluster translation lattice.
    """

    def __init__(
        self,
        num_rings: int = 1,
        cell_radius_m: float = 1000.0,
        wraparound: bool = True,
    ) -> None:
        self.num_rings = check_non_negative_int("num_rings", num_rings)
        self.cell_radius_m = check_positive("cell_radius_m", cell_radius_m)
        self.wraparound = bool(wraparound)
        #: Centre-to-centre distance of adjacent cells.
        self.inter_site_distance_m = math.sqrt(3.0) * self.cell_radius_m
        self._positions = self._build_positions()
        self._shifts = self._build_wraparound_shifts()
        # Base-station positions replicated under every wrap-around shift,
        # shape (num_shifts, num_cells, 2).  Precomputed once: both the
        # per-position and the batched distance queries reduce over it.
        self._shifted_positions = (
            self._positions[np.newaxis, :, :] + self._shifts[:, np.newaxis, :]
        )
        self._shifted_x = np.ascontiguousarray(self._shifted_positions[:, :, 0])
        self._shifted_y = np.ascontiguousarray(self._shifted_positions[:, :, 1])
        # Scratch buffers of the batched distance kernel for the most
        # recent batch size (the frame pipeline queries the same population
        # every frame; keeping only one entry bounds the memory held by
        # layouts reused across differently sized sweeps).
        self._batch_scratch: Optional[tuple] = None

    # -- construction -----------------------------------------------------------
    def _axial_coordinates(self) -> List[Tuple[int, int]]:
        coords: List[Tuple[int, int]] = []
        n = self.num_rings
        for q in range(-n, n + 1):
            for r in range(-n, n + 1):
                s = -q - r
                if max(abs(q), abs(r), abs(s)) <= n:
                    coords.append((q, r))
        # Sort by ring then angle for a stable, readable cell numbering with
        # the centre cell first.
        def ring_angle(qr: Tuple[int, int]) -> Tuple[int, float]:
            q, r = qr
            ring = max(abs(q), abs(r), abs(-q - r))
            x, y = self._axial_to_xy(q, r)
            return ring, math.atan2(y, x) % (2.0 * math.pi)

        coords.sort(key=ring_angle)
        return coords

    def _axial_to_xy(self, q: int, r: int) -> Tuple[float, float]:
        d = self.inter_site_distance_m
        x = d * (q + r / 2.0)
        y = d * (math.sqrt(3.0) / 2.0) * r
        return x, y

    def _build_positions(self) -> np.ndarray:
        coords = self._axial_coordinates()
        return np.asarray([self._axial_to_xy(q, r) for q, r in coords], dtype=float)

    def _build_wraparound_shifts(self) -> np.ndarray:
        """Translation vectors of the cluster tiling (includes the zero shift)."""
        if not self.wraparound or self.num_rings == 0:
            return np.zeros((1, 2), dtype=float)
        n = self.num_rings
        d = self.inter_site_distance_m
        a1 = np.array([d, 0.0])
        a2 = np.array([d / 2.0, d * math.sqrt(3.0) / 2.0])
        # A cluster with rings 0..n tiles the plane with translation basis
        # u = (n+1)*a1 + n*a2 and its 60-degree rotation v = -n*a1 + (2n+1)*a2.
        u = (n + 1) * a1 + n * a2
        v = -n * a1 + (2 * n + 1) * a2
        shifts = []
        for i in (-1, 0, 1):
            for j in (-1, 0, 1):
                shifts.append(i * u + j * v)
        return np.asarray(shifts, dtype=float)

    # -- basic queries --------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Number of cells (base stations) in the layout."""
        return self._positions.shape[0]

    @property
    def positions(self) -> np.ndarray:
        """Array of shape (num_cells, 2) with base-station coordinates (m)."""
        return self._positions.copy()

    def position_of(self, cell_index: int) -> np.ndarray:
        """Coordinates of base station ``cell_index``."""
        return self._positions[cell_index].copy()

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(xmin, xmax, ymin, ymax) covering all cells including their radius."""
        r = self.cell_radius_m
        xmin, ymin = self._positions.min(axis=0) - r
        xmax, ymax = self._positions.max(axis=0) + r
        return float(xmin), float(xmax), float(ymin), float(ymax)

    # -- distances ---------------------------------------------------------------------
    def distances_to_all(self, position: np.ndarray) -> np.ndarray:
        """Distance from ``position`` to every base station (wrap-around aware)."""
        pos = np.asarray(position, dtype=float).reshape(2)
        delta = self._shifted_positions - pos[np.newaxis, np.newaxis, :]
        dist = np.sqrt((delta ** 2).sum(axis=2))
        return dist.min(axis=0)

    def distances_to_all_batch(self, positions: np.ndarray) -> np.ndarray:
        """Distances from many positions to every base station in one call.

        Parameters
        ----------
        positions:
            Coordinates, shape ``(n, 2)``.

        Returns
        -------
        Distances of shape ``(n, num_cells)``; row ``i`` equals
        ``distances_to_all(positions[i])`` bit-for-bit (the same elementwise
        operations run under a single ``(n, shifts, cells)`` broadcast with a
        wrap-around min-reduction instead of one Python call per position).
        """
        pos = np.asarray(positions, dtype=float).reshape(-1, 2)
        n = pos.shape[0]
        if n == 0:
            return np.zeros((0, self.num_cells))
        scratch = self._batch_scratch
        if scratch is None or scratch[0] != n:
            shape = (n,) + self._shifted_x.shape
            scratch = (n, np.empty(shape), np.empty(shape))
            self._batch_scratch = scratch
        _, d2, work = scratch
        # Squared distances accumulated in place: (x_bs - x)^2 + (y_bs - y)^2
        # over the (n, shifts, cells) grid.  The sign flip relative to the
        # scalar path is irrelevant under the square, and taking the square
        # root *after* the wrap-around min-reduction picks the same shift
        # (sqrt is monotonic), so each row stays bit-identical.
        np.subtract(pos[:, 0, np.newaxis, np.newaxis], self._shifted_x, out=work)
        np.multiply(work, work, out=d2)
        np.subtract(pos[:, 1, np.newaxis, np.newaxis], self._shifted_y, out=work)
        np.multiply(work, work, out=work)
        d2 += work
        return np.sqrt(d2.min(axis=1))

    def distance(self, position: np.ndarray, cell_index: int) -> float:
        """Wrap-around distance from ``position`` to base station ``cell_index``."""
        return float(self.distances_to_all(position)[cell_index])

    def nearest_cell(self, position: np.ndarray) -> int:
        """Index of the nearest base station (the serving cell by geometry)."""
        return int(np.argmin(self.distances_to_all(position)))

    # -- sampling -----------------------------------------------------------------------
    def random_position_in_cell(
        self, cell_index: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform random position inside the hexagon of cell ``cell_index``."""
        if not 0 <= cell_index < self.num_cells:
            raise IndexError(f"cell_index {cell_index} out of range")
        centre = self._positions[cell_index]
        r = self.cell_radius_m
        # Rejection sampling in the bounding circle, accepted when inside the hexagon.
        for _ in range(10_000):
            candidate = rng.uniform(-r, r, size=2)
            if self._inside_hexagon(candidate, r):
                return centre + candidate
        raise RuntimeError("rejection sampling failed")  # pragma: no cover

    def random_position(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform random position in a uniformly chosen cell."""
        cell = int(rng.integers(0, self.num_cells))
        return self.random_position_in_cell(cell, rng)

    @staticmethod
    def _inside_hexagon(offset: np.ndarray, radius: float) -> bool:
        """Point-in-hexagon test for a flat-top hexagon centred at the origin."""
        x, y = abs(float(offset[0])), abs(float(offset[1]))
        h = radius * math.sqrt(3.0) / 2.0  # apothem
        if y > h:
            return False
        # Edge from (radius, 0) to (radius/2, h): x/r + y/(sqrt(3) h) ... use line test.
        return h * x + (radius / 2.0) * y <= radius * h + 1e-9

    def cell_of(self, position: np.ndarray) -> int:
        """Cell whose base station is geometrically closest to ``position``."""
        return self.nearest_cell(position)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"HexagonalCellLayout(num_rings={self.num_rings}, "
            f"cells={self.num_cells}, radius={self.cell_radius_m} m, "
            f"wraparound={self.wraparound})"
        )
