"""Cell geometry and user mobility models.

The dynamic simulation places base stations on a hexagonal grid
(:class:`~repro.geometry.hexgrid.HexagonalCellLayout`, with optional
wrap-around so that edge cells see the same interference environment as the
centre cell) and moves users with simple stochastic mobility models
(:mod:`~repro.geometry.mobility`), as required by the paper's "dynamic
simulations which takes into account of the user mobility".
"""

from repro.geometry.hexgrid import HexagonalCellLayout
from repro.geometry.mobility import (
    FleetMemberMobility,
    MobilityModel,
    RandomDirectionFleet,
    RandomDirectionMobility,
    RandomWaypointMobility,
    StaticMobility,
)

__all__ = [
    "HexagonalCellLayout",
    "MobilityModel",
    "StaticMobility",
    "RandomDirectionMobility",
    "RandomWaypointMobility",
    "RandomDirectionFleet",
    "FleetMemberMobility",
]
