"""User mobility models.

The paper's evaluation is a dynamic simulation "which takes into account of
the user mobility".  Two standard stochastic mobility models are provided
(plus a static model for snapshot analyses):

* :class:`RandomDirectionMobility` — the user moves in a straight line at a
  constant speed, re-drawing direction (and optionally speed) after an
  exponentially distributed epoch; the trajectory reflects off the region
  boundary.  This is the model typically used in cellular-capacity studies
  because it keeps the spatial user distribution approximately uniform.
* :class:`RandomWaypointMobility` — the user picks a uniform waypoint,
  travels to it at a uniform random speed and optionally pauses.

Both models report the distance travelled per update, which drives the
shadowing decorrelation (:class:`repro.channel.shadowing.GudmundsonShadowing`).
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "MobilityModel",
    "StaticMobility",
    "RandomDirectionMobility",
    "RandomWaypointMobility",
    "MobilityBatch",
    "RandomDirectionFleet",
    "FleetMemberMobility",
    "advance_all",
]

Bounds = Tuple[float, float, float, float]


def _check_bounds(bounds: Bounds) -> Bounds:
    xmin, xmax, ymin, ymax = (float(v) for v in bounds)
    if xmax <= xmin or ymax <= ymin:
        raise ValueError("bounds must satisfy xmin < xmax and ymin < ymax")
    return xmin, xmax, ymin, ymax


def _reflect(value: float, low: float, high: float) -> Tuple[float, bool]:
    """Reflect ``value`` into ``[low, high]``; returns (value, reflected?)."""
    reflected = False
    span = high - low
    # Fold the value into the range by successive reflections.
    while value < low or value > high:
        if value < low:
            value = 2.0 * low - value
        else:
            value = 2.0 * high - value
        reflected = True
        if span <= 0:  # pragma: no cover - defensive
            break
    return value, reflected


class MobilityModel(abc.ABC):
    """Abstract mobility model: a position that advances with time."""

    @property
    @abc.abstractmethod
    def position(self) -> np.ndarray:
        """Current position, metres."""

    @property
    @abc.abstractmethod
    def speed_m_s(self) -> float:
        """Current speed, m/s."""

    @abc.abstractmethod
    def advance(self, dt_s: float) -> float:
        """Advance by ``dt_s`` seconds; return the distance travelled (m)."""


class StaticMobility(MobilityModel):
    """A user that never moves (snapshot / Monte-Carlo drop analyses)."""

    def __init__(self, position: np.ndarray) -> None:
        self._position = np.asarray(position, dtype=float).reshape(2).copy()

    @property
    def position(self) -> np.ndarray:
        return self._position.copy()

    @property
    def speed_m_s(self) -> float:
        return 0.0

    def advance(self, dt_s: float) -> float:
        check_non_negative("dt_s", dt_s)
        return 0.0


class RandomDirectionMobility(MobilityModel):
    """Random-direction mobility with boundary reflection.

    Parameters
    ----------
    initial_position:
        Starting coordinates (m).
    bounds:
        Rectangular simulation region ``(xmin, xmax, ymin, ymax)``.
    speed_m_s:
        Constant speed, or a ``(low, high)`` range re-drawn at each epoch.
    mean_epoch_s:
        Mean duration between direction changes (exponential).
    rng:
        Random generator.
    """

    def __init__(
        self,
        initial_position: np.ndarray,
        bounds: Bounds,
        speed_m_s: float | Tuple[float, float] = 13.9,
        mean_epoch_s: float = 20.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._bounds = _check_bounds(bounds)
        self._position = np.asarray(initial_position, dtype=float).reshape(2).copy()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.mean_epoch_s = check_positive("mean_epoch_s", mean_epoch_s)
        if isinstance(speed_m_s, tuple):
            lo, hi = float(speed_m_s[0]), float(speed_m_s[1])
            if lo < 0 or hi < lo:
                raise ValueError("speed range must satisfy 0 <= low <= high")
            self._speed_range: Optional[Tuple[float, float]] = (lo, hi)
            self._speed = float(self._rng.uniform(lo, hi))
        else:
            self._speed_range = None
            self._speed = check_non_negative("speed_m_s", speed_m_s)
        self._set_direction(float(self._rng.uniform(0.0, 2.0 * math.pi)))
        self._time_to_epoch = float(self._rng.exponential(self.mean_epoch_s))

    def _set_direction(self, direction: float) -> None:
        # The heading unit vector is evaluated once per draw (not once per
        # advance) so the scalar and the batched advance paths multiply the
        # exact same doubles and stay bit-identical.
        self._direction = direction
        self._dir_cos = math.cos(direction)
        self._dir_sin = math.sin(direction)

    @property
    def position(self) -> np.ndarray:
        return self._position.copy()

    @property
    def speed_m_s(self) -> float:
        return self._speed

    @property
    def direction_rad(self) -> float:
        """Current heading in radians."""
        return self._direction

    def _redraw(self) -> None:
        self._set_direction(float(self._rng.uniform(0.0, 2.0 * math.pi)))
        if self._speed_range is not None:
            self._speed = float(self._rng.uniform(*self._speed_range))
        self._time_to_epoch = float(self._rng.exponential(self.mean_epoch_s))

    def advance(self, dt_s: float) -> float:
        check_non_negative("dt_s", dt_s)
        remaining = dt_s
        travelled = 0.0
        xmin, xmax, ymin, ymax = self._bounds
        while remaining > 0.0:
            step = min(remaining, self._time_to_epoch)
            dx = self._speed * step * self._dir_cos
            dy = self._speed * step * self._dir_sin
            x, rx = _reflect(self._position[0] + dx, xmin, xmax)
            y, ry = _reflect(self._position[1] + dy, ymin, ymax)
            travelled += self._speed * step
            self._position[0] = x
            self._position[1] = y
            if rx or ry:
                # Reverse/regenerate heading after bouncing off the boundary.
                self._set_direction(float(self._rng.uniform(0.0, 2.0 * math.pi)))
            self._time_to_epoch -= step
            remaining -= step
            if self._time_to_epoch <= 0.0:
                self._redraw()
        return travelled


class RandomWaypointMobility(MobilityModel):
    """Random-waypoint mobility within a rectangular region.

    Parameters
    ----------
    initial_position:
        Starting coordinates (m).
    bounds:
        Rectangular region ``(xmin, xmax, ymin, ymax)``.
    speed_range_m_s:
        ``(low, high)`` of the uniform speed drawn for each leg.
    pause_s:
        Fixed pause at each waypoint.
    rng:
        Random generator.
    """

    def __init__(
        self,
        initial_position: np.ndarray,
        bounds: Bounds,
        speed_range_m_s: Tuple[float, float] = (1.0, 13.9),
        pause_s: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._bounds = _check_bounds(bounds)
        self._position = np.asarray(initial_position, dtype=float).reshape(2).copy()
        lo, hi = float(speed_range_m_s[0]), float(speed_range_m_s[1])
        if lo <= 0 or hi < lo:
            raise ValueError("speed range must satisfy 0 < low <= high")
        self._speed_range = (lo, hi)
        self.pause_s = check_non_negative("pause_s", pause_s)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._pause_remaining = 0.0
        self._waypoint = self._draw_waypoint()
        self._speed = float(self._rng.uniform(lo, hi))

    def _draw_waypoint(self) -> np.ndarray:
        xmin, xmax, ymin, ymax = self._bounds
        return np.array(
            [self._rng.uniform(xmin, xmax), self._rng.uniform(ymin, ymax)]
        )

    @property
    def position(self) -> np.ndarray:
        return self._position.copy()

    @property
    def speed_m_s(self) -> float:
        return 0.0 if self._pause_remaining > 0.0 else self._speed

    @property
    def waypoint(self) -> np.ndarray:
        """Current destination waypoint."""
        return self._waypoint.copy()

    def advance(self, dt_s: float) -> float:
        check_non_negative("dt_s", dt_s)
        remaining = dt_s
        travelled = 0.0
        while remaining > 1e-12:
            if self._pause_remaining > 0.0:
                waited = min(self._pause_remaining, remaining)
                self._pause_remaining -= waited
                remaining -= waited
                continue
            to_waypoint = self._waypoint - self._position
            distance = float(np.hypot(*to_waypoint))
            if distance < 1e-9:
                self._waypoint = self._draw_waypoint()
                self._speed = float(self._rng.uniform(*self._speed_range))
                self._pause_remaining = self.pause_s
                continue
            max_step = self._speed * remaining
            step = min(max_step, distance)
            self._position += to_waypoint / distance * step
            travelled += step
            remaining -= step / self._speed
            if step >= distance - 1e-12:
                self._waypoint = self._draw_waypoint()
                self._speed = float(self._rng.uniform(*self._speed_range))
                self._pause_remaining = self.pause_s
        return travelled


def advance_all(
    models,
    dt_s: float,
    out_moved: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Advance a sequence of mobility models by ``dt_s`` seconds.

    Convenience helper for one-shot population updates: all-static
    populations short-circuit, everything else advances per model in index
    order (so a shared random generator consumes draws exactly as the
    equivalent hand-written loop would).  The frame pipeline itself uses
    :class:`MobilityBatch`, which keeps structure-of-arrays state across
    frames and vectorises the common straight-line case.

    Parameters
    ----------
    models:
        Sequence of :class:`MobilityModel` instances.
    dt_s:
        Elapsed time, seconds (non-negative).
    out_moved:
        Optional preallocated output for the travelled distances, shape
        ``(len(models),)``; allocated when omitted.

    Returns
    -------
    Distance travelled by each model, shape ``(len(models),)``.
    """
    check_non_negative("dt_s", dt_s)
    n = len(models)
    moved = out_moved if out_moved is not None else np.zeros(n)
    if out_moved is not None and moved.shape != (n,):
        raise ValueError("out_moved must have shape (len(models),)")
    # Fast path: a population of static users needs no per-model calls at
    # all (snapshot / Monte-Carlo drop analyses at scale).
    if all(type(m) is StaticMobility for m in models):
        moved[:] = 0.0
        return moved
    for i, model in enumerate(models):
        moved[i] = model.advance(dt_s)
    return moved


class MobilityBatch:
    """Vectorised per-frame advance over a fixed population of models.

    The batch owns the population's positions as one ``(n, 2)`` array and
    rebinds each model's internal position to a row view of it, so both the
    vectorised and the per-model code paths write the same storage.  For
    :class:`RandomDirectionMobility` users the per-frame advance is a flat
    array kernel: every user whose epoch timer survives the frame and whose
    straight-line step stays inside the region advances with pure array
    arithmetic (consuming no random draws — such users never draw in the
    scalar path either), and only the rare epoch/boundary crossers fall back
    to the exact scalar :meth:`MobilityModel.advance`, in index order.  The
    resulting trajectories and random-stream consumption are bit-identical
    to advancing every model in a Python loop.

    Model attributes (position, epoch timer, heading, speed) remain
    authoritative between advances: epoch timers are written back after the
    vector update, and a model rebound by a *newer* batch (mobiles reused
    across several networks) is detected and re-adopted on the next
    advance.  Do not call :meth:`MobilityModel.advance` directly on a
    batched model, though — the batch's kinematic mirror would go stale.

    Parameters
    ----------
    models:
        The mobility models, one per user.
    positions_out:
        Optional ``(n, 2)`` array to adopt as the shared position storage
        (e.g. the radio network's structure-of-arrays position buffer).
    """

    def __init__(self, models, positions_out: Optional[np.ndarray] = None) -> None:
        self.models = list(models)
        n = len(self.models)
        if positions_out is None:
            positions_out = np.zeros((n, 2))
        if positions_out.shape != (n, 2):
            raise ValueError("positions_out must have shape (len(models), 2)")
        self.positions = positions_out
        rebound = np.zeros(n, dtype=bool)
        for i, model in enumerate(self.models):
            internal = getattr(model, "_position", None)
            if isinstance(internal, np.ndarray) and internal.shape == (2,):
                self.positions[i] = internal
                model._position = self.positions[i]
                rebound[i] = True
            else:  # custom model: copy after each advance instead
                self.positions[i] = model.position
        self._rebound = rebound

        kinds = [type(m) for m in self.models]
        self._rd_indices = np.flatnonzero(
            np.asarray([k is RandomDirectionMobility for k in kinds])
        )
        self._other_indices = np.flatnonzero(
            np.asarray(
                [
                    k is not RandomDirectionMobility and k is not StaticMobility
                    for k in kinds
                ]
            )
        )
        self._rd_all = self._rd_indices.size == n

        m = self._rd_indices.size
        self._speed = np.zeros(m)
        self._dir_cos = np.zeros(m)
        self._dir_sin = np.zeros(m)
        self._tte = np.zeros(m)
        self._bounds = np.zeros((m, 4))
        self._rd_local = {int(i): local for local, i in enumerate(self._rd_indices)}
        for local, i in enumerate(self._rd_indices):
            self._resync(local, self.models[i])

    def _readopt_foreign(self) -> None:
        """Re-adopt models whose storage was rebound by a newer batch.

        Mobiles may be reused across several networks (ablation sweeps);
        each network's batch rebinds the models' positions into its own
        buffer.  A model pointing at foreign storage is imported back —
        position copied into this batch's buffer and the random-direction
        mirror refreshed from the (authoritative) model attributes.
        """
        positions = self.positions
        for i, model in enumerate(self.models):
            if not self._rebound[i]:
                continue
            internal = model._position
            if internal.base is not positions:
                positions[i] = internal
                model._position = positions[i]
                local = self._rd_local.get(i)
                if local is not None:
                    self._resync(local, model)

    def _resync(self, local: int, model: "RandomDirectionMobility") -> None:
        """Refresh the SoA mirror of one random-direction model."""
        self._speed[local] = model._speed
        self._dir_cos[local] = model._dir_cos
        self._dir_sin[local] = model._dir_sin
        self._tte[local] = model._time_to_epoch
        self._bounds[local] = model._bounds

    def advance(self, dt_s: float, out_moved: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance every model by ``dt_s``; returns the travelled distances."""
        check_non_negative("dt_s", dt_s)
        n = len(self.models)
        moved = out_moved if out_moved is not None else np.zeros(n)
        if moved.shape != (n,):
            raise ValueError("out_moved must have shape (len(models),)")
        moved[:] = 0.0
        self._readopt_foreign()

        rd = self._rd_indices
        if rd.size:
            if self._rd_all:
                px = self.positions[:, 0]
                py = self.positions[:, 1]
            else:
                px = self.positions[rd, 0]
                py = self.positions[rd, 1]
            # Straight-line candidate step with the exact scalar grouping:
            # (speed * dt) * heading, position + delta.
            travel = self._speed * dt_s
            nx = px + travel * self._dir_cos
            ny = py + travel * self._dir_sin
            b = self._bounds
            fast = (
                (self._tte > dt_s)
                & (nx >= b[:, 0])
                & (nx <= b[:, 1])
                & (ny >= b[:, 2])
                & (ny <= b[:, 3])
            )
            fast_rows = rd[fast]
            self.positions[fast_rows, 0] = nx[fast]
            self.positions[fast_rows, 1] = ny[fast]
            moved[fast_rows] = travel[fast]
            self._tte[fast] -= dt_s
            # Keep the model attribute authoritative so a later batch (or a
            # direct scalar advance) resumes from the correct epoch timer.
            tte = self._tte
            models = self.models
            for local in np.flatnonzero(fast):
                models[int(rd[local])]._time_to_epoch = tte[local]
            slow = [(int(rd[local]), int(local)) for local in np.flatnonzero(~fast)]
        else:
            slow = []

        # Models needing a scalar update — epoch/boundary-crossing
        # random-direction users plus every non-random-direction mover —
        # run in global index order so a shared random generator consumes
        # draws exactly as the equivalent per-model loop would.
        scalar_models = sorted(slow + [(int(i), None) for i in self._other_indices])
        for i, local in scalar_models:
            model = self.models[i]
            if local is not None:
                model._time_to_epoch = float(self._tte[local])
                moved[i] = model.advance(dt_s)
                self._resync(local, model)
            else:
                moved[i] = model.advance(dt_s)
                if not self._rebound[i]:
                    self.positions[i] = model.position
        return moved


def _reflect_fold(values: np.ndarray, low: float, high: float):
    """Vectorised :func:`_reflect`: fold ``values`` into ``[low, high]``.

    Returns ``(folded, reflected_mask)``.  The closed-form triangle-wave
    fold is equivalent to the scalar successive-reflection loop up to
    floating-point rounding (the fleet path does not promise bit parity
    with the scalar models — it owns its own random stream anyway).
    """
    span = high - low
    reflected = (values < low) | (values > high)
    if not reflected.any():
        return values, reflected
    period = 2.0 * span
    t = np.mod(values - low, period)
    folded = low + (span - np.abs(t - span))
    np.clip(folded, low, high, out=folded)
    return np.where(reflected, folded, values), reflected


class RandomDirectionFleet:
    """Structure-of-arrays random-direction mobility for a whole population.

    The fully batched counterpart of ``J`` :class:`RandomDirectionMobility`
    models: positions, speeds, headings and epoch timers are flat arrays,
    and *all* per-frame work — including the epoch and boundary-reflection
    redraws that :class:`MobilityBatch` still delegates to per-user model
    objects — is done with array kernels.  The fleet owns a **single**
    random stream from which each round's direction/speed/epoch draws are
    batched, so trajectories are statistically equivalent (same kinematics,
    same epoch process) but not sample-path identical to the scalar models;
    see the fleet RNG contract in ``benchmarks/README.md``.

    Duck-type compatible with :class:`MobilityBatch` (``positions`` +
    ``advance(dt_s, out_moved=...)``) so :class:`repro.cdma.network.CdmaNetwork`
    can adopt it as its mobility back-end.

    Parameters
    ----------
    initial_positions:
        Starting coordinates, shape ``(n, 2)``.
    bounds:
        Rectangular simulation region ``(xmin, xmax, ymin, ymax)`` shared by
        the whole fleet.
    speed_m_s:
        Constant speed, or a ``(low, high)`` range re-drawn at each epoch.
    mean_epoch_s:
        Mean duration between direction changes (exponential).
    rng:
        The fleet's random generator.
    """

    def __init__(
        self,
        initial_positions: np.ndarray,
        bounds: Bounds,
        speed_m_s: float | Tuple[float, float] = 13.9,
        mean_epoch_s: float = 20.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._bounds = _check_bounds(bounds)
        positions = np.array(initial_positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError("initial_positions must have shape (n, 2)")
        self.positions = positions
        n = positions.shape[0]
        self._rng = rng if rng is not None else np.random.default_rng()
        self.mean_epoch_s = check_positive("mean_epoch_s", mean_epoch_s)
        if isinstance(speed_m_s, tuple):
            lo, hi = float(speed_m_s[0]), float(speed_m_s[1])
            if lo < 0 or hi < lo:
                raise ValueError("speed range must satisfy 0 <= low <= high")
            self._speed_range: Optional[Tuple[float, float]] = (lo, hi)
            self._speed = self._rng.uniform(lo, hi, size=n)
        else:
            self._speed_range = None
            self._speed = np.full(n, check_non_negative("speed_m_s", speed_m_s))
        direction = self._rng.uniform(0.0, 2.0 * math.pi, size=n)
        self._dir_cos = np.cos(direction)
        self._dir_sin = np.sin(direction)
        self._tte = self._rng.exponential(self.mean_epoch_s, size=n)

    @property
    def num_users(self) -> int:
        """Fleet size."""
        return self.positions.shape[0]

    @property
    def speed_m_s(self) -> np.ndarray:
        """Current per-user speeds, shape ``(n,)`` (do not mutate)."""
        return self._speed

    def _redraw_directions(self, idx: np.ndarray) -> None:
        direction = self._rng.uniform(0.0, 2.0 * math.pi, size=idx.size)
        self._dir_cos[idx] = np.cos(direction)
        self._dir_sin[idx] = np.sin(direction)

    def _redraw_epochs(self, idx: np.ndarray) -> None:
        self._redraw_directions(idx)
        if self._speed_range is not None:
            self._speed[idx] = self._rng.uniform(
                self._speed_range[0], self._speed_range[1], size=idx.size
            )
        self._tte[idx] = self._rng.exponential(self.mean_epoch_s, size=idx.size)

    def advance(self, dt_s: float, out_moved: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance every user by ``dt_s``; returns the travelled distances."""
        check_non_negative("dt_s", dt_s)
        n = self.num_users
        moved = out_moved if out_moved is not None else np.zeros(n)
        if moved.shape != (n,):
            raise ValueError("out_moved must have shape (n,)")
        moved[:] = 0.0
        if n == 0 or dt_s == 0.0:
            return moved
        xmin, xmax, ymin, ymax = self._bounds
        px = self.positions[:, 0]
        py = self.positions[:, 1]

        # Fast path: users whose epoch timer survives the frame and whose
        # straight-line step stays inside the region advance with pure array
        # arithmetic and no random draws.
        travel = self._speed * dt_s
        nx = px + travel * self._dir_cos
        ny = py + travel * self._dir_sin
        fast = (
            (self._tte > dt_s)
            & (nx >= xmin)
            & (nx <= xmax)
            & (ny >= ymin)
            & (ny <= ymax)
        )
        px[fast] = nx[fast]
        py[fast] = ny[fast]
        moved[fast] = travel[fast]
        self._tte[fast] -= dt_s

        # Slow path: the (rare) epoch / boundary crossers advance round by
        # round on a compacted index set; every round batches its reflection
        # folds and redraw draws over the whole surviving subset.
        live = np.flatnonzero(~fast)
        remaining = np.full(live.size, dt_s)
        while live.size:
            step = np.minimum(remaining, self._tte[live])
            span = self._speed[live] * step
            cx, rx = _reflect_fold(px[live] + span * self._dir_cos[live], xmin, xmax)
            cy, ry = _reflect_fold(py[live] + span * self._dir_sin[live], ymin, ymax)
            px[live] = cx
            py[live] = cy
            moved[live] += span
            reflected = rx | ry
            if reflected.any():
                self._redraw_directions(live[reflected])
            self._tte[live] -= step
            remaining -= step
            expired = self._tte[live] <= 0.0
            if expired.any():
                self._redraw_epochs(live[expired])
            keep = remaining > 0.0
            live = live[keep]
            remaining = remaining[keep]
        return moved


class FleetMemberMobility(MobilityModel):
    """Read-only view of one :class:`RandomDirectionFleet` member.

    Lets entity objects (:class:`repro.cdma.entities.MobileStation`) expose
    their current position while the fleet advances the whole population in
    one kernel; calling :meth:`advance` on a member directly is an error —
    the fleet owns the trajectory.
    """

    def __init__(self, fleet: RandomDirectionFleet, index: int) -> None:
        self._fleet = fleet
        self._index = int(index)

    @property
    def position(self) -> np.ndarray:
        return self._fleet.positions[self._index].copy()

    @property
    def speed_m_s(self) -> float:
        return float(self._fleet.speed_m_s[self._index])

    def advance(self, dt_s: float) -> float:
        raise RuntimeError(
            "fleet-managed mobility: advance the RandomDirectionFleet instead"
        )
