"""User mobility models.

The paper's evaluation is a dynamic simulation "which takes into account of
the user mobility".  Two standard stochastic mobility models are provided
(plus a static model for snapshot analyses):

* :class:`RandomDirectionMobility` — the user moves in a straight line at a
  constant speed, re-drawing direction (and optionally speed) after an
  exponentially distributed epoch; the trajectory reflects off the region
  boundary.  This is the model typically used in cellular-capacity studies
  because it keeps the spatial user distribution approximately uniform.
* :class:`RandomWaypointMobility` — the user picks a uniform waypoint,
  travels to it at a uniform random speed and optionally pauses.

Both models report the distance travelled per update, which drives the
shadowing decorrelation (:class:`repro.channel.shadowing.GudmundsonShadowing`).
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "MobilityModel",
    "StaticMobility",
    "RandomDirectionMobility",
    "RandomWaypointMobility",
]

Bounds = Tuple[float, float, float, float]


def _check_bounds(bounds: Bounds) -> Bounds:
    xmin, xmax, ymin, ymax = (float(v) for v in bounds)
    if xmax <= xmin or ymax <= ymin:
        raise ValueError("bounds must satisfy xmin < xmax and ymin < ymax")
    return xmin, xmax, ymin, ymax


def _reflect(value: float, low: float, high: float) -> Tuple[float, bool]:
    """Reflect ``value`` into ``[low, high]``; returns (value, reflected?)."""
    reflected = False
    span = high - low
    # Fold the value into the range by successive reflections.
    while value < low or value > high:
        if value < low:
            value = 2.0 * low - value
        else:
            value = 2.0 * high - value
        reflected = True
        if span <= 0:  # pragma: no cover - defensive
            break
    return value, reflected


class MobilityModel(abc.ABC):
    """Abstract mobility model: a position that advances with time."""

    @property
    @abc.abstractmethod
    def position(self) -> np.ndarray:
        """Current position, metres."""

    @property
    @abc.abstractmethod
    def speed_m_s(self) -> float:
        """Current speed, m/s."""

    @abc.abstractmethod
    def advance(self, dt_s: float) -> float:
        """Advance by ``dt_s`` seconds; return the distance travelled (m)."""


class StaticMobility(MobilityModel):
    """A user that never moves (snapshot / Monte-Carlo drop analyses)."""

    def __init__(self, position: np.ndarray) -> None:
        self._position = np.asarray(position, dtype=float).reshape(2).copy()

    @property
    def position(self) -> np.ndarray:
        return self._position.copy()

    @property
    def speed_m_s(self) -> float:
        return 0.0

    def advance(self, dt_s: float) -> float:
        check_non_negative("dt_s", dt_s)
        return 0.0


class RandomDirectionMobility(MobilityModel):
    """Random-direction mobility with boundary reflection.

    Parameters
    ----------
    initial_position:
        Starting coordinates (m).
    bounds:
        Rectangular simulation region ``(xmin, xmax, ymin, ymax)``.
    speed_m_s:
        Constant speed, or a ``(low, high)`` range re-drawn at each epoch.
    mean_epoch_s:
        Mean duration between direction changes (exponential).
    rng:
        Random generator.
    """

    def __init__(
        self,
        initial_position: np.ndarray,
        bounds: Bounds,
        speed_m_s: float | Tuple[float, float] = 13.9,
        mean_epoch_s: float = 20.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._bounds = _check_bounds(bounds)
        self._position = np.asarray(initial_position, dtype=float).reshape(2).copy()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.mean_epoch_s = check_positive("mean_epoch_s", mean_epoch_s)
        if isinstance(speed_m_s, tuple):
            lo, hi = float(speed_m_s[0]), float(speed_m_s[1])
            if lo < 0 or hi < lo:
                raise ValueError("speed range must satisfy 0 <= low <= high")
            self._speed_range: Optional[Tuple[float, float]] = (lo, hi)
            self._speed = float(self._rng.uniform(lo, hi))
        else:
            self._speed_range = None
            self._speed = check_non_negative("speed_m_s", speed_m_s)
        self._direction = float(self._rng.uniform(0.0, 2.0 * math.pi))
        self._time_to_epoch = float(self._rng.exponential(self.mean_epoch_s))

    @property
    def position(self) -> np.ndarray:
        return self._position.copy()

    @property
    def speed_m_s(self) -> float:
        return self._speed

    @property
    def direction_rad(self) -> float:
        """Current heading in radians."""
        return self._direction

    def _redraw(self) -> None:
        self._direction = float(self._rng.uniform(0.0, 2.0 * math.pi))
        if self._speed_range is not None:
            self._speed = float(self._rng.uniform(*self._speed_range))
        self._time_to_epoch = float(self._rng.exponential(self.mean_epoch_s))

    def advance(self, dt_s: float) -> float:
        check_non_negative("dt_s", dt_s)
        remaining = dt_s
        travelled = 0.0
        xmin, xmax, ymin, ymax = self._bounds
        while remaining > 0.0:
            step = min(remaining, self._time_to_epoch)
            dx = self._speed * step * math.cos(self._direction)
            dy = self._speed * step * math.sin(self._direction)
            x, rx = _reflect(self._position[0] + dx, xmin, xmax)
            y, ry = _reflect(self._position[1] + dy, ymin, ymax)
            travelled += self._speed * step
            self._position[0] = x
            self._position[1] = y
            if rx or ry:
                # Reverse/regenerate heading after bouncing off the boundary.
                self._direction = float(self._rng.uniform(0.0, 2.0 * math.pi))
            self._time_to_epoch -= step
            remaining -= step
            if self._time_to_epoch <= 0.0:
                self._redraw()
        return travelled


class RandomWaypointMobility(MobilityModel):
    """Random-waypoint mobility within a rectangular region.

    Parameters
    ----------
    initial_position:
        Starting coordinates (m).
    bounds:
        Rectangular region ``(xmin, xmax, ymin, ymax)``.
    speed_range_m_s:
        ``(low, high)`` of the uniform speed drawn for each leg.
    pause_s:
        Fixed pause at each waypoint.
    rng:
        Random generator.
    """

    def __init__(
        self,
        initial_position: np.ndarray,
        bounds: Bounds,
        speed_range_m_s: Tuple[float, float] = (1.0, 13.9),
        pause_s: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._bounds = _check_bounds(bounds)
        self._position = np.asarray(initial_position, dtype=float).reshape(2).copy()
        lo, hi = float(speed_range_m_s[0]), float(speed_range_m_s[1])
        if lo <= 0 or hi < lo:
            raise ValueError("speed range must satisfy 0 < low <= high")
        self._speed_range = (lo, hi)
        self.pause_s = check_non_negative("pause_s", pause_s)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._pause_remaining = 0.0
        self._waypoint = self._draw_waypoint()
        self._speed = float(self._rng.uniform(lo, hi))

    def _draw_waypoint(self) -> np.ndarray:
        xmin, xmax, ymin, ymax = self._bounds
        return np.array(
            [self._rng.uniform(xmin, xmax), self._rng.uniform(ymin, ymax)]
        )

    @property
    def position(self) -> np.ndarray:
        return self._position.copy()

    @property
    def speed_m_s(self) -> float:
        return 0.0 if self._pause_remaining > 0.0 else self._speed

    @property
    def waypoint(self) -> np.ndarray:
        """Current destination waypoint."""
        return self._waypoint.copy()

    def advance(self, dt_s: float) -> float:
        check_non_negative("dt_s", dt_s)
        remaining = dt_s
        travelled = 0.0
        while remaining > 1e-12:
            if self._pause_remaining > 0.0:
                waited = min(self._pause_remaining, remaining)
                self._pause_remaining -= waited
                remaining -= waited
                continue
            to_waypoint = self._waypoint - self._position
            distance = float(np.hypot(*to_waypoint))
            if distance < 1e-9:
                self._waypoint = self._draw_waypoint()
                self._speed = float(self._rng.uniform(*self._speed_range))
                self._pause_remaining = self.pause_s
                continue
            max_step = self._speed * remaining
            step = min(max_step, distance)
            self._position += to_waypoint / distance * step
            travelled += step
            remaining -= step / self._speed
            if step >= distance - 1e-12:
                self._waypoint = self._draw_waypoint()
                self._speed = float(self._rng.uniform(*self._speed_range))
                self._pause_remaining = self.pause_s
        return travelled
