"""A small discrete-event simulation (DES) engine.

The dynamic system simulation the paper describes ("dynamic simulations which
takes into account of the user mobility, power control, and soft hand-off")
needs a process-oriented discrete-event kernel.  ``simpy`` is not available in
the reproduction environment, so this package provides a self-contained,
deterministic engine with a very similar programming model:

* :class:`~repro.des.core.Environment` — event queue and simulation clock.
* :class:`~repro.des.core.Event` / :class:`~repro.des.core.Timeout` —
  one-shot events with callbacks.
* :class:`~repro.des.core.Process` — generator-based processes that ``yield``
  events (timeouts, other events, other processes).
* :class:`~repro.des.queues.Store` / :class:`~repro.des.queues.Resource` —
  producer/consumer queues and counted resources.
* :class:`~repro.des.monitor.Monitor` — time-series probe.

Determinism: events scheduled for the same simulation time fire in FIFO order
of their scheduling (a monotonically increasing sequence number breaks ties),
which makes every simulation exactly reproducible for a fixed seed.
"""

from repro.des.core import (
    Environment,
    Event,
    Timeout,
    Process,
    Interrupt,
    SimulationError,
    AllOf,
    AnyOf,
)
from repro.des.queues import Store, PriorityStore, Resource
from repro.des.monitor import Monitor

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "AllOf",
    "AnyOf",
    "Store",
    "PriorityStore",
    "Resource",
    "Monitor",
]
