"""Producer/consumer queues and counted resources for the DES engine.

These primitives follow the ``simpy`` resource model: ``put``/``get`` (or
``request``/``release``) return events that a process can ``yield`` on; the
queue wakes waiters in FIFO order (priority order for
:class:`PriorityStore`).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.des.core import Environment, Event, SimulationError

__all__ = ["Store", "PriorityStore", "Resource"]


class StorePut(Event):
    """Event returned by :meth:`Store.put`; succeeds when the item is stored."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; succeeds with the retrieved item."""

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)


class Store:
    """Unbounded-or-bounded FIFO store of arbitrary items.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of items held; ``None`` means unbounded.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be at least 1 (or None for unbounded)")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    # -- internals ----------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if self.capacity is None or len(self.items) < self.capacity:
            self._store_item(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self._retrieve_item())
            return True
        return False

    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _retrieve_item(self) -> Any:
        return self.items.popleft()

    def _trigger(self) -> None:
        # Serve pending gets then pending puts until no more progress.
        progress = True
        while progress:
            progress = False
            while self._get_waiters and self.items:
                waiter = self._get_waiters.popleft()
                self._do_get(waiter)
                progress = True
            while self._put_waiters and (
                self.capacity is None or len(self.items) < self.capacity
            ):
                waiter = self._put_waiters.popleft()
                self._do_put(waiter)
                progress = True

    # -- public API -----------------------------------------------------------
    def put(self, item: Any) -> StorePut:
        """Store ``item``; the returned event fires once there is room."""
        event = StorePut(self, item)
        if not self._do_put(event):
            self._put_waiters.append(event)
        else:
            self._trigger()
        return event

    def get(self) -> StoreGet:
        """Retrieve the oldest item; the returned event fires when one exists."""
        event = StoreGet(self)
        if not self._do_get(event):
            self._get_waiters.append(event)
        else:
            self._trigger()
        return event


class PriorityStore(Store):
    """Store that yields items in ascending priority order.

    Items are inserted as ``(priority, item)`` pairs via :meth:`put_item`
    (or ``put`` with a tuple); ties are broken by insertion order.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        super().__init__(env, capacity)
        self._heap: List[Tuple[Any, int, Any]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def _store_item(self, item: Any) -> None:
        if not (isinstance(item, tuple) and len(item) == 2):
            raise TypeError("PriorityStore items must be (priority, item) tuples")
        priority, payload = item
        heapq.heappush(self._heap, (priority, next(self._counter), payload))

    def _retrieve_item(self) -> Any:
        priority, _, payload = heapq.heappop(self._heap)
        return payload

    def _do_put(self, event: StorePut) -> bool:
        if self.capacity is None or len(self._heap) < self.capacity:
            self._store_item(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self._heap:
            event.succeed(self._retrieve_item())
            return True
        return False

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._get_waiters and self._heap:
                waiter = self._get_waiters.popleft()
                self._do_get(waiter)
                progress = True
            while self._put_waiters and (
                self.capacity is None or len(self._heap) < self.capacity
            ):
                waiter = self._put_waiters.popleft()
                self._do_put(waiter)
                progress = True

    def put_item(self, priority: Any, item: Any) -> StorePut:
        """Convenience wrapper: ``put((priority, item))``."""
        return self.put((priority, item))


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.released = False

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """Counted resource with FIFO request queue.

    A process acquires one unit via ``yield resource.request()`` and frees it
    with :meth:`release` (or by using the request as a context manager).
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.env = env
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self.queue: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of units currently in use."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        """Request one unit of the resource."""
        event = ResourceRequest(self)
        if len(self.users) < self.capacity:
            self.users.append(event)
            event.succeed()
        else:
            self.queue.append(event)
        return event

    def release(self, request: ResourceRequest) -> None:
        """Release a previously granted (or still queued) request."""
        if request.released:
            return
        request.released = True
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        else:
            raise SimulationError("released a request unknown to this resource")
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()
