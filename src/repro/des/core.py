"""Core of the discrete-event simulation engine.

The engine is a bucketed event-list kernel: an :class:`Environment` owns a
priority queue of *unique* ``(time, priority)`` keys plus a FIFO bucket of
events per key, and :meth:`Environment.run` drains the buckets in key order,
advancing the clock and firing callbacks.  Events scheduled for the same
key are popped in scheduling order straight off their bucket — an
equal-time callback storm (ten thousand timeouts expiring on one frame
boundary) costs one heap operation for the whole storm instead of one
``heappop`` per event.  Processes are plain Python generators that
``yield`` events; the :class:`Process` wrapper resumes the generator
whenever the yielded event fires, mirroring the ``simpy`` programming
model.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Environment",
]


class SimulationError(Exception):
    """Raised for invalid uses of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    Attributes
    ----------
    cause:
        The value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


#: Event priority: events marked *urgent* fire before normal events scheduled
#: at the same time.  Used internally so that a process resumption happens
#: before ordinary same-time events.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot event that can succeed with a value or fail with an error.

    Callbacks appended to :attr:`callbacks` are invoked (with the event as
    sole argument) when the event is processed by the environment.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: Set when a failure was handled (prevents "unhandled failure" checks).
        self.defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Invalid before triggering."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when it failed)."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire with an exception."""
        if self._ok is not None:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of ``event`` (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError("negative delay in Timeout")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, priority=NORMAL, delay=delay)


class Initialize(Event):
    """Internal event used to start a :class:`Process`."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """Wraps a generator and resumes it whenever the yielded event fires.

    The process itself is an event that succeeds with the generator's return
    value (``StopIteration.value``) or fails with an uncaught exception.
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError("Process requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process: raise :class:`Interrupt` inside it.

        The interrupt is delivered as an urgent event so it pre-empts any
        other same-time activity.  Interrupting a finished process raises
        :class:`SimulationError`.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=URGENT)

    # -- generator driving -------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Detach from the old target (it may still hold a callback if the
        # wake-up came from an interrupt rather than from the target itself).
        if (
            self._target is not None
            and self._target is not event
            and self._target.callbacks is not None
        ):
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self.env._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                event.defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.env._active_process = None
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self._target = None
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(result, Event):
            self._target = None
            self._generator.close()
            self.fail(SimulationError(f"process yielded a non-event object: {result!r}"))
            return
        self._target = result
        if result.callbacks is not None:
            result.callbacks.append(self._resume)
        else:
            # Already processed: resume immediately via an urgent event.
            wakeup = Event(self.env)
            wakeup._ok = result._ok
            wakeup._value = result._value
            wakeup.defused = True
            wakeup.callbacks.append(self._resume)
            self.env.schedule(wakeup, priority=URGENT)


class ConditionValue(dict):
    """Mapping of event -> value for condition events (:class:`AllOf`)."""


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        self._fired: set = set()
        for ev in self._events:
            if not isinstance(ev, Event):
                raise TypeError("condition events must be Event instances")
        for ev in self._events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._check)
        # Degenerate case: no events at all.
        if not self._events and self._ok is None:
            self.succeed(ConditionValue())

    def _collect_values(self) -> ConditionValue:
        values = ConditionValue()
        for ev in self._events:
            if id(ev) in self._fired and ev._ok:
                values[ev] = ev._value
        return values

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Event that fires when *all* component events have fired."""

    def _check(self, event: Event) -> None:
        self._fired.add(id(event))
        if self._ok is not None:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if len(self._fired) >= len(self._events):
            self.succeed(self._collect_values())


class AnyOf(_Condition):
    """Event that fires as soon as *any* component event has fired."""

    def _check(self, event: Event) -> None:
        self._fired.add(id(event))
        if self._ok is not None:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect_values())


class Environment:
    """Simulation environment: clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.
    hooks:
        Optional :class:`repro.utils.hooks.SimHooks` observer notified of
        event scheduling (:meth:`~repro.utils.hooks.SimHooks.event_scheduled`),
        event dispatch and unhandled event failures.  ``None`` (the default)
        keeps the engine hook-free: every dispatch point guards with a
        single ``is not None`` branch, so the default path stays
        allocation- and call-free.

    Examples
    --------
    >>> env = Environment()
    >>> log = []
    >>> def proc(env):
    ...     yield env.timeout(2.0)
    ...     log.append(env.now)
    >>> _ = env.process(proc(env))
    >>> env.run()
    >>> log
    [2.0]
    """

    def __init__(self, initial_time: float = 0.0, hooks: Optional[Any] = None) -> None:
        self._now = float(initial_time)
        #: Heap of *unique* ``(time, priority)`` keys with a pending bucket.
        self._queue: list = []
        #: ``(time, priority) -> deque of events`` in scheduling (FIFO) order.
        self._buckets: dict = {}
        self._active_process: Optional[Process] = None
        #: Optional SimHooks observer (see class docstring); assignable.
        self.hooks = hooks

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Register ``generator`` as a new simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Insert ``event`` into the queue ``delay`` time units from now.

        Events sharing a ``(time, priority)`` key are appended to that key's
        FIFO bucket; the key itself enters the heap only once, so scheduling
        (and later popping) an equal-time storm stays O(1) amortised per
        event.
        """
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        key = (self._now + delay, priority)
        bucket = self._buckets.get(key)
        if bucket is None:
            # Singleton buckets hold the bare event — the common all-unique-
            # times workload then never pays for a deque allocation.
            self._buckets[key] = event
            heapq.heappush(self._queue, key)
        elif type(bucket) is deque:
            bucket.append(event)
        else:
            self._buckets[key] = deque((bucket, event))
        if self.hooks is not None:
            self.hooks.event_scheduled(key[0], priority, len(self._queue))

    def _purge_head(self):
        """Return the head key with a non-empty bucket, dropping stale keys.

        A key whose bucket drained while :meth:`run` had to yield to an
        urgent insertion is left in the heap (removing it from the middle
        would cost O(n)); it is discarded lazily here.  Returns ``None``
        when the queue is empty.
        """
        queue = self._queue
        buckets = self._buckets
        while queue:
            key = queue[0]
            if buckets[key]:
                return key
            del buckets[key]
            heapq.heappop(queue)
        return None

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` when the queue is empty)."""
        key = self._purge_head()
        if key is None:
            return float("inf")
        return key[0]

    def step(self) -> None:
        """Process exactly one event.

        Raises
        ------
        SimulationError
            If the queue is empty, or an event failed with no handler.
        """
        key = self._purge_head()
        if key is None:
            raise SimulationError("no scheduled events")
        bucket = self._buckets[key]
        if type(bucket) is deque:
            event = bucket.popleft()
            if not bucket:
                del self._buckets[key]
                heapq.heappop(self._queue)
        else:
            event = bucket
            del self._buckets[key]
            heapq.heappop(self._queue)
        self._now = key[0]
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            return
        if self.hooks is not None:
            self.hooks.event_dispatched(self._now, len(callbacks))
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            if self.hooks is not None:
                self.hooks.event_error(self._now, event._value)
            raise event._value

    def run(self, until: Optional[float] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue drains.
            * a number — run until the clock reaches that time.
            * an :class:`Event` — run until that event is processed and
              return its value (re-raising its exception on failure).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError("until lies in the past")

        queue = self._queue
        buckets = self._buckets
        heappop = heapq.heappop
        # Cached for the drain loops: reassigning ``hooks`` mid-run takes
        # effect on the next run() call, not mid-storm.
        hooks = self.hooks
        while queue:
            if stop_event is not None and stop_event.processed:
                break
            key = queue[0]
            bucket = buckets[key]
            if not bucket:  # stale key left behind by an interrupted drain
                del buckets[key]
                heappop(queue)
                continue
            if stop_time is not None and key[0] > stop_time:
                self._now = stop_time
                break
            # Drain the head key's whole bucket without re-entering step():
            # one heap operation serves every event of an equal-time
            # callback storm.  Ordering is preserved exactly — a callback
            # scheduling at the same key appends to this bucket (FIFO, as
            # the old per-event heap ordered it), while an urgent or
            # earlier event creates a *smaller* key at the heap head, which
            # the per-event check below notices so the batch yields to it.
            self._now = key[0]
            if type(bucket) is not deque:
                # Singleton fast path: remove the key before dispatch, as
                # step() does.
                del buckets[key]
                heappop(queue)
                event = bucket
                callbacks, event.callbacks = event.callbacks, None
                if callbacks is not None:
                    if hooks is not None:
                        hooks.event_dispatched(self._now, len(callbacks))
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event.defused:
                        if hooks is not None:
                            hooks.event_error(self._now, event._value)
                        raise event._value
                continue
            while bucket:
                event = bucket.popleft()
                callbacks, event.callbacks = event.callbacks, None
                if callbacks is not None:
                    if hooks is not None:
                        hooks.event_dispatched(self._now, len(callbacks))
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event.defused:
                        if hooks is not None:
                            hooks.event_error(self._now, event._value)
                        raise event._value
                if (stop_event is not None and stop_event.processed) or (
                    queue[0] is not key
                ):
                    break
            if not bucket and queue and queue[0] is key:
                del buckets[key]
                heappop(queue)
        else:
            if stop_time is not None:
                self._now = stop_time

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) finished but the event never triggered"
                )
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None
