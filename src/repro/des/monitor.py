"""Time-series probes for discrete-event simulations."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.des.core import Environment
from repro.utils.stats import RunningStats, TimeWeightedStats

__all__ = ["Monitor"]


class Monitor:
    """Records ``(time, value)`` samples and summary statistics.

    Parameters
    ----------
    env:
        Environment whose clock timestamps the samples; may be ``None`` when
        times are supplied explicitly.
    name:
        Optional label used in reports.
    keep_series:
        When False only the streaming statistics are kept (saves memory in
        long runs).
    """

    def __init__(
        self,
        env: Optional[Environment] = None,
        name: str = "",
        keep_series: bool = True,
    ) -> None:
        self.env = env
        self.name = name
        self.keep_series = keep_series
        self._times: List[float] = []
        self._values: List[float] = []
        self.stats = RunningStats()
        self.time_weighted = TimeWeightedStats()

    def record(self, value: float, time: Optional[float] = None) -> None:
        """Record one sample at ``time`` (defaults to the environment clock)."""
        if time is None:
            if self.env is None:
                raise ValueError("no environment attached; time must be given")
            time = self.env.now
        if self.keep_series:
            self._times.append(float(time))
            self._values.append(float(value))
        self.stats.add(value)
        self.time_weighted.record(time, value)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return self.stats.count

    @property
    def mean(self) -> float:
        """Sample mean of the recorded values."""
        return self.stats.mean

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the recorded ``(times, values)`` arrays."""
        if not self.keep_series:
            raise RuntimeError("series were not retained (keep_series=False)")
        return np.asarray(self._times), np.asarray(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Monitor(name={self.name!r}, count={self.count}, mean={self.mean:.4g})"
