"""Central system configuration.

:class:`SystemConfig` bundles every physical-layer, radio-network and MAC
parameter of the reproduction.  All experiments build their scenarios from a
(possibly tweaked) ``SystemConfig`` so the parameter values used for every
figure/table are recorded in one place (see EXPERIMENTS.md).

The defaults follow the cdma2000 SR1 assumptions of the paper's references
[1, 2]; parameters that the paper leaves to its companion technical report are
marked in DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import constants
from repro.utils.units import db_to_linear
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = ["PhyConfig", "RadioConfig", "MacConfig", "SystemConfig"]


@dataclass(frozen=True)
class PhyConfig:
    """Adaptive physical-layer (VTAOC) parameters."""

    #: Number of VTAOC transmission modes.
    num_modes: int = constants.VTAOC_NUM_MODES
    #: Target BER maintained by the constant-BER adaptation (SCH).
    target_ber: float = constants.TARGET_BER
    #: Coding gain of the orthogonal coding stage, dB.
    coding_gain_db: float = 3.0
    #: Throughput of the FCH's fixed-rate code (``rho_f``), bits per symbol.
    fch_throughput: float = 1.0
    #: SCH local-mean symbol Es/Io (dB) experienced by a user whose FCH is
    #: exactly on its power-control target.  The per-user local-mean CSI is
    #: scaled from this reference by the achieved FCH quality, which is how
    #: the spatial dimension (good-channel users offer more throughput per
    #: resource unit) enters the burst admission problem.
    sch_reference_csi_db: float = 15.0
    #: Relative SCH/FCH symbol energy requirement ``gamma_s`` (linear),
    #: forward link.
    gamma_s_forward: float = 1.0
    #: Relative SCH/FCH symbol energy requirement ``gamma_s`` (linear),
    #: reverse link.
    gamma_s_reverse: float = 1.0

    def __post_init__(self) -> None:
        check_positive_int("num_modes", self.num_modes)
        check_probability("target_ber", self.target_ber)
        check_positive("fch_throughput", self.fch_throughput)
        check_positive("gamma_s_forward", self.gamma_s_forward)
        check_positive("gamma_s_reverse", self.gamma_s_reverse)

    @property
    def sch_reference_csi(self) -> float:
        """SCH reference local-mean CSI as a linear ratio."""
        return float(db_to_linear(self.sch_reference_csi_db))


@dataclass(frozen=True)
class RadioConfig:
    """Radio-network (cells, propagation, power control) parameters."""

    #: Number of rings of cells around the centre cell (1 ring = 7 cells).
    num_rings: int = 1
    #: Cell radius (centre to vertex), metres.
    cell_radius_m: float = 1000.0
    #: Wrap the layout so edge cells see a full interference tier.
    wraparound: bool = True

    #: Path-loss exponent and reference loss of the log-distance model.
    path_loss_exponent: float = constants.PATH_LOSS_EXPONENT
    path_loss_reference_db: float = constants.PATH_LOSS_REFERENCE_DB
    path_loss_reference_distance_m: float = constants.PATH_LOSS_REFERENCE_DISTANCE_M
    #: Log-normal shadowing standard deviation (dB) and decorrelation distance.
    shadowing_std_db: float = constants.SHADOWING_STD_DB
    shadowing_decorrelation_m: float = constants.SHADOWING_DECORRELATION_DISTANCE_M
    #: Inter-site shadowing correlation for the same mobile.
    shadowing_site_correlation: float = 0.5
    #: Maximum Doppler frequency of the fast fading, Hz.
    doppler_hz: float = 10.0

    #: Base-station power budget and overheads.
    bs_max_tx_power_w: float = constants.BS_MAX_TX_POWER_W
    bs_common_channel_fraction: float = constants.BS_COMMON_CHANNEL_FRACTION
    bs_pilot_fraction: float = 0.10
    #: Maximum fraction of the traffic power budget a single FCH may consume
    #: (per-link cap; edge users may be power-limited).
    fch_max_power_fraction: float = 0.10
    #: Mobile power amplifier limit, watts.
    ms_max_tx_power_w: float = constants.MS_MAX_TX_POWER_W
    #: Reverse-link rise-over-thermal ceiling, dB (defines ``L_max``).
    max_rise_over_thermal_db: float = constants.REVERSE_LINK_MAX_RISE_DB

    #: System bandwidth and FCH numerology.
    bandwidth_hz: float = constants.SYSTEM_BANDWIDTH_HZ
    chip_rate_hz: float = constants.CHIP_RATE_HZ
    fch_bit_rate_bps: float = constants.FCH_BIT_RATE_BPS
    #: FCH Eb/Io target, dB.
    fch_ebio_target_db: float = constants.FCH_EB_IO_TARGET_DB
    #: Downlink orthogonality factor (own-cell interference fraction).
    orthogonality_factor: float = 0.6
    #: Mobile receiver noise figure, dB.
    mobile_noise_figure_db: float = constants.MOBILE_NOISE_FIGURE_DB
    #: Base-station receiver noise figure, dB.
    bs_noise_figure_db: float = constants.BASE_STATION_NOISE_FIGURE_DB
    #: Reverse pilot overhead relative to the FCH power (``1/xi``).
    reverse_pilot_overhead: float = 0.25
    #: Rate of the low-rate dedicated control channel a data user keeps while
    #: waiting between bursts, relative to the full-rate FCH (cdma2000
    #: control-hold state).
    control_channel_rate_fraction: float = 0.125

    #: Soft hand-off parameters.
    handoff_add_threshold_db: float = constants.HANDOFF_ADD_THRESHOLD_DB
    handoff_drop_threshold_db: float = constants.HANDOFF_DROP_THRESHOLD_DB
    active_set_max_size: int = constants.ACTIVE_SET_MAX_SIZE
    reduced_active_set_size: int = constants.REDUCED_ACTIVE_SET_SIZE

    #: Power-control iteration count per frame.
    power_control_iterations: int = 25
    #: Power-control fixed-point stopping tolerance (max relative change of
    #: the per-cell totals between Yates iterations).
    power_control_tolerance: float = 1e-6

    def __post_init__(self) -> None:
        check_positive("cell_radius_m", self.cell_radius_m)
        check_positive("bs_max_tx_power_w", self.bs_max_tx_power_w)
        check_probability("bs_common_channel_fraction", self.bs_common_channel_fraction)
        check_probability("bs_pilot_fraction", self.bs_pilot_fraction)
        check_probability("fch_max_power_fraction", self.fch_max_power_fraction)
        check_positive("ms_max_tx_power_w", self.ms_max_tx_power_w)
        check_positive("bandwidth_hz", self.bandwidth_hz)
        check_positive("fch_bit_rate_bps", self.fch_bit_rate_bps)
        check_probability("orthogonality_factor", self.orthogonality_factor)
        check_non_negative("reverse_pilot_overhead", self.reverse_pilot_overhead)
        if not 0.0 < self.control_channel_rate_fraction <= 1.0:
            raise ValueError("control_channel_rate_fraction must lie in (0, 1]")
        check_positive_int("power_control_iterations", self.power_control_iterations)
        check_positive("power_control_tolerance", self.power_control_tolerance)

    @property
    def num_cells(self) -> int:
        """Number of cells in the hexagonal layout (1 ring = 7 cells)."""
        return 1 + 3 * self.num_rings * (self.num_rings + 1)

    @property
    def fch_processing_gain(self) -> float:
        """FCH processing gain ``W / Rf``."""
        return self.bandwidth_hz / self.fch_bit_rate_bps

    @property
    def fch_ebio_target(self) -> float:
        """FCH Eb/Io target as a linear ratio."""
        return float(db_to_linear(self.fch_ebio_target_db))

    @property
    def bs_noise_power_w(self) -> float:
        """Thermal noise power at the base-station receiver."""
        return constants.thermal_noise_power_w(self.bandwidth_hz, self.bs_noise_figure_db)

    @property
    def mobile_noise_power_w(self) -> float:
        """Thermal noise power at the mobile receiver."""
        return constants.thermal_noise_power_w(
            self.bandwidth_hz, self.mobile_noise_figure_db
        )

    @property
    def fch_pilot_power_ratio(self) -> float:
        """``xi``: FCH-to-pilot transmit power ratio at the mobile."""
        return 1.0 / self.reverse_pilot_overhead


@dataclass(frozen=True)
class MacConfig:
    """Burst-admission MAC parameters."""

    #: Scheduling frame duration, seconds.
    frame_duration_s: float = constants.FRAME_DURATION_S
    #: Maximum spreading-gain ratio ``M`` (``m_j`` ranges over ``0..M``).
    max_spreading_gain_ratio: int = constants.MAX_SPREADING_GAIN_RATIO
    #: Minimum admitted burst duration, seconds (eq. (24): bursts shorter than
    #: this are not worth their signalling overhead).
    min_burst_duration_s: float = 0.080
    #: Maximum burst duration granted in one admission, seconds.
    max_burst_duration_s: float = 0.640
    #: Forward-link reduced-active-set power adjustment factor ``alpha^(FL)``.
    alpha_forward: float = 1.0
    #: Reverse-link reduced-active-set power adjustment factor ``alpha^(RL)``.
    alpha_reverse: float = 1.0
    #: Shadowing margin ``kappa`` applied to projected neighbour-cell
    #: interference (eq. (15)), linear.
    neighbor_margin: float = 1.5
    #: Fraction of the forward-link power headroom the admission control may
    #: hand to SCH bursts (the remainder is kept as a power-control margin so
    #: FCH links of moving users are not starved by committed bursts).
    forward_admission_margin: float = 0.85
    #: Fraction of the reverse-link interference headroom usable by bursts.
    reverse_admission_margin: float = 0.85
    #: Delay-penalty scaling factor ``lambda`` of eq. (21).
    delay_penalty_scale: float = 0.5
    #: Delay-penalty forgetting factor ``mu`` of eq. (21).
    delay_forgetting_factor: float = 0.05
    #: MAC state timers (eq. (23)).
    t_active_to_control_hold_s: float = constants.MAC_ACTIVE_TO_CONTROL_HOLD_S
    t2_s: float = constants.MAC_T2_S
    t3_s: float = constants.MAC_T3_S
    d1_penalty_s: float = constants.MAC_D1_PENALTY_S
    d2_penalty_s: float = constants.MAC_D2_PENALTY_S

    def __post_init__(self) -> None:
        check_positive("frame_duration_s", self.frame_duration_s)
        check_positive_int("max_spreading_gain_ratio", self.max_spreading_gain_ratio)
        check_positive("min_burst_duration_s", self.min_burst_duration_s)
        check_positive("max_burst_duration_s", self.max_burst_duration_s)
        if self.max_burst_duration_s < self.min_burst_duration_s:
            raise ValueError("max_burst_duration_s must be >= min_burst_duration_s")
        check_positive("alpha_forward", self.alpha_forward)
        check_positive("alpha_reverse", self.alpha_reverse)
        check_positive("neighbor_margin", self.neighbor_margin)
        check_probability("forward_admission_margin", self.forward_admission_margin)
        check_probability("reverse_admission_margin", self.reverse_admission_margin)
        check_non_negative("delay_penalty_scale", self.delay_penalty_scale)
        check_non_negative("delay_forgetting_factor", self.delay_forgetting_factor)
        if not self.t2_s < self.t3_s:
            raise ValueError("t2_s must be smaller than t3_s")
        check_non_negative("d1_penalty_s", self.d1_penalty_s)
        check_non_negative("d2_penalty_s", self.d2_penalty_s)


@dataclass(frozen=True)
class SystemConfig:
    """Complete system configuration (PHY + radio + MAC)."""

    phy: PhyConfig = field(default_factory=PhyConfig)
    radio: RadioConfig = field(default_factory=RadioConfig)
    mac: MacConfig = field(default_factory=MacConfig)

    def with_overrides(self, **sections) -> "SystemConfig":
        """Return a copy with whole sections replaced.

        Example: ``config.with_overrides(radio=replace(config.radio, num_rings=2))``.
        """
        return replace(self, **sections)

    @property
    def num_cells(self) -> int:
        """Number of cells in the configured hexagonal layout."""
        return self.radio.num_cells

    @classmethod
    def small_test_system(cls) -> "SystemConfig":
        """A deliberately small configuration for fast unit/integration tests."""
        return cls(
            radio=RadioConfig(num_rings=1, cell_radius_m=800.0, power_control_iterations=12),
            mac=MacConfig(),
        )
