"""Multi-seed runs and parameter sweeps over the dynamic simulator."""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np

from repro.mac.schedulers.base import BurstScheduler
from repro.simulation.dynamic import DynamicSystemSimulator
from repro.simulation.metrics import SimulationResult
from repro.simulation.scenario import ScenarioConfig

__all__ = ["run_scenario", "average_results", "sweep_parameter"]

SchedulerFactory = Callable[[], BurstScheduler]


def run_scenario(
    scenario: ScenarioConfig,
    scheduler_factory: SchedulerFactory,
    num_seeds: int = 1,
) -> List[SimulationResult]:
    """Run ``scenario`` with ``num_seeds`` independent seeds.

    A fresh scheduler is created per run (schedulers may carry state, e.g.
    the round-robin pointer).
    """
    if num_seeds < 1:
        raise ValueError("num_seeds must be at least 1")
    results = []
    for offset in range(num_seeds):
        run_config = scenario.with_seed(scenario.seed + offset)
        simulator = DynamicSystemSimulator(run_config, scheduler_factory())
        results.append(simulator.run())
    return results


def average_results(results: Sequence[SimulationResult]) -> SimulationResult:
    """Average the numeric fields of several same-configuration runs."""
    if not results:
        raise ValueError("results must not be empty")
    first = results[0]

    def mean_of(attr: str) -> float:
        values = [getattr(r, attr) for r in results]
        finite = [v for v in values if v is not None and not math.isnan(v)]
        return float(np.mean(finite)) if finite else math.nan

    extra_keys = set()
    for r in results:
        extra_keys.update(r.extra.keys())
    extra = {
        key: float(np.mean([r.extra.get(key, math.nan) for r in results]))
        for key in sorted(extra_keys)
    }
    return SimulationResult(
        scheduler=first.scheduler,
        num_data_users=first.num_data_users,
        num_voice_users=first.num_voice_users,
        duration_s=mean_of("duration_s"),
        mean_packet_delay_s=mean_of("mean_packet_delay_s"),
        p90_packet_delay_s=mean_of("p90_packet_delay_s"),
        mean_forward_delay_s=mean_of("mean_forward_delay_s"),
        mean_reverse_delay_s=mean_of("mean_reverse_delay_s"),
        completed_packet_calls=int(round(mean_of("completed_packet_calls"))),
        carried_throughput_bps=mean_of("carried_throughput_bps"),
        offered_load_bps=mean_of("offered_load_bps"),
        mean_granted_m=mean_of("mean_granted_m"),
        grant_rate=mean_of("grant_rate"),
        mean_queue_length=mean_of("mean_queue_length"),
        forward_utilisation=mean_of("forward_utilisation"),
        reverse_rise_db=mean_of("reverse_rise_db"),
        fch_outage_fraction=mean_of("fch_outage_fraction"),
        handoff_events=int(round(mean_of("handoff_events"))),
        extra=extra,
    )


def sweep_parameter(
    base_scenario: ScenarioConfig,
    scheduler_factories: Dict[str, SchedulerFactory],
    loads: Iterable[int],
    num_seeds: int = 1,
) -> Dict[str, List[SimulationResult]]:
    """Sweep the data-user population for every scheduler.

    Returns a mapping ``scheduler label -> list of averaged results`` with
    one entry per value in ``loads``.
    """
    sweep: Dict[str, List[SimulationResult]] = {label: [] for label in scheduler_factories}
    for load in loads:
        scenario = base_scenario.with_load(int(load))
        for label, factory in scheduler_factories.items():
            runs = run_scenario(scenario, factory, num_seeds=num_seeds)
            sweep[label].append(average_results(runs))
    return sweep
