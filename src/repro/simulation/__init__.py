"""System-level simulators.

* :class:`~repro.simulation.dynamic.DynamicSystemSimulator` — the paper's
  "dynamic simulation": a frame-by-frame multi-cell simulation with user
  mobility, power control, soft hand-off, on/off voice background load,
  bursty packet-data traffic and per-frame burst admission on both links.
* :class:`~repro.simulation.snapshot.SnapshotSimulator` — Monte-Carlo drop
  analysis used for the capacity and coverage experiments.
* :mod:`~repro.simulation.scenario` — scenario configuration shared by both.
* :mod:`~repro.simulation.metrics` — metric collectors and result containers.
* :mod:`~repro.simulation.runner` — multi-seed sweeps.
"""

from repro.simulation.scenario import ScenarioConfig, TrafficConfig, MobilityConfig
from repro.simulation.metrics import MetricsCollector, SimulationResult
from repro.simulation.dynamic import DynamicSystemSimulator
from repro.simulation.snapshot import SnapshotSimulator, SnapshotResult
from repro.simulation.runner import run_scenario, sweep_parameter, average_results

__all__ = [
    "ScenarioConfig",
    "TrafficConfig",
    "MobilityConfig",
    "MetricsCollector",
    "SimulationResult",
    "DynamicSystemSimulator",
    "SnapshotSimulator",
    "SnapshotResult",
    "run_scenario",
    "sweep_parameter",
    "average_results",
]
