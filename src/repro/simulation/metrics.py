"""Metric collection for the system-level simulations.

The paper's evaluation reports *average packet delay*, *data user capacity*
and *coverage*; :class:`MetricsCollector` gathers everything needed to derive
those figures from a dynamic run:

* per-packet-call delay (arrival of the packet call until its last bit is
  served), separately per link;
* carried throughput, granted bursts, mean granted spreading-gain ratio;
* request blocking (pending requests that received nothing in a frame);
* cell loading (forward power utilisation, reverse rise over thermal);
* FCH outage (links that failed to reach their SIR target — the coverage
  ingredient).

Everything is streaming (constant memory) so long runs stay cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.mac.requests import LinkDirection
from repro.utils.stats import Histogram, RunningStats

__all__ = ["MetricsCollector", "SimulationResult"]


@dataclass
class SimulationResult:
    """Summary of one dynamic-simulation run.

    The attributes mirror the rows printed by the experiment harness; all
    delays are in seconds and rates in bits per second.
    """

    scheduler: str
    num_data_users: int
    num_voice_users: int
    duration_s: float
    mean_packet_delay_s: float
    p90_packet_delay_s: float
    mean_forward_delay_s: float
    mean_reverse_delay_s: float
    completed_packet_calls: int
    carried_throughput_bps: float
    offered_load_bps: float
    mean_granted_m: float
    grant_rate: float
    mean_queue_length: float
    forward_utilisation: float
    reverse_rise_db: float
    fch_outage_fraction: float
    handoff_events: int
    extra: Dict[str, float] = field(default_factory=dict)

    def as_record(self) -> Dict[str, object]:
        """Flat dict used by the table formatter."""
        record: Dict[str, object] = {
            "scheduler": self.scheduler,
            "data_users": self.num_data_users,
            "mean_delay_s": self.mean_packet_delay_s,
            "p90_delay_s": self.p90_packet_delay_s,
            "throughput_kbps": self.carried_throughput_bps / 1e3,
            "grant_rate": self.grant_rate,
            "mean_m": self.mean_granted_m,
            "fwd_util": self.forward_utilisation,
            "rev_rise_db": self.reverse_rise_db,
            "outage": self.fch_outage_fraction,
        }
        record.update(self.extra)
        return record


class MetricsCollector:
    """Streaming metric accumulator driven by the dynamic simulator."""

    def __init__(self, warmup_s: float = 0.0, delay_histogram_upper_s: float = 60.0) -> None:
        if warmup_s < 0.0:
            raise ValueError("warmup_s must be non-negative")
        self.warmup_s = float(warmup_s)
        self.delay_all = RunningStats()
        self.delay_histogram = Histogram(upper=delay_histogram_upper_s, bins=600)
        self.delay_per_link = {
            LinkDirection.FORWARD: RunningStats(),
            LinkDirection.REVERSE: RunningStats(),
        }
        self.granted_m = RunningStats()
        self.queue_length = RunningStats()
        self.forward_utilisation = RunningStats()
        self.reverse_rise_db = RunningStats()
        self.fch_outage = RunningStats()
        self.served_bits = 0.0
        self.offered_bits = 0.0
        self.completed_calls = 0
        self.grant_decisions = 0
        self.granted_requests = 0
        self.pending_request_frames = 0
        self._measure_start: Optional[float] = None
        self._measure_end: Optional[float] = None

    # -- helpers -------------------------------------------------------------------
    def _in_measurement(self, time_s: float) -> bool:
        return time_s >= self.warmup_s

    def _note_time(self, time_s: float) -> None:
        if not self._in_measurement(time_s):
            return
        if self._measure_start is None:
            self._measure_start = time_s
        self._measure_end = time_s

    @property
    def measured_duration_s(self) -> float:
        """Length of the measurement window seen so far."""
        if self._measure_start is None or self._measure_end is None:
            return 0.0
        return max(self._measure_end - self._measure_start, 0.0)

    # -- recording hooks (called by the simulator) -------------------------------------
    def record_packet_call_arrival(self, time_s: float, size_bits: float) -> None:
        """A packet call of ``size_bits`` arrived at ``time_s``."""
        self._note_time(time_s)
        if self._in_measurement(time_s):
            self.offered_bits += size_bits

    def record_packet_call_completion(
        self, arrival_s: float, completion_s: float, size_bits: float, link: LinkDirection
    ) -> None:
        """A packet call that arrived at ``arrival_s`` finished at ``completion_s``."""
        self._note_time(completion_s)
        if not self._in_measurement(arrival_s):
            return
        delay = max(0.0, completion_s - arrival_s)
        self.delay_all.add(delay)
        self.delay_histogram.add(min(delay, 59.999))
        self.delay_per_link[link].add(delay)
        self.served_bits += size_bits
        self.completed_calls += 1

    def record_frame(
        self,
        time_s: float,
        pending_requests: int,
        forward_utilisation: float,
        reverse_rise_db: float,
        fch_outage_fraction: float,
    ) -> None:
        """Per-frame system state."""
        self._note_time(time_s)
        if not self._in_measurement(time_s):
            return
        self.queue_length.add(pending_requests)
        self.forward_utilisation.add(forward_utilisation)
        self.reverse_rise_db.add(reverse_rise_db)
        self.fch_outage.add(fch_outage_fraction)

    def record_admission(
        self, time_s: float, num_pending: int, num_granted: int, granted_ms: np.ndarray
    ) -> None:
        """Outcome of one admission decision."""
        self._note_time(time_s)
        if not self._in_measurement(time_s):
            return
        self.grant_decisions += 1
        self.pending_request_frames += num_pending
        self.granted_requests += num_granted
        for m in np.asarray(granted_ms).ravel():
            if m >= 1:
                self.granted_m.add(float(m))

    # -- summary ---------------------------------------------------------------------------
    def summarise(
        self,
        scheduler: str,
        num_data_users: int,
        num_voice_users: int,
        handoff_events: int = 0,
        extra: Optional[Dict[str, float]] = None,
    ) -> SimulationResult:
        """Build the :class:`SimulationResult` of the finished run."""
        duration = self.measured_duration_s
        throughput = self.served_bits / duration if duration > 0 else 0.0
        offered = self.offered_bits / duration if duration > 0 else 0.0
        grant_rate = (
            self.granted_requests / self.pending_request_frames
            if self.pending_request_frames > 0
            else math.nan
        )
        return SimulationResult(
            scheduler=scheduler,
            num_data_users=num_data_users,
            num_voice_users=num_voice_users,
            duration_s=duration,
            mean_packet_delay_s=self.delay_all.mean,
            p90_packet_delay_s=self.delay_histogram.percentile(90.0),
            mean_forward_delay_s=self.delay_per_link[LinkDirection.FORWARD].mean,
            mean_reverse_delay_s=self.delay_per_link[LinkDirection.REVERSE].mean,
            completed_packet_calls=self.completed_calls,
            carried_throughput_bps=throughput,
            offered_load_bps=offered,
            mean_granted_m=self.granted_m.mean,
            grant_rate=grant_rate,
            mean_queue_length=self.queue_length.mean,
            forward_utilisation=self.forward_utilisation.mean,
            reverse_rise_db=self.reverse_rise_db.mean,
            fch_outage_fraction=self.fch_outage.mean,
            handoff_events=handoff_events,
            extra=dict(extra or {}),
        )
