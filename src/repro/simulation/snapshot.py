"""Monte-Carlo snapshot (drop) analysis.

For capacity and coverage questions a full dynamic simulation is unnecessary:
the classical approach is to generate many independent *drops* — random user
placements with random shadowing and stationary voice activity — and, in each
drop, run one burst admission decision with every data user requesting.  The
fraction of users that obtain at least a minimum data rate (averaged over
drops) is the *coverage*; the aggregate granted rate is the snapshot capacity.

This matches the way coverage is normally reported for CDMA data systems and
is how experiments F4 and T3 are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.cdma.entities import MobileStation, UserClass
from repro.cdma.network import CdmaNetwork
from repro.config import SystemConfig
from repro.geometry.hexgrid import HexagonalCellLayout
from repro.mac.admission import BurstAdmissionController
from repro.mac.requests import BurstRequest, LinkDirection
from repro.mac.schedulers.base import BurstScheduler
from repro.traffic.voice import OnOffVoiceSource
from repro.utils.rng import RngFactory
from repro.utils.stats import RunningStats
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["SnapshotResult", "SnapshotSimulator"]


@dataclass
class SnapshotResult:
    """Aggregated outcome of a batch of Monte-Carlo drops.

    Attributes
    ----------
    scheduler:
        Name of the scheduling policy used.
    num_drops:
        Number of independent drops.
    coverage:
        Mean fraction of data users granted at least ``min_rate_bps``.
    mean_granted_rate_bps:
        Mean granted SCH rate per requesting data user (zero when rejected).
    aggregate_throughput_bps:
        Mean aggregate granted rate per drop.
    grant_fraction:
        Mean fraction of requests granted a non-zero burst.
    fch_outage:
        Mean fraction of users whose FCH misses its SIR target.
    per_user_rates_bps:
        All per-user granted rates pooled across drops (for distributions).
    """

    scheduler: str
    num_drops: int
    coverage: float
    mean_granted_rate_bps: float
    aggregate_throughput_bps: float
    grant_fraction: float
    fch_outage: float
    per_user_rates_bps: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0))

    def as_record(self) -> Dict[str, object]:
        """Flat dict used by the table formatter."""
        return {
            "scheduler": self.scheduler,
            "drops": self.num_drops,
            "coverage": self.coverage,
            "mean_rate_kbps": self.mean_granted_rate_bps / 1e3,
            "agg_throughput_kbps": self.aggregate_throughput_bps / 1e3,
            "grant_fraction": self.grant_fraction,
            "fch_outage": self.fch_outage,
        }


class SnapshotSimulator:
    """Monte-Carlo drop simulator for coverage / snapshot-capacity analyses.

    Parameters
    ----------
    config:
        System configuration.
    scheduler:
        Scheduling policy under test.
    num_data_users_per_cell / num_voice_users_per_cell:
        Population per drop.
    burst_size_bits:
        Packet-call size every data user requests in a drop.
    link:
        Link on which the requests are placed.
    min_rate_bps:
        Rate threshold used for the coverage definition.
    seed:
        Master random seed.
    """

    def __init__(
        self,
        config: SystemConfig,
        scheduler: BurstScheduler,
        num_data_users_per_cell: int = 8,
        num_voice_users_per_cell: int = 10,
        burst_size_bits: float = 200_000.0,
        link: LinkDirection = LinkDirection.FORWARD,
        min_rate_bps: float = 38_400.0,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.scheduler = scheduler
        self.num_data_users_per_cell = check_positive_int(
            "num_data_users_per_cell", num_data_users_per_cell
        )
        if num_voice_users_per_cell < 0:
            raise ValueError("num_voice_users_per_cell must be non-negative")
        self.num_voice_users_per_cell = int(num_voice_users_per_cell)
        self.burst_size_bits = check_positive("burst_size_bits", burst_size_bits)
        self.link = link
        self.min_rate_bps = check_positive("min_rate_bps", min_rate_bps)
        self._rng_factory = RngFactory(seed)

    def _build_drop(self, rng: np.random.Generator) -> CdmaNetwork:
        radio = self.config.radio
        layout = HexagonalCellLayout(
            num_rings=radio.num_rings,
            cell_radius_m=radio.cell_radius_m,
            wraparound=radio.wraparound,
        )
        mobiles: List[MobileStation] = []
        index = 0
        voice_activity = OnOffVoiceSource().activity_factor
        for cell in range(layout.num_cells):
            for _ in range(self.num_data_users_per_cell):
                # Requesting data users hold the low-rate dedicated control
                # channel (they are waiting for a burst grant).
                mobiles.append(
                    MobileStation.static(
                        index,
                        layout.random_position_in_cell(cell, rng),
                        user_class=UserClass.DATA,
                        fch_pilot_power_ratio=radio.fch_pilot_power_ratio,
                        fch_rate_factor=radio.control_channel_rate_fraction,
                    )
                )
                index += 1
            for _ in range(self.num_voice_users_per_cell):
                mobile = MobileStation.static(
                    index,
                    layout.random_position_in_cell(cell, rng),
                    user_class=UserClass.VOICE,
                    fch_pilot_power_ratio=radio.fch_pilot_power_ratio,
                )
                # Stationary on/off state.
                mobile.fch_active = bool(rng.random() < voice_activity)
                mobiles.append(mobile)
                index += 1
        return CdmaNetwork(self.config, mobiles, rng, layout)

    def run_drops(self, num_drops: int = 20) -> SnapshotResult:
        """Run ``num_drops`` independent drops and aggregate the results."""
        check_positive_int("num_drops", num_drops)
        controller_template = BurstAdmissionController(self.config, self.scheduler)
        coverage = RunningStats()
        grant_fraction = RunningStats()
        outage = RunningStats()
        aggregate = RunningStats()
        all_rates: List[float] = []

        for _ in range(num_drops):
            rng = self._rng_factory.child("drop")
            network = self._build_drop(rng)
            snapshot = network.snapshot()
            data_indices = network.data_mobile_indices()
            requests = [
                BurstRequest(
                    mobile_index=int(j),
                    link=self.link,
                    size_bits=self.burst_size_bits,
                    arrival_time_s=0.0,
                )
                for j in data_indices
            ]
            _, grants = controller_template.decide(snapshot, requests, self.link)
            rate_by_mobile = {g.request.mobile_index: g.rate_bps for g in grants}
            rates = np.asarray(
                [rate_by_mobile.get(int(j), 0.0) for j in data_indices], dtype=float
            )
            all_rates.extend(rates.tolist())
            coverage.add(float(np.mean(rates >= self.min_rate_bps)))
            grant_fraction.add(float(np.mean(rates > 0.0)))
            aggregate.add(float(rates.sum()))
            outage.add(snapshot.fch_outage_fraction())

        rates_arr = np.asarray(all_rates, dtype=float)
        return SnapshotResult(
            scheduler=self.scheduler.name,
            num_drops=num_drops,
            coverage=coverage.mean,
            mean_granted_rate_bps=float(rates_arr.mean()) if rates_arr.size else 0.0,
            aggregate_throughput_bps=aggregate.mean,
            grant_fraction=grant_fraction.mean,
            fch_outage=outage.mean,
            per_user_rates_bps=rates_arr,
        )
