"""Scenario configuration of the system-level simulations."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.config import SystemConfig
from repro.utils.validation import (
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_probability,
)

__all__ = ["TrafficConfig", "MobilityConfig", "PlacementConfig", "ScenarioConfig"]


@dataclass(frozen=True)
class TrafficConfig:
    """Traffic-mix parameters of one scenario.

    Attributes
    ----------
    mean_reading_time_s:
        Mean idle (reading) time between packet calls of a data user.
    packet_call_shape / packet_call_min_bits / packet_call_max_bits:
        Truncated-Pareto packet-call size parameters.
    forward_fraction:
        Probability that a packet call is a forward-link (downlink) burst;
        the remainder are reverse-link bursts.
    data_priority:
        Traffic-type priority ``Delta_j`` assigned to data bursts.
    """

    mean_reading_time_s: float = 4.0
    packet_call_shape: float = 1.8
    packet_call_min_bits: float = 24_000.0
    packet_call_max_bits: float = 1_200_000.0
    forward_fraction: float = 0.7
    data_priority: float = 0.0

    def __post_init__(self) -> None:
        check_positive("mean_reading_time_s", self.mean_reading_time_s)
        check_positive("packet_call_shape", self.packet_call_shape)
        check_positive("packet_call_min_bits", self.packet_call_min_bits)
        check_positive("packet_call_max_bits", self.packet_call_max_bits)
        check_probability("forward_fraction", self.forward_fraction)
        check_non_negative("data_priority", self.data_priority)


@dataclass(frozen=True)
class MobilityConfig:
    """User mobility parameters."""

    #: (low, high) uniform speed range in m/s (3 km/h – 50 km/h by default).
    speed_range_m_s: Tuple[float, float] = (0.83, 13.9)
    #: Mean time between direction changes.
    mean_epoch_s: float = 20.0

    def __post_init__(self) -> None:
        lo, hi = self.speed_range_m_s
        if lo < 0.0 or hi < lo:
            raise ValueError("speed_range_m_s must satisfy 0 <= low <= high")
        check_positive("mean_epoch_s", self.mean_epoch_s)


@dataclass(frozen=True)
class PlacementConfig:
    """User-placement model of one scenario.

    ``kind="uniform"`` (the default) drops every user uniformly inside its
    home cell — the paper's placement, bit-identical to the historic
    hard-wired behaviour.  ``kind="hotspot"`` concentrates a fraction of the
    users of the hotspot cell near its base station (see
    :class:`repro.simulation.placement.HotspotPlacement`); the hotspot
    parameters are ignored by the uniform model.
    """

    kind: str = "uniform"
    #: Probability that a hotspot-cell user is placed inside the hotspot disc.
    hotspot_fraction: float = 0.5
    #: Hotspot disc radius as a fraction of the cell radius.
    hotspot_radius_fraction: float = 0.3
    #: Index of the cell hosting the hotspot (0 = centre cell).
    hotspot_cell: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "hotspot"):
            raise ValueError(
                f"placement kind must be 'uniform' or 'hotspot', got {self.kind!r}"
            )
        check_probability("hotspot_fraction", self.hotspot_fraction)
        if not 0.0 < self.hotspot_radius_fraction <= 1.0:
            raise ValueError("hotspot_radius_fraction must lie in (0, 1]")
        check_non_negative_int("hotspot_cell", self.hotspot_cell)


@dataclass(frozen=True)
class ScenarioConfig:
    """Complete description of one dynamic-simulation run.

    Attributes
    ----------
    system:
        Radio/PHY/MAC configuration.
    num_data_users_per_cell / num_voice_users_per_cell:
        Population sizes (per cell; total = per-cell value times cell count).
    duration_s:
        Simulated time after the warm-up.
    warmup_s:
        Initial transient excluded from the metrics.
    seed:
        Master random seed.
    traffic / mobility / placement:
        Traffic-mix, mobility and user-placement parameters.
    warm_start_power_control:
        Seed each frame's power-control fixed point with the previous
        frame's solution (see :class:`repro.cdma.network.CdmaNetwork`).
        Cold start stays the default so seed numerics remain bit-for-bit
        reproducible; warm start agrees within the solver tolerance.
    warm_start_solver:
        Seed each scheduling decision's incumbent with the previous frame's
        surviving assignment (see
        :class:`repro.mac.schedulers.JabaSdScheduler`); tightens
        branch-and-bound pruning under heavy load.  Cold start stays the
        default and is bit-identical; schedulers without warm-start support
        ignore the flag.
    power_control_tolerance:
        Override of ``system.radio.power_control_tolerance`` for this
        scenario; ``None`` keeps the radio-config value.
    batched_admission:
        Build the burst-admission measurement matrices with the queue-wide
        batched kernels (default).  ``False`` selects the scalar oracle
        path; both are bit-identical.
    batched_fleet:
        Run the per-user simulation layer (voice on/off sources, packet-call
        traffic, MAC state machines, mobility) as structure-of-arrays fleet
        kernels (:class:`repro.traffic.VoiceFleet`,
        :class:`repro.traffic.DataTrafficFleet`,
        :class:`repro.mac.MacStateFleet`,
        :class:`repro.geometry.mobility.RandomDirectionFleet`) instead of
        per-user Python objects.  The fleets own their own seeded random
        streams, so a fleet run is statistically equivalent — same user
        placement, same propagation streams, same traffic/mobility
        distributions — but not sample-path identical to the scalar path;
        the scalar default stays bit-for-bit reproducible.  See the fleet
        RNG contract in ``benchmarks/README.md``.
    trace_path:
        When set, the dynamic simulator records its telemetry event stream
        (run/frame/stage/admission events, see
        :mod:`repro.utils.recorder`) to this JSONL file.  ``None`` (the
        default) records nothing and keeps the frame loop on its
        hook-free fast path.  An explicit ``hooks=`` argument to
        :class:`~repro.simulation.dynamic.DynamicSystemSimulator` takes
        precedence over this path.
    """

    system: SystemConfig = field(default_factory=SystemConfig)
    num_data_users_per_cell: int = 8
    num_voice_users_per_cell: int = 10
    duration_s: float = 30.0
    warmup_s: float = 2.0
    seed: int = 0
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    mobility: MobilityConfig = field(default_factory=MobilityConfig)
    placement: PlacementConfig = field(default_factory=PlacementConfig)
    warm_start_power_control: bool = False
    warm_start_solver: bool = False
    power_control_tolerance: Optional[float] = None
    batched_admission: bool = True
    batched_fleet: bool = False
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        check_non_negative_int("num_data_users_per_cell", self.num_data_users_per_cell)
        check_non_negative_int("num_voice_users_per_cell", self.num_voice_users_per_cell)
        check_positive("duration_s", self.duration_s)
        check_non_negative("warmup_s", self.warmup_s)
        if self.power_control_tolerance is not None:
            check_positive("power_control_tolerance", self.power_control_tolerance)

    def effective_system(self) -> SystemConfig:
        """The system configuration with the scenario-level overrides applied."""
        if self.power_control_tolerance is None:
            return self.system
        return self.system.with_overrides(
            radio=replace(
                self.system.radio,
                power_control_tolerance=self.power_control_tolerance,
            )
        )

    def with_load(self, num_data_users_per_cell: int) -> "ScenarioConfig":
        """Copy of the scenario with a different data-user population."""
        return replace(self, num_data_users_per_cell=num_data_users_per_cell)

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """Copy of the scenario with a different master seed."""
        return replace(self, seed=seed)

    @property
    def num_cells(self) -> int:
        """Number of cells in the scenario's hexagonal layout."""
        return self.system.num_cells

    @property
    def total_data_users(self) -> int:
        """Total number of data users across all cells."""
        return self.num_data_users_per_cell * self.num_cells

    @property
    def total_voice_users(self) -> int:
        """Total number of voice users across all cells."""
        return self.num_voice_users_per_cell * self.num_cells

    @classmethod
    def fast_test(cls, **overrides) -> "ScenarioConfig":
        """A deliberately tiny scenario for unit / integration tests."""
        defaults = dict(
            system=SystemConfig.small_test_system(),
            num_data_users_per_cell=3,
            num_voice_users_per_cell=3,
            duration_s=3.0,
            warmup_s=0.5,
            seed=7,
        )
        defaults.update(overrides)
        return cls(**defaults)
