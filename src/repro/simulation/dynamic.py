"""The dynamic system simulation (abstract + Section 1 of the paper).

"...the system is evaluated by dynamic simulations which takes into account
of the user mobility, power control, and soft hand-off."

:class:`DynamicSystemSimulator` runs a frame-by-frame multi-cell simulation:

* voice users toggle their FCH activity with the on/off model;
* data users generate packet calls (bursts) according to the WWW traffic
  model; every packet call becomes a burst request on the forward or the
  reverse link;
* every scheduling frame the burst admission controller (measurement +
  scheduling sub-layers) decides which pending requests get a supplemental
  channel and at which spreading-gain ratio; the committed SCH powers are
  held in the network for the burst duration and therefore shape the power
  control and interference of the following frames;
* users move, shadowing and fast fading evolve, soft hand-off active sets are
  updated, FCH power control runs every frame.

The per-packet-call delay (arrival until the last bit is served), carried
throughput, loading and outage statistics are gathered by
:class:`repro.simulation.metrics.MetricsCollector`.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cdma.entities import MobileStation, UserClass
from repro.cdma.network import CdmaNetwork, NetworkSnapshot
from repro.geometry.hexgrid import HexagonalCellLayout
from repro.geometry.mobility import (
    FleetMemberMobility,
    RandomDirectionFleet,
    RandomDirectionMobility,
)
from repro.mac.admission import BurstAdmissionController
from repro.mac.requests import BurstGrant, BurstRequest, LinkDirection
from repro.mac.schedulers.base import BurstScheduler
from repro.mac.states import MacState, MacStateFleet, MacStateMachine
from repro.simulation.metrics import MetricsCollector, SimulationResult
from repro.simulation.placement import placement_from_config
from repro.simulation.scenario import ScenarioConfig
from repro.traffic.data import DataTrafficFleet, PacketCallDataSource, TruncatedParetoSize
from repro.traffic.voice import OnOffVoiceSource, VoiceFleet
from repro.utils.hooks import CompositeHooks, SimHooks, StageTimingHooks
from repro.utils.recorder import (
    EventRecorder,
    JsonlSink,
    RecorderHooks,
    current_recorder,
)
from repro.utils.rng import RngFactory

__all__ = ["DynamicSystemSimulator"]


@dataclass
class _ActiveBurst:
    """A granted burst currently on air."""

    grant: BurstGrant
    end_s: float


class DynamicSystemSimulator:
    """Frame-by-frame dynamic simulation of the complete system.

    Parameters
    ----------
    scenario:
        Scenario configuration (population, traffic, mobility, duration).
    scheduler:
        Scheduling policy under test.
    hooks:
        Optional :class:`repro.utils.hooks.SimHooks` observer of the frame
        pipeline (per-stage enter/exit with wall time, one ``frame`` event
        per frame, per-decision admission outcomes).  When ``None`` (the
        default) the simulator resolves a recorder instead: a
        ``scenario.trace_path`` records the run to that JSONL file, else an
        ambient recorder installed via
        :func:`repro.utils.recorder.use_recorder` (the campaign engine's
        channel) is used; with neither, the frame loop runs hook-free at
        zero observability overhead.
    """

    def __init__(
        self,
        scenario: ScenarioConfig,
        scheduler: BurstScheduler,
        hooks: Optional[SimHooks] = None,
    ) -> None:
        self.scenario = scenario
        self.scheduler = scheduler
        #: Recorder owned by this simulator (created for ``trace_path``);
        #: closed — and its trace file published — at the end of :meth:`run`.
        self._owned_recorder: Optional[EventRecorder] = None
        if hooks is None:
            if scenario.trace_path:
                self._owned_recorder = EventRecorder(
                    JsonlSink(scenario.trace_path, atomic=True)
                )
                hooks = RecorderHooks(self._owned_recorder)
            else:
                ambient = current_recorder()
                if ambient is not None:
                    hooks = RecorderHooks(ambient)
        self.hooks = hooks
        self.batched_fleet = bool(scenario.batched_fleet)
        self._rng_factory = RngFactory(scenario.seed)
        system = scenario.effective_system()
        self.system = system
        radio = system.radio

        self.layout = HexagonalCellLayout(
            num_rings=radio.num_rings,
            cell_radius_m=radio.cell_radius_m,
            wraparound=radio.wraparound,
        )
        bounds = self.layout.bounding_box()
        # RNG contract: the scalar streams are spawned in the seed order
        # (placement, mobility, propagation, traffic, burst-direction) in
        # BOTH modes, so the default scalar path stays bit-identical and a
        # fleet run shares the user placement and the propagation
        # (shadowing / fast-fading) realisations with its scalar twin.  The
        # fleet streams are spawned strictly AFTER every scalar stream.
        placement_rng = self._rng_factory.child("placement")
        mobility_rng = self._rng_factory.child("mobility")
        propagation_rng = self._rng_factory.child("propagation")
        traffic_rng = self._rng_factory.child("traffic")
        self._direction_rng = self._rng_factory.child("burst-direction")
        if self.batched_fleet:
            fleet_mobility_rng = self._rng_factory.child("fleet-mobility")
            fleet_voice_rng = self._rng_factory.child("fleet-voice")
            fleet_data_rng = self._rng_factory.child("fleet-data")

        # -- population --------------------------------------------------------
        # Placement first (one stream, identical in both modes), then the
        # mobility back-end, then the entity objects.  The placement model is
        # pluggable (scenario.placement); the default uniform model issues
        # exactly one layout.random_position_in_cell call per user, so the
        # placement stream is consumed bit-identically to the historic
        # hard-wired loop.
        placement_model = placement_from_config(scenario.placement)
        self.data_user_indices: List[int] = []
        self.voice_user_indices: List[int] = []
        user_classes: List[UserClass] = []
        positions: List[np.ndarray] = []
        index = 0
        for cell in range(self.layout.num_cells):
            for _ in range(scenario.num_data_users_per_cell):
                positions.append(
                    placement_model.position(self.layout, cell, placement_rng)
                )
                user_classes.append(UserClass.DATA)
                self.data_user_indices.append(index)
                index += 1
            for _ in range(scenario.num_voice_users_per_cell):
                positions.append(
                    placement_model.position(self.layout, cell, placement_rng)
                )
                user_classes.append(UserClass.VOICE)
                self.voice_user_indices.append(index)
                index += 1
        num_users = index

        self.mobility_fleet: Optional[RandomDirectionFleet] = None
        if self.batched_fleet:
            self.mobility_fleet = RandomDirectionFleet(
                np.asarray(positions, dtype=float).reshape(num_users, 2),
                bounds,
                speed_m_s=scenario.mobility.speed_range_m_s,
                mean_epoch_s=scenario.mobility.mean_epoch_s,
                rng=fleet_mobility_rng,
            )
            mobility_models = [
                FleetMemberMobility(self.mobility_fleet, j) for j in range(num_users)
            ]
        else:
            mobility_models = [
                RandomDirectionMobility(
                    position,
                    bounds,
                    speed_m_s=scenario.mobility.speed_range_m_s,
                    mean_epoch_s=scenario.mobility.mean_epoch_s,
                    rng=mobility_rng,
                )
                for position in positions
            ]
        self.mobiles: List[MobileStation] = [
            MobileStation(
                index=j,
                user_class=user_classes[j],
                mobility=mobility_models[j],
                fch_pilot_power_ratio=radio.fch_pilot_power_ratio,
            )
            for j in range(num_users)
        ]

        self.network = CdmaNetwork(
            config=system,
            mobiles=self.mobiles,
            rng=propagation_rng,
            layout=self.layout,
            warm_start_power_control=scenario.warm_start_power_control,
            mobility_fleet=self.mobility_fleet,
        )
        self.network.hooks = self.hooks
        self.controller = BurstAdmissionController(
            system, scheduler, batched=scenario.batched_admission
        )
        # Opt-in cross-frame incumbent warm starts: the scheduler keeps the
        # surviving assignment of each link between frames.  The flag is
        # always (re)assigned and the memory always cleared so a scheduler
        # instance reused across simulators cannot leak warm-start state
        # into a cold run.  Policies without warm-start support (the
        # baselines) ignore the flag.
        if hasattr(scheduler, "warm_start"):
            scheduler.warm_start = scenario.warm_start_solver
        if hasattr(scheduler, "reset_warm_start"):
            scheduler.reset_warm_start()

        # -- traffic ----------------------------------------------------------------
        size_distribution = TruncatedParetoSize(
            shape=scenario.traffic.packet_call_shape,
            minimum_bits=scenario.traffic.packet_call_min_bits,
            maximum_bits=scenario.traffic.packet_call_max_bits,
        )
        self._data_idx_arr = np.asarray(self.data_user_indices, dtype=int)
        self._voice_idx_arr = np.asarray(self.voice_user_indices, dtype=int)
        self._voice_full_rate = np.ones(self._voice_idx_arr.size)
        self.data_sources: Optional[Dict[int, PacketCallDataSource]] = None
        self.voice_sources: Optional[Dict[int, OnOffVoiceSource]] = None
        self.data_fleet: Optional[DataTrafficFleet] = None
        self.voice_fleet: Optional[VoiceFleet] = None
        if self.batched_fleet:
            self.data_fleet = DataTrafficFleet(
                num_sources=len(self.data_user_indices),
                mean_reading_time_s=scenario.traffic.mean_reading_time_s,
                size_distribution=size_distribution,
                forward_fraction=scenario.traffic.forward_fraction,
                rng=fleet_data_rng,
            )
            self.voice_fleet = VoiceFleet(
                num_sources=len(self.voice_user_indices), rng=fleet_voice_rng
            )
        else:
            self.data_sources = {
                j: PacketCallDataSource(
                    mean_reading_time_s=scenario.traffic.mean_reading_time_s,
                    size_distribution=size_distribution,
                    rng=np.random.default_rng(traffic_rng.integers(0, 2**63 - 1)),
                )
                for j in self.data_user_indices
            }
            self.voice_sources = {
                j: OnOffVoiceSource(
                    rng=np.random.default_rng(traffic_rng.integers(0, 2**63 - 1))
                )
                for j in self.voice_user_indices
            }

        # -- MAC / bookkeeping ------------------------------------------------------------
        self.mac_states: Optional[Dict[int, MacStateMachine]] = None
        self.mac_fleet: Optional[MacStateFleet] = None
        if self.batched_fleet:
            self.mac_fleet = MacStateFleet(
                num_users=len(self.data_user_indices), config=system.mac
            )
        else:
            self.mac_states = {
                j: MacStateMachine(config=system.mac) for j in self.data_user_indices
            }
        # Mobile index -> position in the data-user arrays (fleet addressing).
        self._data_local = np.full(num_users, -1, dtype=int)
        self._data_local[self._data_idx_arr] = np.arange(self._data_idx_arr.size)
        self.pending: Dict[LinkDirection, List[BurstRequest]] = {
            LinkDirection.FORWARD: [],
            LinkDirection.REVERSE: [],
        }
        self.active_bursts: List[_ActiveBurst] = []
        self._request_meta: Dict[int, Tuple[float, float]] = {}
        # Incremental bursting/waiting membership: counts per mobile index,
        # maintained at request arrival / grant / completion time so
        # :meth:`_update_data_activity` never rebuilds the sets per frame.
        self._bursting_count = np.zeros(num_users, dtype=int)
        self._waiting_count = np.zeros(num_users, dtype=int)
        self.metrics = MetricsCollector(warmup_s=scenario.warmup_s)
        #: Per-stage wall-time accumulator (seconds), populated by
        #: ``run(collect_stage_times=True)`` (deprecated shim over the
        #: hooks layer — see :class:`repro.utils.hooks.StageTimingHooks`).
        self.stage_times_s: Optional[Dict[str, float]] = None
        #: The hooks in effect for the current run (includes the stage-
        #: timing shim when ``collect_stage_times=True``); dispatch target
        #: of the admission path.
        self._active_hooks: Optional[SimHooks] = self.hooks

    # -- traffic handling -----------------------------------------------------------------
    def _enqueue_request(
        self, mobile_index: int, link: LinkDirection, size_bits: float, arrival_s: float
    ) -> None:
        """Create one burst request and register it with the pending queue."""
        request = BurstRequest(
            mobile_index=mobile_index,
            link=link,
            size_bits=size_bits,
            arrival_time_s=arrival_s,
            priority=self.scenario.traffic.data_priority,
        )
        self.pending[link].append(request)
        self._waiting_count[mobile_index] += 1
        self._request_meta[request.request_id] = (arrival_s, size_bits)
        self.metrics.record_packet_call_arrival(arrival_s, size_bits)

    def _pull_arrivals(self, now_s: float) -> None:
        traffic = self.scenario.traffic
        if self.batched_fleet:
            arrivals = self.data_fleet.pull_arrivals(now_s)
            if len(arrivals) == 0:
                return
            mobile_indices = self._data_idx_arr[arrivals.user_indices]
            for j, arrival_s, size, forward in zip(
                mobile_indices.tolist(),
                arrivals.arrival_times_s.tolist(),
                arrivals.size_bits.tolist(),
                arrivals.is_forward.tolist(),
            ):
                link = LinkDirection.FORWARD if forward else LinkDirection.REVERSE
                self._enqueue_request(j, link, size, arrival_s)
            return
        for j in self.data_user_indices:
            for call in self.data_sources[j].pull_arrivals(now_s):
                link = (
                    LinkDirection.FORWARD
                    if self._direction_rng.random() < traffic.forward_fraction
                    else LinkDirection.REVERSE
                )
                self._enqueue_request(j, link, call.size_bits, call.arrival_time_s)

    def _update_voice_activity(self, dt_s: float) -> None:
        if self.batched_fleet:
            active = self.voice_fleet.advance(dt_s)
            self.network.set_fch_state(
                self._voice_idx_arr, active, self._voice_full_rate
            )
            return
        for j in self.voice_user_indices:
            self.mobiles[j].fch_active = self.voice_sources[j].advance(dt_s)

    def _update_data_activity(self) -> None:
        """Data users hold a dedicated channel sized to their current traffic.

        Between packet calls (the reading time) a cdma2000 data user drops to
        the Control-Hold/Dormant MAC states and does not load the network at
        all; while it merely *waits* for a burst grant it keeps a low-rate
        dedicated control channel (``control_channel_rate_fraction`` of a
        full-rate FCH); while a burst is on air the full-rate FCH runs
        alongside the SCH.  This keeps the background load physical (well
        below the reverse-link pole capacity) while preserving the pilot and
        FCH measurements the burst admission needs.

        Bursting / waiting membership comes from the incremental per-mobile
        counters maintained at arrival / grant / completion time, so no
        per-frame set rebuild over the active bursts and pending queues is
        needed (on either path).
        """
        control_rate = self.system.radio.control_channel_rate_fraction
        data_idx = self._data_idx_arr
        bursting_mask = self._bursting_count[data_idx] > 0
        waiting_mask = self._waiting_count[data_idx] > 0
        if self.batched_fleet:
            holds_dcch = waiting_mask & self.mac_fleet.holds_dedicated_channel()
            active = bursting_mask | holds_dcch
            rate = np.where(~bursting_mask & holds_dcch, control_rate, 1.0)
            self.network.set_fch_state(data_idx, active, rate)
            return
        for local, j in enumerate(self.data_user_indices):
            mobile = self.mobiles[j]
            if bursting_mask[local]:
                mobile.fch_active = True
                mobile.fch_rate_factor = 1.0
            elif waiting_mask[local]:
                # A waiting user keeps its dedicated control channel only
                # while its MAC state still holds one (Active / Control-Hold);
                # users that timed out into Suspended/Dormant stop loading
                # the network and will pay the setup-delay penalty of
                # eq. (23) when their burst is eventually granted.
                state = self.mac_states[j].state
                holds_dcch = state in (MacState.ACTIVE, MacState.CONTROL_HOLD)
                mobile.fch_active = holds_dcch
                mobile.fch_rate_factor = control_rate if holds_dcch else 1.0
            else:
                mobile.fch_active = False
                mobile.fch_rate_factor = 1.0

    # -- burst lifecycle ------------------------------------------------------------------------
    def _complete_bursts(self, now_s: float) -> None:
        still_active: List[_ActiveBurst] = []
        for burst in self.active_bursts:
            if burst.end_s > now_s + 1e-9:
                still_active.append(burst)
                continue
            grant = burst.grant
            request = grant.request
            for cell, power in grant.forward_power_w.items():
                self.network.release_forward_burst_power(cell, power)
            for cell, power in grant.reverse_power_w.items():
                self.network.release_reverse_burst_power(cell, power)
            self._bursting_count[request.mobile_index] -= 1
            request.account_served_bits(grant.bits_to_serve)
            if request.completed:
                arrival, size = self._request_meta.pop(
                    request.request_id, (request.arrival_time_s, request.size_bits)
                )
                self.metrics.record_packet_call_completion(
                    arrival, burst.end_s, size, request.link
                )
            else:
                # Remaining bits go back to the pending queue; the waiting
                # time keeps accumulating from the original arrival.
                self.pending[request.link].append(request)
                self._waiting_count[request.mobile_index] += 1
        self.active_bursts = still_active

    def _serving_mobiles(self) -> set:
        return {b.grant.request.mobile_index for b in self.active_bursts}

    def _mac_setup_penalty_s(self, mobile_index: int) -> float:
        if self.batched_fleet:
            return self.mac_fleet.setup_penalty_s(self._data_local[mobile_index])
        return self.mac_states[mobile_index].setup_penalty_s()

    def _mac_touch(self, mobile_index: int) -> None:
        if self.batched_fleet:
            self.mac_fleet.touch(self._data_local[mobile_index])
        else:
            self.mac_states[mobile_index].touch()

    def _run_admission(self, snapshot: NetworkSnapshot, now_s: float) -> None:
        hooks = self._active_hooks
        for link in (LinkDirection.FORWARD, LinkDirection.REVERSE):
            pending = self.pending[link]
            if not pending:
                continue
            decision, grants = self.controller.decide(snapshot, pending, link)
            if hooks is not None:
                hooks.admission(
                    now_s,
                    link.value,
                    num_pending=len(pending),
                    num_granted=len(grants),
                    objective_value=float(decision.objective_value),
                    optimal=bool(decision.optimal),
                )
            granted_ids = set()
            for grant in grants:
                request = grant.request
                granted_ids.add(request.request_id)
                # MAC setup penalty: waking a Suspended/Dormant user delays the
                # effective completion of its burst (eq. (23)).
                penalty = self._mac_setup_penalty_s(request.mobile_index)
                end_s = grant.end_s + penalty
                for cell, power in grant.forward_power_w.items():
                    self.network.commit_forward_burst_power(cell, power)
                for cell, power in grant.reverse_power_w.items():
                    self.network.commit_reverse_burst_power(cell, power)
                self.active_bursts.append(_ActiveBurst(grant=grant, end_s=end_s))
                self._bursting_count[request.mobile_index] += 1
                self._waiting_count[request.mobile_index] -= 1
                self._mac_touch(request.mobile_index)
            self.pending[link] = [
                r for r in pending if r.request_id not in granted_ids
            ]
            self.metrics.record_admission(
                now_s,
                num_pending=len(pending),
                num_granted=len(grants),
                granted_ms=decision.assignment,
            )

    def _update_mac_states(self, dt_s: float) -> None:
        if self.batched_fleet:
            self.mac_fleet.advance(
                dt_s, self._bursting_count[self._data_idx_arr] > 0
            )
            return
        serving = self._serving_mobiles()
        for j, machine in self.mac_states.items():
            machine.advance(dt_s, active=j in serving)

    def _hooked_stage(self, hooks: SimHooks, name: str, now_s: float, fn, *args) -> None:
        """Run one pipeline stage under the hooks protocol (enter/exit + wall time)."""
        hooks.stage_enter(name, now_s)
        t0 = time.perf_counter()
        fn(*args)
        hooks.stage_exit(name, now_s, time.perf_counter() - t0)

    # -- main loop ----------------------------------------------------------------------------------
    def run(
        self, progress: Optional[int] = None, collect_stage_times: bool = False
    ) -> SimulationResult:
        """Run the simulation and return the summary result.

        Parameters
        ----------
        progress:
            When given, a progress line is printed every ``progress`` frames
            (useful for the long experiment runs).
        collect_stage_times:
            Deprecated shim: installs a
            :class:`repro.utils.hooks.StageTimingHooks` for the run and
            copies its totals into :attr:`stage_times_s` afterwards.
            Construct the simulator with ``hooks=StageTimingHooks()``
            instead.  Off by default (zero overhead).
        """
        hooks = self.hooks
        timing_hooks: Optional[StageTimingHooks] = None
        if collect_stage_times:
            warnings.warn(
                "run(collect_stage_times=True) is deprecated; pass "
                "hooks=StageTimingHooks() to DynamicSystemSimulator and read "
                "hooks.totals instead",
                DeprecationWarning,
                stacklevel=2,
            )
            timing_hooks = StageTimingHooks()
            hooks = (
                timing_hooks
                if hooks is None
                else CompositeHooks([hooks, timing_hooks])
            )
        self._active_hooks = hooks
        self.network.hooks = hooks
        self.stage_times_s = None
        self.network.stage_times_s = None

        scenario = self.scenario
        frame_s = self.system.mac.frame_duration_s
        total_time = scenario.warmup_s + scenario.duration_s
        num_frames = int(math.ceil(total_time / frame_s))
        bs_noise_power_w = np.asarray(
            [bs.noise_power_w for bs in self.network.base_stations]
        )
        if hooks is not None:
            hooks.run_start(
                self.network.time_s,
                frames=num_frames,
                frame_duration_s=frame_s,
                scheduler=self.scheduler.name,
                batched_fleet=self.batched_fleet,
                num_data_users=len(self.data_user_indices),
                num_voice_users=len(self.voice_user_indices),
            )

        try:
            for frame_index in range(num_frames):
                now = self.network.time_s
                if hooks is not None:
                    self._hooked_stage(
                        hooks, "voice", now, self._update_voice_activity, frame_s
                    )
                    self._hooked_stage(hooks, "arrivals", now, self._pull_arrivals, now)
                    self._complete_bursts(now)
                    self._hooked_stage(
                        hooks, "data_activity", now, self._update_data_activity
                    )
                else:
                    self._update_voice_activity(frame_s)
                    self._pull_arrivals(now)
                    self._complete_bursts(now)
                    self._update_data_activity()
                snapshot = self.network.snapshot()
                self._run_admission(snapshot, now)
                pending_count = sum(len(v) for v in self.pending.values())
                self.metrics.record_frame(
                    now,
                    pending_requests=pending_count,
                    forward_utilisation=float(
                        np.mean(snapshot.forward_load.utilisation())
                    ),
                    reverse_rise_db=float(
                        np.mean(
                            snapshot.reverse_load.rise_over_thermal_db(bs_noise_power_w)
                        )
                    ),
                    fch_outage_fraction=snapshot.fch_outage_fraction(),
                )
                if hooks is not None:
                    hooks.frame(
                        frame_index,
                        now,
                        pending_requests=pending_count,
                        active_bursts=len(self.active_bursts),
                    )
                    self._hooked_stage(
                        hooks, "mac", now, self._update_mac_states, frame_s
                    )
                else:
                    self._update_mac_states(frame_s)
                self.network.advance(frame_s)
                if progress and (frame_index + 1) % progress == 0:  # pragma: no cover
                    print(
                        f"  t={self.network.time_s:7.2f}s  pending={pending_count:4d} "
                        f"active_bursts={len(self.active_bursts):4d}"
                    )
            if hooks is not None:
                hooks.run_end(self.network.time_s, frames=num_frames)
        finally:
            if timing_hooks is not None:
                self.stage_times_s = dict(timing_hooks.totals)
            if self._owned_recorder is not None:
                # Publish the trace_path file (the atomic sink renames on
                # close); a second run() records nothing further.
                self._owned_recorder.close()

        return self.metrics.summarise(
            scheduler=self.scheduler.name,
            num_data_users=len(self.data_user_indices),
            num_voice_users=len(self.voice_user_indices),
            handoff_events=self.network.handoff.handoff_events,
        )
