"""The dynamic system simulation (abstract + Section 1 of the paper).

"...the system is evaluated by dynamic simulations which takes into account
of the user mobility, power control, and soft hand-off."

:class:`DynamicSystemSimulator` runs a frame-by-frame multi-cell simulation:

* voice users toggle their FCH activity with the on/off model;
* data users generate packet calls (bursts) according to the WWW traffic
  model; every packet call becomes a burst request on the forward or the
  reverse link;
* every scheduling frame the burst admission controller (measurement +
  scheduling sub-layers) decides which pending requests get a supplemental
  channel and at which spreading-gain ratio; the committed SCH powers are
  held in the network for the burst duration and therefore shape the power
  control and interference of the following frames;
* users move, shadowing and fast fading evolve, soft hand-off active sets are
  updated, FCH power control runs every frame.

The per-packet-call delay (arrival until the last bit is served), carried
throughput, loading and outage statistics are gathered by
:class:`repro.simulation.metrics.MetricsCollector`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cdma.entities import MobileStation, UserClass
from repro.cdma.network import CdmaNetwork, NetworkSnapshot
from repro.geometry.hexgrid import HexagonalCellLayout
from repro.geometry.mobility import RandomDirectionMobility
from repro.mac.admission import BurstAdmissionController
from repro.mac.requests import BurstGrant, BurstRequest, LinkDirection
from repro.mac.schedulers.base import BurstScheduler
from repro.mac.states import MacState, MacStateMachine
from repro.simulation.metrics import MetricsCollector, SimulationResult
from repro.simulation.scenario import ScenarioConfig
from repro.traffic.data import PacketCallDataSource, TruncatedParetoSize
from repro.traffic.voice import OnOffVoiceSource
from repro.utils.rng import RngFactory

__all__ = ["DynamicSystemSimulator"]


@dataclass
class _ActiveBurst:
    """A granted burst currently on air."""

    grant: BurstGrant
    end_s: float


class DynamicSystemSimulator:
    """Frame-by-frame dynamic simulation of the complete system.

    Parameters
    ----------
    scenario:
        Scenario configuration (population, traffic, mobility, duration).
    scheduler:
        Scheduling policy under test.
    """

    def __init__(self, scenario: ScenarioConfig, scheduler: BurstScheduler) -> None:
        self.scenario = scenario
        self.scheduler = scheduler
        self._rng_factory = RngFactory(scenario.seed)
        system = scenario.effective_system()
        self.system = system
        radio = system.radio

        self.layout = HexagonalCellLayout(
            num_rings=radio.num_rings,
            cell_radius_m=radio.cell_radius_m,
            wraparound=radio.wraparound,
        )
        bounds = self.layout.bounding_box()
        placement_rng = self._rng_factory.child("placement")
        mobility_rng = self._rng_factory.child("mobility")

        # -- population --------------------------------------------------------
        self.mobiles: List[MobileStation] = []
        self.data_user_indices: List[int] = []
        self.voice_user_indices: List[int] = []
        index = 0
        for cell in range(self.layout.num_cells):
            for _ in range(scenario.num_data_users_per_cell):
                position = self.layout.random_position_in_cell(cell, placement_rng)
                self.mobiles.append(
                    MobileStation(
                        index=index,
                        user_class=UserClass.DATA,
                        mobility=RandomDirectionMobility(
                            position,
                            bounds,
                            speed_m_s=scenario.mobility.speed_range_m_s,
                            mean_epoch_s=scenario.mobility.mean_epoch_s,
                            rng=mobility_rng,
                        ),
                        fch_pilot_power_ratio=radio.fch_pilot_power_ratio,
                    )
                )
                self.data_user_indices.append(index)
                index += 1
            for _ in range(scenario.num_voice_users_per_cell):
                position = self.layout.random_position_in_cell(cell, placement_rng)
                self.mobiles.append(
                    MobileStation(
                        index=index,
                        user_class=UserClass.VOICE,
                        mobility=RandomDirectionMobility(
                            position,
                            bounds,
                            speed_m_s=scenario.mobility.speed_range_m_s,
                            mean_epoch_s=scenario.mobility.mean_epoch_s,
                            rng=mobility_rng,
                        ),
                        fch_pilot_power_ratio=radio.fch_pilot_power_ratio,
                    )
                )
                self.voice_user_indices.append(index)
                index += 1

        self.network = CdmaNetwork(
            config=system,
            mobiles=self.mobiles,
            rng=self._rng_factory.child("propagation"),
            layout=self.layout,
            warm_start_power_control=scenario.warm_start_power_control,
        )
        self.controller = BurstAdmissionController(
            system, scheduler, batched=scenario.batched_admission
        )
        # Opt-in cross-frame incumbent warm starts: the scheduler keeps the
        # surviving assignment of each link between frames.  The flag is
        # always (re)assigned and the memory always cleared so a scheduler
        # instance reused across simulators cannot leak warm-start state
        # into a cold run.  Policies without warm-start support (the
        # baselines) ignore the flag.
        if hasattr(scheduler, "warm_start"):
            scheduler.warm_start = scenario.warm_start_solver
        if hasattr(scheduler, "reset_warm_start"):
            scheduler.reset_warm_start()

        # -- traffic ----------------------------------------------------------------
        traffic_rng = self._rng_factory.child("traffic")
        size_distribution = TruncatedParetoSize(
            shape=scenario.traffic.packet_call_shape,
            minimum_bits=scenario.traffic.packet_call_min_bits,
            maximum_bits=scenario.traffic.packet_call_max_bits,
        )
        self.data_sources: Dict[int, PacketCallDataSource] = {
            j: PacketCallDataSource(
                mean_reading_time_s=scenario.traffic.mean_reading_time_s,
                size_distribution=size_distribution,
                rng=np.random.default_rng(traffic_rng.integers(0, 2**63 - 1)),
            )
            for j in self.data_user_indices
        }
        self.voice_sources: Dict[int, OnOffVoiceSource] = {
            j: OnOffVoiceSource(
                rng=np.random.default_rng(traffic_rng.integers(0, 2**63 - 1))
            )
            for j in self.voice_user_indices
        }
        self._direction_rng = self._rng_factory.child("burst-direction")

        # -- MAC / bookkeeping ------------------------------------------------------------
        self.mac_states: Dict[int, MacStateMachine] = {
            j: MacStateMachine(config=system.mac) for j in self.data_user_indices
        }
        self.pending: Dict[LinkDirection, List[BurstRequest]] = {
            LinkDirection.FORWARD: [],
            LinkDirection.REVERSE: [],
        }
        self.active_bursts: List[_ActiveBurst] = []
        self._request_meta: Dict[int, Tuple[float, float]] = {}
        self.metrics = MetricsCollector(warmup_s=scenario.warmup_s)

    # -- traffic handling -----------------------------------------------------------------
    def _pull_arrivals(self, now_s: float) -> None:
        traffic = self.scenario.traffic
        for j in self.data_user_indices:
            for call in self.data_sources[j].pull_arrivals(now_s):
                link = (
                    LinkDirection.FORWARD
                    if self._direction_rng.random() < traffic.forward_fraction
                    else LinkDirection.REVERSE
                )
                request = BurstRequest(
                    mobile_index=j,
                    link=link,
                    size_bits=call.size_bits,
                    arrival_time_s=call.arrival_time_s,
                    priority=traffic.data_priority,
                )
                self.pending[link].append(request)
                self._request_meta[request.request_id] = (
                    call.arrival_time_s,
                    call.size_bits,
                )
                self.metrics.record_packet_call_arrival(
                    call.arrival_time_s, call.size_bits
                )

    def _update_voice_activity(self, dt_s: float) -> None:
        for j in self.voice_user_indices:
            self.mobiles[j].fch_active = self.voice_sources[j].advance(dt_s)

    def _update_data_activity(self) -> None:
        """Data users hold a dedicated channel sized to their current traffic.

        Between packet calls (the reading time) a cdma2000 data user drops to
        the Control-Hold/Dormant MAC states and does not load the network at
        all; while it merely *waits* for a burst grant it keeps a low-rate
        dedicated control channel (``control_channel_rate_fraction`` of a
        full-rate FCH); while a burst is on air the full-rate FCH runs
        alongside the SCH.  This keeps the background load physical (well
        below the reverse-link pole capacity) while preserving the pilot and
        FCH measurements the burst admission needs.
        """
        control_rate = self.system.radio.control_channel_rate_fraction
        bursting = {b.grant.request.mobile_index for b in self.active_bursts}
        waiting = set()
        for requests in self.pending.values():
            waiting.update(r.mobile_index for r in requests)
        for j in self.data_user_indices:
            mobile = self.mobiles[j]
            if j in bursting:
                mobile.fch_active = True
                mobile.fch_rate_factor = 1.0
            elif j in waiting:
                # A waiting user keeps its dedicated control channel only
                # while its MAC state still holds one (Active / Control-Hold);
                # users that timed out into Suspended/Dormant stop loading
                # the network and will pay the setup-delay penalty of
                # eq. (23) when their burst is eventually granted.
                state = self.mac_states[j].state
                holds_dcch = state in (MacState.ACTIVE, MacState.CONTROL_HOLD)
                mobile.fch_active = holds_dcch
                mobile.fch_rate_factor = control_rate if holds_dcch else 1.0
            else:
                mobile.fch_active = False
                mobile.fch_rate_factor = 1.0

    # -- burst lifecycle ------------------------------------------------------------------------
    def _complete_bursts(self, now_s: float) -> None:
        still_active: List[_ActiveBurst] = []
        for burst in self.active_bursts:
            if burst.end_s > now_s + 1e-9:
                still_active.append(burst)
                continue
            grant = burst.grant
            request = grant.request
            for cell, power in grant.forward_power_w.items():
                self.network.release_forward_burst_power(cell, power)
            for cell, power in grant.reverse_power_w.items():
                self.network.release_reverse_burst_power(cell, power)
            request.account_served_bits(grant.bits_to_serve)
            if request.completed:
                arrival, size = self._request_meta.pop(
                    request.request_id, (request.arrival_time_s, request.size_bits)
                )
                self.metrics.record_packet_call_completion(
                    arrival, burst.end_s, size, request.link
                )
            else:
                # Remaining bits go back to the pending queue; the waiting
                # time keeps accumulating from the original arrival.
                self.pending[request.link].append(request)
        self.active_bursts = still_active

    def _serving_mobiles(self) -> set:
        return {b.grant.request.mobile_index for b in self.active_bursts}

    def _run_admission(self, snapshot: NetworkSnapshot, now_s: float) -> None:
        for link in (LinkDirection.FORWARD, LinkDirection.REVERSE):
            pending = self.pending[link]
            if not pending:
                continue
            decision, grants = self.controller.decide(snapshot, pending, link)
            granted_ids = set()
            for grant in grants:
                request = grant.request
                granted_ids.add(request.request_id)
                # MAC setup penalty: waking a Suspended/Dormant user delays the
                # effective completion of its burst (eq. (23)).
                penalty = self.mac_states[request.mobile_index].setup_penalty_s()
                end_s = grant.end_s + penalty
                for cell, power in grant.forward_power_w.items():
                    self.network.commit_forward_burst_power(cell, power)
                for cell, power in grant.reverse_power_w.items():
                    self.network.commit_reverse_burst_power(cell, power)
                self.active_bursts.append(_ActiveBurst(grant=grant, end_s=end_s))
                self.mac_states[request.mobile_index].touch()
            self.pending[link] = [
                r for r in pending if r.request_id not in granted_ids
            ]
            self.metrics.record_admission(
                now_s,
                num_pending=len(pending),
                num_granted=len(grants),
                granted_ms=decision.assignment,
            )

    def _update_mac_states(self, dt_s: float) -> None:
        serving = self._serving_mobiles()
        for j, machine in self.mac_states.items():
            machine.advance(dt_s, active=j in serving)

    # -- main loop ----------------------------------------------------------------------------------
    def run(self, progress: Optional[int] = None) -> SimulationResult:
        """Run the simulation and return the summary result.

        Parameters
        ----------
        progress:
            When given, a progress line is printed every ``progress`` frames
            (useful for the long experiment runs).
        """
        scenario = self.scenario
        frame_s = self.system.mac.frame_duration_s
        total_time = scenario.warmup_s + scenario.duration_s
        num_frames = int(math.ceil(total_time / frame_s))
        bs_noise_power_w = np.asarray(
            [bs.noise_power_w for bs in self.network.base_stations]
        )

        for frame_index in range(num_frames):
            now = self.network.time_s
            self._update_voice_activity(frame_s)
            self._pull_arrivals(now)
            self._complete_bursts(now)
            self._update_data_activity()
            snapshot = self.network.snapshot()
            self._run_admission(snapshot, now)
            pending_count = sum(len(v) for v in self.pending.values())
            self.metrics.record_frame(
                now,
                pending_requests=pending_count,
                forward_utilisation=float(
                    np.mean(snapshot.forward_load.utilisation())
                ),
                reverse_rise_db=float(
                    np.mean(
                        snapshot.reverse_load.rise_over_thermal_db(bs_noise_power_w)
                    )
                ),
                fch_outage_fraction=snapshot.fch_outage_fraction(),
            )
            self._update_mac_states(frame_s)
            self.network.advance(frame_s)
            if progress and (frame_index + 1) % progress == 0:  # pragma: no cover
                print(
                    f"  t={self.network.time_s:7.2f}s  pending={pending_count:4d} "
                    f"active_bursts={len(self.active_bursts):4d}"
                )

        return self.metrics.summarise(
            scheduler=self.scheduler.name,
            num_data_users=len(self.data_user_indices),
            num_voice_users=len(self.voice_user_indices),
            handoff_events=self.network.handoff.handoff_events,
        )
