"""User-placement models (registry kind ``"placement"``).

The dynamic simulator historically placed every user uniformly inside its
home cell.  This module turns that choice into a pluggable component:

* :class:`UniformPlacement` — the paper's placement.  Its ``position`` call
  is *exactly* ``layout.random_position_in_cell(cell, rng)``, so a scenario
  with the default placement consumes the placement RNG stream bit-for-bit
  identically to the pre-registry code (the golden snapshots prove it).
* :class:`HotspotPlacement` — a configurable fraction of the hotspot cell's
  users is concentrated in a disc around its base station (an offered-load
  concentration the wrap-around uniform layout cannot produce); every other
  user stays uniform in its home cell.

Placement models are deliberately cheap value objects: they are described by
a :class:`~repro.simulation.scenario.PlacementConfig` (a frozen dataclass
that pickles with the scenario) and reconstructed from it inside the
simulator via :func:`placement_from_config`.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.registry import register
from repro.simulation.scenario import PlacementConfig

__all__ = [
    "UserPlacement",
    "UniformPlacement",
    "HotspotPlacement",
    "placement_from_config",
]


class UserPlacement(abc.ABC):
    """Strategy choosing the initial position of each user."""

    @abc.abstractmethod
    def position(self, layout, cell: int, rng: np.random.Generator) -> np.ndarray:
        """Initial position of one user whose home cell is ``cell``."""

    @abc.abstractmethod
    def to_config(self) -> PlacementConfig:
        """The picklable scenario-level description of this model."""


@register(
    "placement",
    "uniform",
    summary="Every user uniform in its home cell (the paper's placement)",
)
class UniformPlacement(UserPlacement):
    """Uniform placement inside the home cell (bit-identical to the seed)."""

    def position(self, layout, cell: int, rng: np.random.Generator) -> np.ndarray:
        return layout.random_position_in_cell(cell, rng)

    def to_config(self) -> PlacementConfig:
        return PlacementConfig(kind="uniform")


@register(
    "placement",
    "hotspot",
    summary="Concentrate a fraction of one cell's users near its base station",
)
class HotspotPlacement(UserPlacement):
    """Hotspot placement: part of one cell's population hugs the base station.

    Parameters
    ----------
    fraction:
        Probability that a user of the hotspot cell is placed inside the
        hotspot disc (users of other cells are always uniform).
    radius_fraction:
        Hotspot disc radius as a fraction of the cell radius.
    cell:
        Index of the hotspot cell (0 = centre cell).
    """

    def __init__(
        self,
        fraction: float = 0.5,
        radius_fraction: float = 0.3,
        cell: int = 0,
    ) -> None:
        # PlacementConfig owns the validation; constructing it here rejects
        # bad parameters at build time rather than at first placement.
        self._config = PlacementConfig(
            kind="hotspot",
            hotspot_fraction=float(fraction),
            hotspot_radius_fraction=float(radius_fraction),
            hotspot_cell=int(cell),
        )

    def position(self, layout, cell: int, rng: np.random.Generator) -> np.ndarray:
        config = self._config
        if config.hotspot_cell >= layout.num_cells:
            raise ValueError(
                f"hotspot cell {config.hotspot_cell} does not exist in a "
                f"{layout.num_cells}-cell layout"
            )
        if cell == config.hotspot_cell and rng.random() < config.hotspot_fraction:
            # Uniform in the hotspot disc around the base station.
            radius = config.hotspot_radius_fraction * layout.cell_radius_m
            r = radius * math.sqrt(rng.random())
            theta = 2.0 * math.pi * rng.random()
            centre = layout.position_of(cell)
            return centre + np.array([r * math.cos(theta), r * math.sin(theta)])
        return layout.random_position_in_cell(cell, rng)

    def to_config(self) -> PlacementConfig:
        return self._config


def placement_from_config(config: PlacementConfig) -> UserPlacement:
    """Reconstruct the placement model a :class:`PlacementConfig` describes."""
    if config.kind == "uniform":
        return UniformPlacement()
    if config.kind == "hotspot":
        return HotspotPlacement(
            fraction=config.hotspot_fraction,
            radius_fraction=config.hotspot_radius_fraction,
            cell=config.hotspot_cell,
        )
    raise ValueError(f"unknown placement kind {config.kind!r}")
