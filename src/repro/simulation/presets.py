"""Registered traffic / mobility / channel presets (the non-policy zoo).

Each entry registers an existing config dataclass with a named bundle of
defaults, so scenario specs (and the ``--scenario-spec`` CLI) can say
``traffic = {name = "web-video"}`` instead of spelling out five Pareto
parameters — and can still override any individual field, because
:meth:`repro.registry.Registration.build` merges spec kwargs over the
preset's defaults and validates them against the dataclass signature.

Traffic mixes (kind ``"traffic"``)
    ``default``    — the library default WWW mix (:class:`TrafficConfig`).
    ``paper-www``  — the heavier mix the paper-style experiments use
                     (matches :func:`repro.experiments.common.paper_traffic`).
    ``web-video``  — a web/video-skewed mix: short reading times, a heavy
                     Pareto tail up to 6 Mbit (streaming bursts) and a
                     strongly forward-dominated direction split.

Mobility models (kind ``"mobility"``)
    ``random-direction`` — the default 3–50 km/h random-direction model.
    ``pedestrian``       — 1.8–5.4 km/h, long direction epochs.
    ``vehicular``        — 30–90 km/h, short direction epochs.

Channel profiles (kind ``"channel"``)
    ``default``     — the cdma2000 SR1 macro-cell radio configuration.
    ``dense-urban`` — small cells, heavier shadowing, lower downlink
                      orthogonality and slow fading (dense-urban canyon).
"""

from __future__ import annotations

from repro.config import RadioConfig
from repro.registry import registry
from repro.simulation.scenario import MobilityConfig, TrafficConfig

__all__: list = []

# -- traffic mixes --------------------------------------------------------------
registry.add(
    "traffic",
    "default",
    TrafficConfig,
    summary="Library default WWW packet-call mix",
)
registry.add(
    "traffic",
    "paper-www",
    TrafficConfig,
    defaults=dict(
        mean_reading_time_s=2.0,
        packet_call_shape=1.8,
        packet_call_min_bits=32_000.0,
        packet_call_max_bits=2_000_000.0,
        forward_fraction=0.7,
    ),
    summary="The paper experiments' heavier WWW mix (paper_traffic)",
)
registry.add(
    "traffic",
    "web-video",
    TrafficConfig,
    defaults=dict(
        mean_reading_time_s=1.5,
        packet_call_shape=1.2,
        packet_call_min_bits=48_000.0,
        packet_call_max_bits=6_000_000.0,
        forward_fraction=0.85,
    ),
    summary="Web/video-skewed mix: heavy forward tail, short reading times",
)

# -- mobility models ------------------------------------------------------------
registry.add(
    "mobility",
    "random-direction",
    MobilityConfig,
    summary="Default random-direction model, 3-50 km/h",
)
registry.add(
    "mobility",
    "pedestrian",
    MobilityConfig,
    defaults=dict(speed_range_m_s=(0.5, 1.5), mean_epoch_s=40.0),
    summary="Pedestrian speeds (1.8-5.4 km/h), long direction epochs",
)
registry.add(
    "mobility",
    "vehicular",
    MobilityConfig,
    defaults=dict(speed_range_m_s=(8.3, 25.0), mean_epoch_s=8.0),
    summary="Vehicular speeds (30-90 km/h), short direction epochs",
)

# -- channel / radio profiles ---------------------------------------------------
registry.add(
    "channel",
    "default",
    RadioConfig,
    summary="cdma2000 SR1 macro-cell radio profile (the paper's)",
)
registry.add(
    "channel",
    "dense-urban",
    RadioConfig,
    defaults=dict(
        cell_radius_m=500.0,
        shadowing_std_db=10.0,
        shadowing_site_correlation=0.3,
        orthogonality_factor=0.4,
        doppler_hz=5.0,
    ),
    summary="Dense-urban small cells: heavy shadowing, low orthogonality",
)
