"""Bounded integer linear program used by the scheduling sub-layer.

The canonical form is::

    maximise    c' m
    subject to  A m <= b        (resource / admissible-region constraints)
                0 <= m <= u     (per-variable integer bounds)
                m integer

with non-negative constraint coefficients ``A`` and right-hand sides ``b``
(resources can only be consumed), which is the structure produced by the
forward- and reverse-link admissible regions of the paper (eqs. (7) and
(17)) together with the burst-duration bound (24).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundedIntegerProgram", "IntegerSolution"]


@dataclass(frozen=True)
class IntegerSolution:
    """Result of an integer-program solver.

    Attributes
    ----------
    values:
        Integer variable assignment ``m``.
    objective:
        Objective value ``c' m``.
    optimal:
        True when the solver proved optimality; heuristics set this to
        False.
    nodes_explored:
        Search nodes visited (branch-and-bound) or 0 for closed-form /
        heuristic solvers.
    """

    values: np.ndarray
    objective: float
    optimal: bool
    nodes_explored: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "values", np.asarray(self.values, dtype=int).copy()
        )


class BoundedIntegerProgram:
    """Container and validator for the bounded integer program.

    Parameters
    ----------
    objective:
        Coefficient vector ``c`` (length ``n``).
    constraint_matrix:
        Matrix ``A`` of shape ``(m, n)`` with non-negative entries.
    constraint_bounds:
        Right-hand side ``b`` of length ``m`` (non-negative).
    upper_bounds:
        Integer upper bounds ``u`` per variable (non-negative).
    """

    def __init__(
        self,
        objective: np.ndarray,
        constraint_matrix: np.ndarray,
        constraint_bounds: np.ndarray,
        upper_bounds: np.ndarray,
    ) -> None:
        c = np.asarray(objective, dtype=float).ravel()
        a = np.asarray(constraint_matrix, dtype=float)
        b = np.asarray(constraint_bounds, dtype=float).ravel()
        u = np.asarray(upper_bounds, dtype=float).ravel()

        if a.ndim != 2:
            raise ValueError("constraint_matrix must be 2-D")
        num_constraints, num_variables = a.shape
        if c.shape != (num_variables,):
            raise ValueError("objective length must match the number of variables")
        if b.shape != (num_constraints,):
            raise ValueError("constraint_bounds length must match the constraints")
        if u.shape != (num_variables,):
            raise ValueError("upper_bounds length must match the number of variables")
        if np.any(a < 0.0):
            raise ValueError("constraint_matrix entries must be non-negative")
        if np.any(u < 0.0):
            raise ValueError("upper_bounds must be non-negative")
        if np.any(~np.isfinite(c)) or np.any(~np.isfinite(a)) or np.any(~np.isfinite(b)):
            raise ValueError("problem data must be finite")

        self.objective = c
        self.constraint_matrix = a
        # Negative right-hand sides can only arise from measurement noise on
        # an already-overloaded cell; clamp to zero (nothing can be admitted).
        self.constraint_bounds = np.maximum(b, 0.0)
        self.upper_bounds = np.floor(u).astype(int)
        # Lazily-built caches shared by the vectorized solver kernels.
        self._positive_mask: np.ndarray | None = None
        self._safe_columns: np.ndarray | None = None

    # -- cached kernels shared by the vectorized solvers -------------------------
    @property
    def positive_mask(self) -> np.ndarray:
        """Boolean mask of strictly positive constraint coefficients."""
        if self._positive_mask is None:
            self._positive_mask = self.constraint_matrix > 0.0
        return self._positive_mask

    @property
    def safe_columns(self) -> np.ndarray:
        """Constraint matrix with non-positive entries replaced by 1.

        Matches the divisor ``np.where(column > 0, column, 1)`` of
        :meth:`max_increment`, so ratio tests over the full matrix produce the
        same floats as the per-column oracle.
        """
        if self._safe_columns is None:
            self._safe_columns = np.where(
                self.positive_mask, self.constraint_matrix, 1.0
            )
        return self._safe_columns

    # -- basic properties --------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Number of decision variables."""
        return self.objective.shape[0]

    @property
    def num_constraints(self) -> int:
        """Number of linear constraints."""
        return self.constraint_matrix.shape[0]

    # -- evaluation helpers --------------------------------------------------------
    def objective_value(self, values: np.ndarray) -> float:
        """Objective ``c' m`` of an assignment."""
        values = np.asarray(values, dtype=float).ravel()
        if values.shape != (self.num_variables,):
            raise ValueError("assignment has the wrong length")
        return float(self.objective @ values)

    def is_feasible(self, values: np.ndarray, tolerance: float = 1e-9) -> bool:
        """Check integrality-free feasibility of an assignment."""
        values = np.asarray(values, dtype=float).ravel()
        if values.shape != (self.num_variables,):
            raise ValueError("assignment has the wrong length")
        if np.any(values < -tolerance):
            return False
        if np.any(values > self.upper_bounds + tolerance):
            return False
        slack = self.constraint_bounds - self.constraint_matrix @ values
        return bool(np.all(slack >= -tolerance * np.maximum(1.0, self.constraint_bounds)))

    def slack(self, values: np.ndarray) -> np.ndarray:
        """Remaining resource per constraint for an assignment."""
        values = np.asarray(values, dtype=float).ravel()
        return self.constraint_bounds - self.constraint_matrix @ values

    def max_increment(self, values: np.ndarray, index: int) -> int:
        """Largest integer increase of variable ``index`` keeping feasibility."""
        values = np.asarray(values, dtype=float).ravel()
        slack = self.slack(values)
        column = self.constraint_matrix[:, index]
        room_bound = self.upper_bounds[index] - values[index]
        if room_bound <= 0:
            return 0
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(column > 0.0, slack / np.where(column > 0.0, column, 1.0), np.inf)
        room_resources = np.floor(np.min(ratios) + 1e-12)
        return int(max(0, min(room_bound, room_resources)))

    def max_increments(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`max_increment` for every variable at once.

        Element ``j`` equals ``max_increment(values, j)`` exactly (same
        division, reduction and rounding order), evaluated with one matrix
        ratio test instead of ``n`` per-column Python calls.  Because the
        constraint matrix is non-negative and ``values`` only ever grow
        during a greedy raise, an entry that reaches 0 stays 0 — callers use
        this to prune variables from sequential repair loops.
        """
        values = np.asarray(values, dtype=float).ravel()
        slack = self.constraint_bounds - self.constraint_matrix @ values
        if self.num_constraints:
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(
                    self.positive_mask, slack[:, None] / self.safe_columns, np.inf
                )
            room_resources = np.floor(ratios.min(axis=0) + 1e-12)
        else:  # no resource rows: only the variable box limits the raise
            room_resources = np.full(self.num_variables, np.inf)
        # min() with the finite box bound keeps the result finite even for
        # all-zero columns (whose resource room is +inf).
        room_bound = self.upper_bounds - values
        room = np.maximum(0.0, np.minimum(room_bound, room_resources))
        return room.astype(int)

    def search_space_size(self) -> float:
        """Number of points in the integer box (``prod(u_j + 1)``)."""
        return float(np.prod(self.upper_bounds.astype(float) + 1.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BoundedIntegerProgram(variables={self.num_variables}, "
            f"constraints={self.num_constraints})"
        )
