"""Exhaustive enumeration of small bounded integer programs.

Used as ground truth in the solver tests and, at run time, for very small
scheduling instances where enumeration is cheaper than branch-and-bound
bookkeeping.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.opt.problem import BoundedIntegerProgram, IntegerSolution

__all__ = ["solve_exhaustive"]

#: Refuse to enumerate spaces larger than this (protects against accidents).
MAX_ENUMERATION_POINTS = 2_000_000


def solve_exhaustive(problem: BoundedIntegerProgram) -> IntegerSolution:
    """Enumerate every feasible integer point and return the best one.

    Raises
    ------
    ValueError
        If the integer box contains more than :data:`MAX_ENUMERATION_POINTS`
        points.
    """
    if problem.search_space_size() > MAX_ENUMERATION_POINTS:
        raise ValueError(
            "search space too large for exhaustive enumeration "
            f"({problem.search_space_size():.3g} points)"
        )
    ranges = [range(int(u) + 1) for u in problem.upper_bounds]
    best_values = np.zeros(problem.num_variables, dtype=int)
    best_objective = problem.objective_value(best_values)
    explored = 0
    for candidate in itertools.product(*ranges):
        explored += 1
        values = np.asarray(candidate, dtype=float)
        if not problem.is_feasible(values):
            continue
        objective = problem.objective_value(values)
        if objective > best_objective + 1e-12:
            best_objective = objective
            best_values = np.asarray(candidate, dtype=int)
    return IntegerSolution(
        values=best_values,
        objective=best_objective,
        optimal=True,
        nodes_explored=explored,
    )
