"""Exhaustive enumeration of small bounded integer programs.

Used as ground truth in the solver tests and, at run time, for very small
scheduling instances where enumeration is cheaper than branch-and-bound
bookkeeping.

``batched=True`` (default) enumerates the integer box in vectorized chunks:
candidate blocks come from ``np.unravel_index`` over a flat point range (the
same lexicographic order as ``itertools.product``), feasibility is one
matrix product per block, and the oracle's first-strict-improver selection
rule is replayed inside each block.  ``batched=False`` is the original
per-point loop.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.opt.problem import BoundedIntegerProgram, IntegerSolution

__all__ = ["solve_exhaustive"]

#: Refuse to enumerate spaces larger than this (protects against accidents).
MAX_ENUMERATION_POINTS = 2_000_000

#: Candidate points evaluated per vectorized block.
_CHUNK = 65_536


def solve_exhaustive(
    problem: BoundedIntegerProgram, batched: bool = True
) -> IntegerSolution:
    """Enumerate every feasible integer point and return the best one.

    Raises
    ------
    ValueError
        If the integer box contains more than :data:`MAX_ENUMERATION_POINTS`
        points.
    """
    if problem.search_space_size() > MAX_ENUMERATION_POINTS:
        raise ValueError(
            "search space too large for exhaustive enumeration "
            f"({problem.search_space_size():.3g} points)"
        )
    if batched and problem.num_variables:
        return _solve_exhaustive_batched(problem)
    return _solve_exhaustive_scalar(problem)


def _solve_exhaustive_scalar(problem: BoundedIntegerProgram) -> IntegerSolution:
    """The original per-point loop (parity oracle)."""
    ranges = [range(int(u) + 1) for u in problem.upper_bounds]
    best_values = np.zeros(problem.num_variables, dtype=int)
    best_objective = problem.objective_value(best_values)
    explored = 0
    for candidate in itertools.product(*ranges):
        explored += 1
        values = np.asarray(candidate, dtype=float)
        if not problem.is_feasible(values):
            continue
        objective = problem.objective_value(values)
        if objective > best_objective + 1e-12:
            best_objective = objective
            best_values = np.asarray(candidate, dtype=int)
    return IntegerSolution(
        values=best_values,
        objective=best_objective,
        optimal=True,
        nodes_explored=explored,
    )


def _solve_exhaustive_batched(problem: BoundedIntegerProgram) -> IntegerSolution:
    dims = problem.upper_bounds + 1
    total = int(np.prod(dims))
    matrix_t = problem.constraint_matrix.T
    # The oracle's feasibility threshold (is_feasible with its default
    # tolerance), evaluated once for all constraint rows.
    threshold = -1e-9 * np.maximum(1.0, problem.constraint_bounds)

    best_values = np.zeros(problem.num_variables, dtype=int)
    best_objective = problem.objective_value(best_values)
    for start in range(0, total, _CHUNK):
        flat = np.arange(start, min(start + _CHUNK, total))
        candidates = np.stack(np.unravel_index(flat, dims), axis=1).astype(float)
        slack = problem.constraint_bounds - candidates @ matrix_t
        feasible = np.nonzero(np.all(slack >= threshold, axis=1))[0]
        if not feasible.size:
            continue
        objectives = candidates[feasible] @ problem.objective
        # Replay the oracle's strictly-improving scan in enumeration order.
        position = 0
        while position < objectives.size:
            better = np.nonzero(objectives[position:] > best_objective + 1e-12)[0]
            if not better.size:
                break
            position += int(better[0])
            best_objective = float(objectives[position])
            best_values = candidates[feasible[position]].astype(int)
            position += 1
    return IntegerSolution(
        values=best_values,
        objective=best_objective,
        optimal=True,
        nodes_explored=total,
    )
