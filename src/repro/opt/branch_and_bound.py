"""Branch-and-bound solver for the bounded integer program.

This is the optimal engine behind the JABA-SD scheduler.  Standard best-bound
branch-and-bound on the variable box:

* the LP relaxation (with the branching bounds applied) yields an upper
  bound for each node — solved with the package's own dense simplex by
  default, which is faster than calling out to SciPy for the tiny problems
  produced by burst scheduling;
* the incumbent is seeded with the greedy heuristic, the rounded LP optimum
  and (optionally) a caller-supplied warm start — the previous scheduling
  frame's surviving assignment, which makes the initial gap small and the
  pruning aggressive under heavy load;
* nodes whose bound does not beat the incumbent (by more than the optional
  relative ``gap_tolerance``) are pruned;
* branching splits on the most fractional variable of the node's LP optimum.

The number of concurrent burst requests per decision (``Nd``) is modest, but
a node budget still protects the dynamic simulation against pathological
instances; when it is exhausted the best incumbent is returned with
``optimal=False``.

``batched=True`` (default) runs the vectorized back-end: node relaxations
use the batched simplex with a shared :class:`~repro.opt.lp.SimplexScratch`,
both child bounds of a branching level are evaluated in one
:func:`~repro.opt.lp.solve_children_lp` sweep, and the incumbent repairs use
the vectorized rounding kernels.  ``batched=False`` is the original scalar
oracle; the two paths visit the same nodes and return identical solutions.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Optional, Tuple

import numpy as np

from repro.opt.greedy import round_lp_solution, solve_greedy
from repro.opt.lp import SimplexScratch, solve_children_lp, solve_lp_relaxation
from repro.opt.problem import BoundedIntegerProgram, IntegerSolution

__all__ = ["solve_branch_and_bound"]

_INTEGRALITY_TOL = 1e-6


def _is_integral(values: np.ndarray) -> bool:
    return bool(np.all(np.abs(values - np.round(values)) <= _INTEGRALITY_TOL))


def _warm_incumbent(
    problem: BoundedIntegerProgram, warm_start: Optional[np.ndarray]
) -> Optional[Tuple[np.ndarray, float]]:
    """Validate a warm-start assignment into an incumbent candidate.

    The candidate is clipped to the variable box; it seeds the incumbent only
    when it is feasible for the *current* problem (the admissible region
    moves between scheduling frames), otherwise it is silently dropped and
    the search starts cold.
    """
    if warm_start is None:
        return None
    values = np.asarray(warm_start, dtype=float).ravel()
    if values.shape != (problem.num_variables,):
        raise ValueError("warm_start has the wrong length")
    values = np.clip(np.round(values), 0.0, problem.upper_bounds.astype(float))
    if not problem.is_feasible(values):
        return None
    return values, problem.objective_value(values)


def solve_branch_and_bound(
    problem: BoundedIntegerProgram,
    max_nodes: int = 20_000,
    gap_tolerance: float = 0.0,
    use_scipy_lp: bool = False,
    batched: bool = True,
    warm_start: Optional[np.ndarray] = None,
) -> IntegerSolution:
    """Solve ``problem`` by LP-based branch-and-bound.

    Parameters
    ----------
    problem:
        The bounded integer program.
    max_nodes:
        Node budget; when exhausted the best incumbent found so far is
        returned with ``optimal=False``.
    gap_tolerance:
        Relative optimality gap at which the search stops early.  ``0`` means
        prove optimality exactly; ``0.01`` accepts a solution within 1 % of
        the best remaining bound (still flagged ``optimal=False`` unless the
        gap closed completely).
    use_scipy_lp:
        Use SciPy's HiGHS for the node relaxations instead of the built-in
        dense simplex (the built-in solver is faster on these small
        instances).
    batched:
        Run the vectorized back-end (default).  ``False`` selects the scalar
        oracle; both visit the same nodes and return identical solutions.
    warm_start:
        Optional integer assignment seeding the incumbent (e.g. the previous
        scheduling frame's solution).  Infeasible warm starts are ignored.
    """
    if gap_tolerance < 0.0:
        raise ValueError("gap_tolerance must be non-negative")
    n = problem.num_variables
    if n == 0:
        return IntegerSolution(values=np.zeros(0, dtype=int), objective=0.0, optimal=True)
    incumbent0 = _warm_incumbent(problem, warm_start)
    if batched:
        return _solve_batched(problem, max_nodes, gap_tolerance, use_scipy_lp, incumbent0)
    return _solve_scalar(problem, max_nodes, gap_tolerance, use_scipy_lp, incumbent0)


def _solve_scalar(
    problem: BoundedIntegerProgram,
    max_nodes: int,
    gap_tolerance: float,
    use_scipy_lp: bool,
    incumbent0: Optional[Tuple[np.ndarray, float]],
) -> IntegerSolution:
    """The original per-node implementation (parity oracle)."""
    n = problem.num_variables

    # Incumbents: greedy and rounded LP.  Both are always feasible.
    incumbent = solve_greedy(problem, batched=False)
    best_values = incumbent.values.astype(float)
    best_objective = incumbent.objective
    if incumbent0 is not None and incumbent0[1] > best_objective:
        best_values, best_objective = incumbent0[0].copy(), incumbent0[1]

    root_lo = np.zeros(n)
    root_hi = problem.upper_bounds.astype(float)
    root_lp = solve_lp_relaxation(
        problem, root_lo, root_hi, use_scipy=use_scipy_lp, batched=False
    )
    if root_lp.status == "infeasible":  # cannot happen with a valid problem box
        return IntegerSolution(
            values=np.zeros(n, dtype=int), objective=0.0, optimal=True
        )
    rounded = round_lp_solution(problem, root_lp.values, batched=False)
    if rounded.objective > best_objective:
        best_objective = rounded.objective
        best_values = rounded.values.astype(float)

    def accept(bound: float) -> bool:
        """Should a node with this bound still be explored?"""
        threshold = best_objective * (1.0 + gap_tolerance) if best_objective > 0 else (
            best_objective + gap_tolerance
        )
        return bound > threshold + 1e-12

    counter = itertools.count()
    heap = [(-root_lp.objective, next(counter), root_lo, root_hi, root_lp)]
    nodes = 0
    exhausted = False

    while heap:
        neg_bound, _, lo, hi, lp = heapq.heappop(heap)
        bound = -neg_bound
        if not accept(bound):
            continue
        nodes += 1
        if nodes > max_nodes:
            exhausted = True
            break

        values = np.clip(lp.values, lo, hi)
        if _is_integral(values):
            candidate = np.round(values)
            if problem.is_feasible(candidate) and (
                problem.objective_value(candidate) > best_objective + 1e-12
            ):
                best_objective = problem.objective_value(candidate)
                best_values = candidate
            continue

        # Cheap incumbent update from the fractional point.
        repaired = round_lp_solution(problem, values, batched=False)
        if repaired.objective > best_objective + 1e-12:
            best_objective = repaired.objective
            best_values = repaired.values.astype(float)

        # Branch on the most fractional variable.
        fractional = np.abs(values - np.round(values))
        branch_var = int(np.argmax(fractional))
        floor_val = math.floor(values[branch_var] + _INTEGRALITY_TOL)

        # Down branch: x_branch <= floor.
        hi_down = hi.copy()
        hi_down[branch_var] = float(floor_val)
        if hi_down[branch_var] >= lo[branch_var] - 1e-12:
            lp_down = solve_lp_relaxation(
                problem, lo, hi_down, use_scipy=use_scipy_lp, batched=False
            )
            if lp_down.status == "optimal" and accept(lp_down.objective):
                heapq.heappush(
                    heap, (-lp_down.objective, next(counter), lo, hi_down, lp_down)
                )

        # Up branch: x_branch >= floor + 1.
        lo_up = lo.copy()
        lo_up[branch_var] = float(floor_val + 1)
        if lo_up[branch_var] <= hi[branch_var] + 1e-12:
            lp_up = solve_lp_relaxation(
                problem, lo_up, hi, use_scipy=use_scipy_lp, batched=False
            )
            if lp_up.status == "optimal" and accept(lp_up.objective):
                heapq.heappush(
                    heap, (-lp_up.objective, next(counter), lo_up, hi, lp_up)
                )

    proven_optimal = (not exhausted) and gap_tolerance == 0.0
    return IntegerSolution(
        values=np.round(best_values).astype(int),
        objective=float(best_objective),
        optimal=proven_optimal,
        nodes_explored=nodes,
    )


def _solve_batched(
    problem: BoundedIntegerProgram,
    max_nodes: int,
    gap_tolerance: float,
    use_scipy_lp: bool,
    incumbent0: Optional[Tuple[np.ndarray, float]],
) -> IntegerSolution:
    """Vectorized back-end: batched simplex, child sweeps, scratch reuse.

    Visits the same nodes in the same order as :func:`_solve_scalar` and
    returns identical solutions — the vectorized kernels evaluate the same
    floating-point expressions, and children are pushed in the oracle's
    (down, up) tie-break order.
    """
    n = problem.num_variables
    scratch = SimplexScratch()

    incumbent = solve_greedy(problem, batched=True)
    best_values = incumbent.values.astype(float)
    best_objective = incumbent.objective
    if incumbent0 is not None and incumbent0[1] > best_objective:
        best_values, best_objective = incumbent0[0].copy(), incumbent0[1]

    root_lo = np.zeros(n)
    root_hi = problem.upper_bounds.astype(float)
    root_lp = solve_lp_relaxation(
        problem, root_lo, root_hi, use_scipy=use_scipy_lp, batched=True, scratch=scratch
    )
    if root_lp.status == "infeasible":  # cannot happen with a valid problem box
        return IntegerSolution(
            values=np.zeros(n, dtype=int), objective=0.0, optimal=True
        )
    rounded = round_lp_solution(problem, root_lp.values, batched=True)
    if rounded.objective > best_objective:
        best_objective = rounded.objective
        best_values = rounded.values.astype(float)

    def accept(bound: float) -> bool:
        threshold = best_objective * (1.0 + gap_tolerance) if best_objective > 0 else (
            best_objective + gap_tolerance
        )
        return bound > threshold + 1e-12

    counter = itertools.count()
    heap = [(-root_lp.objective, next(counter), root_lo, root_hi, root_lp)]
    nodes = 0
    exhausted = False

    while heap:
        neg_bound, _, lo, hi, lp = heapq.heappop(heap)
        bound = -neg_bound
        if not accept(bound):
            continue
        nodes += 1
        if nodes > max_nodes:
            exhausted = True
            break

        values = np.clip(lp.values, lo, hi)
        if _is_integral(values):
            candidate = np.round(values)
            if problem.is_feasible(candidate) and (
                problem.objective_value(candidate) > best_objective + 1e-12
            ):
                best_objective = problem.objective_value(candidate)
                best_values = candidate
            continue

        repaired = round_lp_solution(problem, values, batched=True)
        if repaired.objective > best_objective + 1e-12:
            best_objective = repaired.objective
            best_values = repaired.values.astype(float)

        fractional = np.abs(values - np.round(values))
        branch_var = int(np.argmax(fractional))
        floor_val = math.floor(values[branch_var] + _INTEGRALITY_TOL)

        hi_down = hi.copy()
        hi_down[branch_var] = float(floor_val)
        lo_up = lo.copy()
        lo_up[branch_var] = float(floor_val + 1)

        # Both child bounds of this branching level in one LP sweep over the
        # shared scratch template (children pushed in the oracle's order).
        if use_scipy_lp:
            children = [
                solve_lp_relaxation(
                    problem, c_lo, c_hi, use_scipy=True, batched=True, scratch=scratch
                )
                if not np.any(c_lo > c_hi + 1e-12)
                else None
                for c_lo, c_hi in ((lo, hi_down), (lo_up, hi))
            ]
        else:
            children = solve_children_lp(
                problem, ((lo, hi_down), (lo_up, hi)), scratch=scratch
            )
        for child_lp, c_lo, c_hi in zip(children, (lo, lo_up), (hi_down, hi)):
            if child_lp is None or child_lp.status != "optimal":
                continue
            if accept(child_lp.objective):
                heapq.heappush(
                    heap, (-child_lp.objective, next(counter), c_lo, c_hi, child_lp)
                )

    proven_optimal = (not exhausted) and gap_tolerance == 0.0
    return IntegerSolution(
        values=np.round(best_values).astype(int),
        objective=float(best_objective),
        optimal=proven_optimal,
        nodes_explored=nodes,
    )
