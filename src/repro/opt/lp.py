"""LP relaxation of the bounded integer program.

The branch-and-bound solver needs upper bounds from the continuous (LP)
relaxation of sub-problems.  The default implementation wraps
``scipy.optimize.linprog`` (HiGHS); a small, self-contained dense
revised-simplex implementation is provided as a fallback so the package keeps
working if SciPy's LP backend is unavailable, and as an independent
cross-check in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.opt.problem import BoundedIntegerProgram

__all__ = ["LpSolution", "solve_lp_relaxation", "simplex_lp"]


@dataclass(frozen=True)
class LpSolution:
    """Solution of an LP relaxation.

    Attributes
    ----------
    values:
        Optimal (continuous) variable values.
    objective:
        Optimal objective value.
    status:
        ``"optimal"`` or ``"infeasible"`` (the relaxations solved here are
        always bounded because the variables live in a box).
    """

    values: np.ndarray
    objective: float
    status: str


def solve_lp_relaxation(
    problem: BoundedIntegerProgram,
    lower_bounds: Optional[np.ndarray] = None,
    upper_bounds: Optional[np.ndarray] = None,
    use_scipy: bool = True,
) -> LpSolution:
    """Solve the continuous relaxation of ``problem``.

    ``lower_bounds`` / ``upper_bounds`` override the box (used by
    branch-and-bound to impose branching decisions).
    """
    lo = (
        np.zeros(problem.num_variables)
        if lower_bounds is None
        else np.asarray(lower_bounds, dtype=float)
    )
    hi = (
        problem.upper_bounds.astype(float)
        if upper_bounds is None
        else np.asarray(upper_bounds, dtype=float)
    )
    if np.any(lo > hi + 1e-12):
        return LpSolution(values=lo, objective=-np.inf, status="infeasible")

    if use_scipy:
        try:
            from scipy.optimize import linprog

            result = linprog(
                c=-problem.objective,
                A_ub=problem.constraint_matrix,
                b_ub=problem.constraint_bounds,
                bounds=list(zip(lo, hi)),
                method="highs",
            )
            if result.status == 2:  # infeasible
                return LpSolution(values=lo, objective=-np.inf, status="infeasible")
            if result.success:
                return LpSolution(
                    values=np.asarray(result.x, dtype=float),
                    objective=float(-result.fun),
                    status="optimal",
                )
        except Exception:  # pragma: no cover - fall back to the simplex below
            pass
    return simplex_lp(problem, lo, hi)


def simplex_lp(
    problem: BoundedIntegerProgram, lower_bounds: np.ndarray, upper_bounds: np.ndarray
) -> LpSolution:
    """Dense Dantzig-rule simplex on the slack-form relaxation.

    The variable box is handled by shifting to ``x' = x - lo`` and adding the
    explicit upper-bound rows ``x' <= hi - lo``; the resulting standard-form
    problem ``max c'x', A'x' <= b', x' >= 0`` always has the origin as a basic
    feasible starting point when ``b' >= 0``, which holds whenever the fixed
    lower bounds are themselves feasible.  If they are not, the sub-problem is
    reported infeasible (which is exactly what branch-and-bound needs).
    """
    lo = np.asarray(lower_bounds, dtype=float)
    hi = np.asarray(upper_bounds, dtype=float)
    c = problem.objective
    a = problem.constraint_matrix
    b = problem.constraint_bounds - a @ lo
    if np.any(b < -1e-9):
        return LpSolution(values=lo, objective=-np.inf, status="infeasible")
    b = np.maximum(b, 0.0)
    box = hi - lo

    n = problem.num_variables
    # Constraint rows: resource constraints plus upper-bound rows.
    a_full = np.vstack([a, np.eye(n)])
    b_full = np.concatenate([b, box])
    m = a_full.shape[0]

    # Simplex tableau with slack variables (standard form, origin feasible).
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a_full
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b_full
    tableau[-1, :n] = -c  # maximise c'x  <=>  minimise -c'x
    basis = list(range(n, n + m))

    max_iterations = 200 * (n + m)
    for _ in range(max_iterations):
        reduced = tableau[-1, :-1]
        pivot_col = int(np.argmin(reduced))
        if reduced[pivot_col] >= -1e-10:
            break  # optimal
        column = tableau[:m, pivot_col]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(column > 1e-12, tableau[:m, -1] / column, np.inf)
        pivot_row = int(np.argmin(ratios))
        if not np.isfinite(ratios[pivot_row]):
            break  # unbounded cannot happen with the explicit box; be safe
        pivot = tableau[pivot_row, pivot_col]
        tableau[pivot_row, :] /= pivot
        for row in range(m + 1):
            if row != pivot_row and abs(tableau[row, pivot_col]) > 1e-14:
                tableau[row, :] -= tableau[row, pivot_col] * tableau[pivot_row, :]
        basis[pivot_row] = pivot_col

    x_shifted = np.zeros(n + m)
    for row, var in enumerate(basis):
        x_shifted[var] = tableau[row, -1]
    values = lo + x_shifted[:n]
    return LpSolution(
        values=values, objective=float(problem.objective @ values), status="optimal"
    )
