"""LP relaxation of the bounded integer program.

The branch-and-bound solver needs upper bounds from the continuous (LP)
relaxation of sub-problems.  The default implementation wraps
``scipy.optimize.linprog`` (HiGHS); a small, self-contained dense
revised-simplex implementation is provided as a fallback so the package keeps
working if SciPy's LP backend is unavailable, and as an independent
cross-check in the tests.

The built-in simplex has two code paths behind the ``batched=`` switch:

* ``batched=True`` (default) — the hot path used by branch-and-bound.  The
  pivot elimination is a single rank-1 matrix update instead of a Python loop
  over tableau rows, the basic-solution extraction is one fancy-indexed
  gather, and the tableau is carved out of a reusable
  :class:`SimplexScratch` buffer whose constant block (constraint rows,
  slack identity, objective row) is assembled once per problem and copied
  per node instead of rebuilt with ``vstack``/``eye`` allocations.
* ``batched=False`` — the original row-loop oracle.

Both paths perform the same floating-point operations in the same order and
return identical solutions.  :func:`solve_children_lp` evaluates all child
relaxations of one branch-and-bound level in one sweep over the shared
scratch template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.opt.problem import BoundedIntegerProgram

__all__ = [
    "LpSolution",
    "SimplexIterationLimitError",
    "SimplexScratch",
    "solve_lp_relaxation",
    "solve_children_lp",
    "simplex_lp",
]


class SimplexIterationLimitError(RuntimeError):
    """The simplex pivot budget ran out before optimality was certified.

    Both simplex paths bound their pivot loop at ``200 * (n + m)`` iterations
    (a degenerate-cycling guard far above the typical pivot count for these
    box-constrained relaxations).  Exhausting the budget means the tableau's
    final basic solution is feasible but *not certified optimal*, so instead
    of silently returning it the solver raises this error.  Callers that can
    degrade gracefully — the JABA-SD scheduler's near-optimal mode — catch it
    and fall back to the greedy solution, which is always feasible.
    """


@dataclass(frozen=True)
class LpSolution:
    """Solution of an LP relaxation.

    Attributes
    ----------
    values:
        Optimal (continuous) variable values.
    objective:
        Optimal objective value.
    status:
        ``"optimal"`` or ``"infeasible"`` (the relaxations solved here are
        always bounded because the variables live in a box).
    """

    values: np.ndarray
    objective: float
    status: str


class SimplexScratch:
    """Reusable buffers for the dense simplex.

    One instance serves every node relaxation of a branch-and-bound run: the
    constant tableau block of a problem (constraint rows, upper-bound rows,
    slack identity and reduced-cost row) is assembled once and copied into a
    working buffer per solve, so the per-node cost is a single ``O(size)``
    copy instead of ``zeros`` + ``vstack`` + ``eye`` allocations.
    """

    def __init__(self) -> None:
        self._template: Optional[np.ndarray] = None
        self._tableau: Optional[np.ndarray] = None
        self._problem: Optional[BoundedIntegerProgram] = None

    def tableau_for(self, problem: BoundedIntegerProgram) -> np.ndarray:
        """A working tableau pre-filled with the problem's constant block."""
        n = problem.num_variables
        m = problem.num_constraints + n
        if self._problem is not problem:
            template = np.zeros((m + 1, n + m + 1))
            template[: problem.num_constraints, :n] = problem.constraint_matrix
            template[problem.num_constraints : m, :n] = np.eye(n)
            template[:m, n : n + m] = np.eye(m)
            template[-1, :n] = -problem.objective
            self._template = template
            self._tableau = np.empty_like(template)
            self._problem = problem
        np.copyto(self._tableau, self._template)
        return self._tableau


def solve_lp_relaxation(
    problem: BoundedIntegerProgram,
    lower_bounds: Optional[np.ndarray] = None,
    upper_bounds: Optional[np.ndarray] = None,
    use_scipy: bool = True,
    batched: bool = True,
    scratch: Optional[SimplexScratch] = None,
) -> LpSolution:
    """Solve the continuous relaxation of ``problem``.

    ``lower_bounds`` / ``upper_bounds`` override the box (used by
    branch-and-bound to impose branching decisions).  ``batched`` selects the
    vectorized simplex hot path (identical results to the scalar oracle);
    ``scratch`` optionally reuses tableau buffers across repeated solves.
    """
    lo = (
        np.zeros(problem.num_variables)
        if lower_bounds is None
        else np.asarray(lower_bounds, dtype=float)
    )
    hi = (
        problem.upper_bounds.astype(float)
        if upper_bounds is None
        else np.asarray(upper_bounds, dtype=float)
    )
    if np.any(lo > hi + 1e-12):
        return LpSolution(values=lo, objective=-np.inf, status="infeasible")

    if use_scipy:
        try:
            from scipy.optimize import linprog

            result = linprog(
                c=-problem.objective,
                A_ub=problem.constraint_matrix,
                b_ub=problem.constraint_bounds,
                bounds=list(zip(lo, hi)),
                method="highs",
            )
            if result.status == 2:  # infeasible
                return LpSolution(values=lo, objective=-np.inf, status="infeasible")
            if result.success:
                return LpSolution(
                    values=np.asarray(result.x, dtype=float),
                    objective=float(-result.fun),
                    status="optimal",
                )
        except Exception:  # pragma: no cover - fall back to the simplex below
            pass
    return simplex_lp(problem, lo, hi, batched=batched, scratch=scratch)


def solve_children_lp(
    problem: BoundedIntegerProgram,
    boxes: Sequence[Tuple[np.ndarray, np.ndarray]],
    scratch: Optional[SimplexScratch] = None,
) -> List[LpSolution]:
    """Solve the relaxations of all children of one branching level.

    One sweep over the shared scratch template: the constant tableau block is
    assembled once, each child only rewrites the right-hand-side column and
    runs the vectorized pivot loop.  Children whose branching bounds cross
    (``lo > hi``) are reported infeasible without touching the tableau.
    """
    scratch = scratch if scratch is not None else SimplexScratch()
    solutions: List[LpSolution] = []
    for lo, hi in boxes:
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if np.any(lo > hi + 1e-12):
            solutions.append(LpSolution(values=lo, objective=-np.inf, status="infeasible"))
            continue
        solutions.append(simplex_lp(problem, lo, hi, batched=True, scratch=scratch))
    return solutions


def simplex_lp(
    problem: BoundedIntegerProgram,
    lower_bounds: np.ndarray,
    upper_bounds: np.ndarray,
    batched: bool = True,
    scratch: Optional[SimplexScratch] = None,
    max_iterations: Optional[int] = None,
) -> LpSolution:
    """Dense Dantzig-rule simplex on the slack-form relaxation.

    The variable box is handled by shifting to ``x' = x - lo`` and adding the
    explicit upper-bound rows ``x' <= hi - lo``; the resulting standard-form
    problem ``max c'x', A'x' <= b', x' >= 0`` always has the origin as a basic
    feasible starting point when ``b' >= 0``, which holds whenever the fixed
    lower bounds are themselves feasible.  If they are not, the sub-problem is
    reported infeasible (which is exactly what branch-and-bound needs).

    ``max_iterations`` overrides the default ``200 * (n + m)`` pivot budget;
    exhausting the budget raises :class:`SimplexIterationLimitError` rather
    than returning an uncertified solution.
    """
    lo = np.asarray(lower_bounds, dtype=float)
    hi = np.asarray(upper_bounds, dtype=float)
    b = problem.constraint_bounds - problem.constraint_matrix @ lo
    if np.any(b < -1e-9):
        return LpSolution(values=lo, objective=-np.inf, status="infeasible")
    if batched:
        return _simplex_batched(problem, lo, hi, b, scratch, max_iterations)
    return _simplex_scalar(problem, lo, hi, b, max_iterations)


def _simplex_scalar(
    problem: BoundedIntegerProgram,
    lo: np.ndarray,
    hi: np.ndarray,
    b: np.ndarray,
    max_iterations: Optional[int] = None,
) -> LpSolution:
    """The original row-loop implementation (parity oracle)."""
    c = problem.objective
    a = problem.constraint_matrix
    b = np.maximum(b, 0.0)
    box = hi - lo

    n = problem.num_variables
    # Constraint rows: resource constraints plus upper-bound rows.
    a_full = np.vstack([a, np.eye(n)])
    b_full = np.concatenate([b, box])
    m = a_full.shape[0]

    # Simplex tableau with slack variables (standard form, origin feasible).
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a_full
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b_full
    tableau[-1, :n] = -c  # maximise c'x  <=>  minimise -c'x
    basis = list(range(n, n + m))

    budget = 200 * (n + m) if max_iterations is None else max_iterations
    for _ in range(budget):
        reduced = tableau[-1, :-1]
        pivot_col = int(np.argmin(reduced))
        if reduced[pivot_col] >= -1e-10:
            break  # optimal
        column = tableau[:m, pivot_col]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(column > 1e-12, tableau[:m, -1] / column, np.inf)
        pivot_row = int(np.argmin(ratios))
        if not np.isfinite(ratios[pivot_row]):
            break  # unbounded cannot happen with the explicit box; be safe
        pivot = tableau[pivot_row, pivot_col]
        tableau[pivot_row, :] /= pivot
        for row in range(m + 1):
            if row != pivot_row and abs(tableau[row, pivot_col]) > 1e-14:
                tableau[row, :] -= tableau[row, pivot_col] * tableau[pivot_row, :]
        basis[pivot_row] = pivot_col
    else:
        raise SimplexIterationLimitError(
            f"simplex exhausted its {budget}-pivot budget without certifying "
            f"optimality (n={n}, m={m})"
        )

    x_shifted = np.zeros(n + m)
    for row, var in enumerate(basis):
        x_shifted[var] = tableau[row, -1]
    values = lo + x_shifted[:n]
    return LpSolution(
        values=values, objective=float(problem.objective @ values), status="optimal"
    )


def _simplex_batched(
    problem: BoundedIntegerProgram,
    lo: np.ndarray,
    hi: np.ndarray,
    b: np.ndarray,
    scratch: Optional[SimplexScratch],
    max_iterations: Optional[int] = None,
) -> LpSolution:
    """Vectorized pivot/ratio-test hot path (identical floats to the oracle).

    The eliminations of one pivot are a rank-1 update over the whole tableau
    with the same small-coefficient skip (factors below the oracle's 1e-14
    threshold are zeroed, making their row update an exact no-op), so every
    intermediate tableau equals the scalar oracle's.
    """
    scratch = scratch if scratch is not None else SimplexScratch()
    n = problem.num_variables
    m = problem.num_constraints + n

    tableau = scratch.tableau_for(problem)
    tableau[: problem.num_constraints, -1] = np.maximum(b, 0.0)
    tableau[problem.num_constraints : m, -1] = hi - lo
    basis = np.arange(n, n + m)

    rows = tableau[:m]
    rhs = tableau[:m, -1]
    reduced = tableau[-1, :-1]
    ratios = np.empty(m)
    mask = np.empty(m, dtype=bool)
    abs_factors = np.empty(m + 1)
    budget = 200 * (n + m) if max_iterations is None else max_iterations
    with np.errstate(divide="ignore", invalid="ignore"):
        for _ in range(budget):
            pivot_col = int(reduced.argmin())
            if reduced[pivot_col] >= -1e-10:
                break  # optimal
            column = rows[:, pivot_col]
            # Same floats as the oracle's ``where(column > eps, rhs/column,
            # inf)`` select, without allocating fresh buffers per pivot.
            np.greater(column, 1e-12, out=mask)
            ratios.fill(np.inf)
            np.divide(rhs, column, out=ratios, where=mask)
            pivot_row = int(ratios.argmin())
            if not np.isfinite(ratios[pivot_row]):
                break  # unbounded cannot happen with the explicit box; be safe
            pivot = tableau[pivot_row, pivot_col]
            pivot_vals = tableau[pivot_row, :]
            pivot_vals /= pivot
            # Eliminate only the rows the oracle touches (|factor| > 1e-14);
            # the simplex tableau stays sparse in the pivot column, so this
            # sub-matrix rank-1 update is far cheaper than a dense one.
            np.abs(tableau[:, pivot_col], out=abs_factors)
            abs_factors[pivot_row] = 0.0
            update = np.nonzero(abs_factors > 1e-14)[0]
            if update.size:
                tableau[update] -= tableau[update, pivot_col, None] * pivot_vals[None, :]
            basis[pivot_row] = pivot_col
        else:
            raise SimplexIterationLimitError(
                f"simplex exhausted its {budget}-pivot budget without "
                f"certifying optimality (n={n}, m={m})"
            )

    x_shifted = np.zeros(n + m)
    x_shifted[basis] = rhs
    values = lo + x_shifted[:n]
    return LpSolution(
        values=values, objective=float(problem.objective @ values), status="optimal"
    )
