"""Integer-programming machinery for the scheduling sub-layer.

The paper formulates multiple-burst admission as an integer program: choose
integer spreading-gain ratios ``m_j`` in ``[0, M]`` maximising a linear
objective subject to the linear admissible-region constraints (7) and (17)
and the per-request upper bound (24).  This package provides:

* :class:`~repro.opt.problem.BoundedIntegerProgram` — the problem container.
* :func:`~repro.opt.exhaustive.solve_exhaustive` — exact enumeration for
  small instances (ground truth in tests).
* :func:`~repro.opt.branch_and_bound.solve_branch_and_bound` — exact
  branch-and-bound with LP-relaxation bounds (the default optimal solver of
  JABA-SD).
* :func:`~repro.opt.greedy.solve_greedy` — fast marginal-efficiency
  heuristic (the "greedy" JABA-SD variant, used in the solver ablation).
* :mod:`~repro.opt.lp` — LP relaxation solvers (SciPy HiGHS wrapper plus a
  self-contained dense simplex fallback).
"""

from repro.opt.problem import BoundedIntegerProgram, IntegerSolution
from repro.opt.exhaustive import solve_exhaustive
from repro.opt.lp import (
    LpSolution,
    SimplexIterationLimitError,
    SimplexScratch,
    simplex_lp,
    solve_children_lp,
    solve_lp_relaxation,
)
from repro.opt.branch_and_bound import solve_branch_and_bound
from repro.opt.greedy import solve_greedy, round_lp_solution, solve_near_optimal

__all__ = [
    "BoundedIntegerProgram",
    "IntegerSolution",
    "solve_exhaustive",
    "solve_lp_relaxation",
    "solve_children_lp",
    "simplex_lp",
    "LpSolution",
    "SimplexIterationLimitError",
    "SimplexScratch",
    "solve_branch_and_bound",
    "solve_greedy",
    "round_lp_solution",
    "solve_near_optimal",
]
