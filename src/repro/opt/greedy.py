"""Greedy and rounding heuristics for the scheduling integer program.

:func:`solve_greedy` implements the fast JABA-SD variant: requests are ranked
by marginal efficiency (objective gain per unit of the most-loaded resource
they consume) and each is raised to the largest feasible integer level in
that order.  The result is always feasible and is used both as a stand-alone
scheduler (the "greedy" entry of experiment F6) and as the incumbent that
seeds the branch-and-bound solver.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.opt.problem import BoundedIntegerProgram, IntegerSolution

__all__ = ["solve_greedy", "round_lp_solution", "solve_near_optimal"]


def _efficiency(problem: BoundedIntegerProgram, index: int) -> float:
    """Objective gain per unit of normalised resource consumption."""
    gain = problem.objective[index]
    if gain <= 0.0:
        return -np.inf
    column = problem.constraint_matrix[:, index]
    bounds = np.maximum(problem.constraint_bounds, 1e-300)
    # Normalised cost: the largest fraction of any single resource consumed
    # by one unit of this variable.
    cost = float(np.max(column / bounds)) if column.size else 0.0
    if cost <= 0.0:
        return np.inf
    return gain / cost


def solve_greedy(problem: BoundedIntegerProgram) -> IntegerSolution:
    """Greedy marginal-efficiency heuristic (always feasible, not optimal)."""
    n = problem.num_variables
    values = np.zeros(n, dtype=float)
    order = sorted(range(n), key=lambda j: -_efficiency(problem, j))
    for j in order:
        if problem.objective[j] <= 0.0:
            continue
        room = problem.max_increment(values, j)
        if room > 0:
            values[j] += room
    return IntegerSolution(
        values=values.astype(int),
        objective=problem.objective_value(values),
        optimal=False,
        nodes_explored=0,
    )


def solve_near_optimal(problem: BoundedIntegerProgram) -> IntegerSolution:
    """Best of the greedy heuristic and the rounded LP relaxation.

    This is the solver the dynamic simulations use for JABA-SD: on the burst
    scheduling instances it is empirically within a fraction of a percent of
    the exact optimum (experiment F6 quantifies the gap) at a small, bounded
    cost per frame — one LP plus two linear-time repair passes.
    """
    from repro.opt.lp import solve_lp_relaxation

    greedy = solve_greedy(problem)
    if problem.num_variables == 0:
        return greedy
    lp = solve_lp_relaxation(problem, use_scipy=False)
    if lp.status != "optimal":  # pragma: no cover - box relaxation is always feasible
        return greedy
    rounded = round_lp_solution(problem, lp.values)
    best = rounded if rounded.objective >= greedy.objective else greedy
    return IntegerSolution(
        values=best.values,
        objective=best.objective,
        optimal=False,
        nodes_explored=0,
    )


def round_lp_solution(
    problem: BoundedIntegerProgram, lp_values: np.ndarray
) -> IntegerSolution:
    """Round an LP-relaxation point down, then greedily repair upwards.

    Flooring a feasible continuous point keeps it feasible (the constraint
    matrix is non-negative); the repair pass then re-invests any slack
    created by the rounding, visiting variables in decreasing fractional
    part.
    """
    lp_values = np.asarray(lp_values, dtype=float).ravel()
    if lp_values.shape != (problem.num_variables,):
        raise ValueError("lp_values has the wrong length")
    values = np.floor(np.clip(lp_values, 0.0, problem.upper_bounds) + 1e-9)
    if not problem.is_feasible(values):  # degenerate numerical case
        values = np.zeros_like(values)
    fractions = lp_values - np.floor(lp_values)
    order = np.argsort(-fractions)
    for j in order:
        if problem.objective[j] <= 0.0:
            continue
        room = problem.max_increment(values, int(j))
        if room > 0:
            values[int(j)] += room
    return IntegerSolution(
        values=values.astype(int),
        objective=problem.objective_value(values),
        optimal=False,
        nodes_explored=0,
    )
