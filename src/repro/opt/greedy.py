"""Greedy and rounding heuristics for the scheduling integer program.

:func:`solve_greedy` implements the fast JABA-SD variant: requests are ranked
by marginal efficiency (objective gain per unit of the most-loaded resource
they consume) and each is raised to the largest feasible integer level in
that order.  The result is always feasible and is used both as a stand-alone
scheduler (the "greedy" entry of experiment F6) and as the incumbent that
seeds the branch-and-bound solver.

Both entry points carry a ``batched=`` switch (mirroring the PR 1/PR 2
pattern): the default is the vectorized kernel — the efficiency ranking is
one matrix reduction instead of ``n`` per-index Python calls, and the
sequential raise loop only visits variables that can still move — while
``batched=False`` selects the original scalar oracle.  The two paths return
**identical** ``IntegerSolution.values`` (the vectorized kernels evaluate the
same floating-point expressions in the same order).
"""

from __future__ import annotations

import numpy as np

from repro.opt.problem import BoundedIntegerProgram, IntegerSolution

__all__ = ["solve_greedy", "round_lp_solution", "solve_near_optimal"]


def _efficiency(problem: BoundedIntegerProgram, index: int) -> float:
    """Objective gain per unit of normalised resource consumption."""
    gain = problem.objective[index]
    if gain <= 0.0:
        return -np.inf
    column = problem.constraint_matrix[:, index]
    bounds = np.maximum(problem.constraint_bounds, 1e-300)
    # Normalised cost: the largest fraction of any single resource consumed
    # by one unit of this variable.
    cost = float(np.max(column / bounds)) if column.size else 0.0
    if cost <= 0.0:
        return np.inf
    return gain / cost


def _efficiencies(problem: BoundedIntegerProgram) -> np.ndarray:
    """Vectorized :func:`_efficiency` over all variables (identical floats)."""
    gains = problem.objective
    if problem.num_constraints:
        bounds = np.maximum(problem.constraint_bounds, 1e-300)
        costs = np.max(problem.constraint_matrix / bounds[:, None], axis=0)
    else:
        costs = np.zeros(problem.num_variables)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = gains / costs
    return np.where(gains <= 0.0, -np.inf, np.where(costs <= 0.0, np.inf, ratios))


def _raise_greedily(
    problem: BoundedIntegerProgram, values: np.ndarray, order: np.ndarray
) -> None:
    """Raise each variable of ``order`` to its largest feasible level.

    The sequential dependence is real (each raise consumes slack the next
    decision must see), but the rooms of *all* variables are evaluated in
    one queue-wide
    :meth:`~repro.opt.problem.BoundedIntegerProgram.max_increments` ratio
    test, refreshed only when a raise actually changes the assignment.
    Between raises the cached rooms stay exact, and a cached room of 0 can
    never recover (slack only shrinks while the variable's own bound is
    untouched), so skipped variables match the oracle's 0-increment no-ops
    bit for bit.
    """
    rooms = None
    for j in order:
        if rooms is None:  # lazily refreshed: only when a raise staled it
            rooms = problem.max_increments(values)
        room = rooms[j]
        if room <= 0:
            continue
        values[j] += room
        rooms = None


def solve_greedy(
    problem: BoundedIntegerProgram, batched: bool = True
) -> IntegerSolution:
    """Greedy marginal-efficiency heuristic (always feasible, not optimal).

    ``batched=True`` (default) ranks all variables with one matrix reduction
    and prunes dead variables from the raise loop; ``batched=False`` is the
    scalar oracle.  Both return identical values.
    """
    if batched:
        return _solve_greedy_batched(problem)
    return _solve_greedy_scalar(problem)


def _solve_greedy_scalar(problem: BoundedIntegerProgram) -> IntegerSolution:
    """The original per-index implementation (parity oracle)."""
    n = problem.num_variables
    values = np.zeros(n, dtype=float)
    order = sorted(range(n), key=lambda j: -_efficiency(problem, j))
    for j in order:
        if problem.objective[j] <= 0.0:
            continue
        room = problem.max_increment(values, j)
        if room > 0:
            values[j] += room
    return IntegerSolution(
        values=values.astype(int),
        objective=problem.objective_value(values),
        optimal=False,
        nodes_explored=0,
    )


def _solve_greedy_batched(problem: BoundedIntegerProgram) -> IntegerSolution:
    n = problem.num_variables
    values = np.zeros(n, dtype=float)
    if n:
        # Stable argsort of the negated efficiencies == the oracle's stable
        # Python sort with key -efficiency (ties keep index order).
        efficiencies = _efficiencies(problem)
        order = np.argsort(-efficiencies, kind="stable")
        # The oracle skips non-positive objective entries inside its loop.
        order = order[problem.objective[order] > 0.0]
        _raise_greedily(problem, values, order)
    return IntegerSolution(
        values=values.astype(int),
        objective=problem.objective_value(values),
        optimal=False,
        nodes_explored=0,
    )


def solve_near_optimal(
    problem: BoundedIntegerProgram, batched: bool = True
) -> IntegerSolution:
    """Best of the greedy heuristic and the rounded LP relaxation.

    This is the solver the dynamic simulations use for JABA-SD: on the burst
    scheduling instances it is empirically within a fraction of a percent of
    the exact optimum (experiment F6 quantifies the gap) at a small, bounded
    cost per frame — one LP plus two linear-time repair passes.

    If the simplex exhausts its pivot budget
    (:class:`~repro.opt.lp.SimplexIterationLimitError`) the LP leg is dropped
    and the greedy solution — always feasible — is returned on its own.
    """
    from repro.opt.lp import SimplexIterationLimitError, solve_lp_relaxation

    greedy = solve_greedy(problem, batched=batched)
    if problem.num_variables == 0:
        return greedy
    try:
        lp = solve_lp_relaxation(problem, use_scipy=False, batched=batched)
    except SimplexIterationLimitError:
        return greedy
    if lp.status != "optimal":  # pragma: no cover - box relaxation is always feasible
        return greedy
    rounded = round_lp_solution(problem, lp.values, batched=batched)
    best = rounded if rounded.objective >= greedy.objective else greedy
    return IntegerSolution(
        values=best.values,
        objective=best.objective,
        optimal=False,
        nodes_explored=0,
    )


def round_lp_solution(
    problem: BoundedIntegerProgram, lp_values: np.ndarray, batched: bool = True
) -> IntegerSolution:
    """Round an LP-relaxation point down, then greedily repair upwards.

    Flooring a feasible continuous point keeps it feasible (the constraint
    matrix is non-negative); the repair pass then re-invests any slack
    created by the rounding, visiting variables in decreasing fractional
    part.  ``batched=True`` (default) prunes the repair loop with one
    queue-wide room evaluation; ``batched=False`` is the scalar oracle.
    """
    lp_values = np.asarray(lp_values, dtype=float).ravel()
    if lp_values.shape != (problem.num_variables,):
        raise ValueError("lp_values has the wrong length")
    values = np.floor(np.clip(lp_values, 0.0, problem.upper_bounds) + 1e-9)
    if not problem.is_feasible(values):  # degenerate numerical case
        values = np.zeros_like(values)
    fractions = lp_values - np.floor(lp_values)
    order = np.argsort(-fractions)
    if batched:
        order = order[problem.objective[order] > 0.0]
        _raise_greedily(problem, values, order)
    else:
        for j in order:
            if problem.objective[j] <= 0.0:
                continue
            room = problem.max_increment(values, int(j))
            if room > 0:
                values[int(j)] += room
    return IntegerSolution(
        values=values.astype(int),
        objective=problem.objective_value(values),
        optimal=False,
        nodes_explored=0,
    )
