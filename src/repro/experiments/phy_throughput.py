"""Experiment F1 — adaptive physical-layer throughput gain.

Regenerates the comparison motivating Section 2 of the paper (and its
reference [3]): the average throughput of the variable-throughput adaptive
orthogonal coding scheme (VTAOC, constant-BER mode) versus the best
*fixed-rate* physical layer, as a function of the local-mean CSI.  The
fixed-rate baseline is chosen per CSI point as the single mode with the best
expected goodput — the strongest possible non-adaptive competitor.

Expected shape: the adaptive scheme is never worse and shows its largest
relative gain in the mid-CSI region where no single fixed mode fits the whole
fading range.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import constants
from repro.experiments.common import ExperimentResult
from repro.phy.fixedrate import FixedRatePhy
from repro.phy.modes import ModeTable
from repro.phy.vtaoc import VtaocCodec
from repro.utils.units import db_to_linear

__all__ = ["run_phy_throughput", "main"]


def run_phy_throughput(
    mean_csi_db: Optional[Sequence[float]] = None,
    target_ber: float = constants.TARGET_BER,
    coding_gain_db: float = 3.0,
    num_modes: int = constants.VTAOC_NUM_MODES,
    monte_carlo_samples: int = 0,
    seed: int = 0,
) -> ExperimentResult:
    """Average throughput of adaptive vs. fixed-rate PHY over mean CSI.

    Parameters
    ----------
    mean_csi_db:
        Local-mean CSI grid in dB (default -5 ... 25 dB).
    target_ber:
        Constant-BER target of both schemes.
    coding_gain_db:
        Coding gain of the orthogonal coding stage.
    num_modes:
        Number of VTAOC modes.
    monte_carlo_samples:
        When > 0, an independent Monte-Carlo estimate of the adaptive
        throughput is added to each row (validation column).
    seed:
        Seed of the Monte-Carlo estimate.
    """
    if mean_csi_db is None:
        mean_csi_db = np.arange(-5.0, 26.0, 2.5)
    table = ModeTable.default(num_modes)
    codec = VtaocCodec(mode_table=table, target_ber=target_ber, coding_gain_db=coding_gain_db)
    rng = np.random.default_rng(seed)

    result = ExperimentResult(
        experiment_id="F1",
        title=(
            "Average throughput (bits/symbol) of the adaptive VTAOC PHY vs. the "
            f"best fixed-rate mode, target BER = {target_ber:g}"
        ),
    )
    for csi_db in mean_csi_db:
        mean_csi = float(db_to_linear(csi_db))
        adaptive = float(codec.average_throughput(mean_csi))
        fixed_phy = FixedRatePhy.design_for_mean_csi(
            mean_csi, table, target_ber=target_ber, coding_gain_db=coding_gain_db
        )
        fixed = float(fixed_phy.average_throughput(mean_csi))
        record = {
            "mean_csi_db": float(csi_db),
            "adaptive_bps_per_symbol": adaptive,
            "fixed_bps_per_symbol": fixed,
            "fixed_mode": fixed_phy.mode.index,
            "gain": adaptive / fixed if fixed > 0 else float("inf"),
            "adaptive_outage": codec.outage_probability(mean_csi),
            "fixed_outage": fixed_phy.outage_probability(mean_csi),
        }
        if monte_carlo_samples > 0:
            record["adaptive_mc"] = codec.average_throughput_mc(
                mean_csi, rng, monte_carlo_samples
            )
        result.add(**record)

    gains = [r["gain"] for r in result.records if np.isfinite(r["gain"])]
    result.notes = (
        "Shape check: the adaptive PHY is never below the best fixed mode and "
        f"peaks at a x{max(gains):.2f} throughput gain in the mid-CSI region."
    )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    result = run_phy_throughput(monte_carlo_samples=50_000)
    print(result.to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
