"""Parallel Monte-Carlo campaign engine.

The paper's headline numbers (capacity, coverage, delay-vs-load, objective
trade-offs) are Monte-Carlo estimates: every experiment point must be
replicated over independent seeds before a mean and a confidence interval
mean anything.  This module turns the fast single-run simulator into a
production-scale estimator:

* a :class:`Campaign` is a declarative grid of experiment points (scenario ×
  load × scheduler …), each replicated ``replications`` times;
* every replication draws its randomness from a **deterministic seed tree**:
  leaf ``(point, replication)`` of root seed ``s`` is
  ``SeedSequence(entropy=s, spawn_key=(point, replication))``, so the stream
  a replication sees depends only on its coordinates — never on execution
  order, worker count or process identity;
* replications are sharded across a :mod:`multiprocessing` pool
  (``workers=1`` falls back to plain in-process execution); because of the
  seed-tree contract the aggregated results are **bit-identical for any
  worker count**;
* completed replications are checkpointed to JSON after every result, so a
  killed campaign resumes without recomputing finished work;
* per-point aggregation (mean / CI half-width / extremes) goes through
  :mod:`repro.utils.stats`, and the same module's hypothesis-test battery
  certifies that the seed tree produces independent streams.

The engine is deliberately simulator-agnostic: a *runner* is any picklable
module-level callable ``runner(params, seed_sequence) -> dict[str, float]``.
The experiment modules (:mod:`repro.experiments.coverage`,
:mod:`repro.experiments.delay_vs_load`, …) each expose such a runner plus a
reducer that turns the campaign result back into the paper-style table.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.utils.stats import confidence_interval

__all__ = [
    "replication_seed",
    "seed_sequence_to_int",
    "MetricSummary",
    "PointResult",
    "CampaignResult",
    "Campaign",
    "main",
]

MetricDict = Dict[str, float]
Runner = Callable[[Mapping[str, object], np.random.SeedSequence], MetricDict]


# ---------------------------------------------------------------------------
# Deterministic seed tree
# ---------------------------------------------------------------------------
def replication_seed(
    root_seed: int, seed_group: int, replication: int
) -> np.random.SeedSequence:
    """Seed-tree leaf for replication ``replication`` of group ``seed_group``.

    The leaf is addressed purely by its coordinates via the ``spawn_key``
    mechanism of :class:`numpy.random.SeedSequence`, so any shard of any
    worker reconstructs exactly the same stream without coordination — the
    determinism contract the campaign engine is built on.  Points sharing a
    seed group (common-random-numbers designs) share leaves; distinct
    ``(seed_group, replication)`` coordinates give provably independent
    streams.
    """
    if seed_group < 0 or replication < 0:
        raise ValueError("seed_group and replication must be non-negative")
    return np.random.SeedSequence(
        entropy=int(root_seed), spawn_key=(int(seed_group), int(replication))
    )


def seed_sequence_to_int(sequence: np.random.SeedSequence) -> int:
    """Collapse a seed-tree leaf to a 64-bit integer master seed.

    Used to drive components whose configuration takes a plain integer seed
    (e.g. :attr:`repro.simulation.scenario.ScenarioConfig.seed`); the mapping
    is injective enough in practice that distinct leaves keep distinct
    streams (certified by the collision tests in the campaign test suite).
    """
    return int(sequence.generate_state(1, np.uint64)[0])


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric over the replications of one point."""

    count: int
    mean: float
    ci_half_width: float
    std: float
    min: float
    max: float

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], confidence: float = 0.95
    ) -> "MetricSummary":
        """Summarise ``samples`` with a Student-t confidence interval."""
        arr = np.asarray(list(samples), dtype=float)
        finite = arr[np.isfinite(arr)]
        if finite.size == 0:
            return cls(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        mean, half = confidence_interval(finite, confidence)
        std = float(finite.std(ddof=1)) if finite.size > 1 else 0.0
        return cls(
            count=int(finite.size),
            mean=mean,
            ci_half_width=half,
            std=std,
            min=float(finite.min()),
            max=float(finite.max()),
        )


@dataclass
class PointResult:
    """All replications of one grid point, keyed by replication index."""

    index: int
    params: Dict[str, object]
    replications: Dict[int, MetricDict] = field(default_factory=dict)

    def metric_names(self) -> List[str]:
        """Union of metric names over the replications, insertion-ordered."""
        names: Dict[str, None] = {}
        for rep in sorted(self.replications):
            for key in self.replications[rep]:
                names.setdefault(key, None)
        return list(names)

    def samples(self, metric: str) -> List[float]:
        """The metric's samples in replication order (determinism anchor)."""
        return [
            float(self.replications[rep][metric])
            for rep in sorted(self.replications)
            if metric in self.replications[rep]
        ]

    def summary(self, confidence: float = 0.95) -> Dict[str, MetricSummary]:
        """Per-metric aggregate over the replications."""
        return {
            name: MetricSummary.from_samples(self.samples(name), confidence)
            for name in self.metric_names()
        }


@dataclass
class CampaignResult:
    """Outcome of a campaign run."""

    name: str
    root_seed: int
    replications: int
    points: List[PointResult]
    reused_replications: int = 0
    elapsed_s: float = 0.0

    @property
    def completed_replications(self) -> int:
        """Total number of completed replications across all points."""
        return sum(len(p.replications) for p in self.points)

    def summaries(self, confidence: float = 0.95) -> List[Dict[str, MetricSummary]]:
        """Per-point summaries in grid order."""
        return [point.summary(confidence) for point in self.points]


# ---------------------------------------------------------------------------
# Worker entry point (module level so it pickles by reference)
# ---------------------------------------------------------------------------
def _execute_task(
    payload: Tuple[Runner, Mapping[str, object], int, int, int, int],
) -> Tuple[int, int, MetricDict]:
    runner, params, root_seed, point_index, replication, seed_group = payload
    seed = replication_seed(root_seed, seed_group, replication)
    metrics = runner(params, seed)
    clean = {str(key): float(value) for key, value in metrics.items()}
    return point_index, replication, clean


# ---------------------------------------------------------------------------
# Campaign
# ---------------------------------------------------------------------------
class Campaign:
    """A sharded multi-replication Monte-Carlo experiment.

    Parameters
    ----------
    name:
        Campaign identifier (recorded in checkpoints; a checkpoint written by
        a differently shaped campaign is refused).
    runner:
        Module-level callable ``runner(params, seed_sequence) -> dict`` that
        executes one replication and returns scalar metrics.  It must be
        picklable (importable by name) for multi-worker runs, and must draw
        **all** of its randomness from the passed seed sequence.
    points:
        The experiment grid: one params mapping per point.  Params must be
        picklable for multi-worker runs.
    replications:
        Independent replications per point.
    root_seed:
        Root of the deterministic seed tree.
    metadata:
        Free-form information carried to the reducers (titles, thresholds).
    seed_groups:
        Optional per-point seed-group indices (same length as ``points``).
        Points sharing a group draw the **same** replication streams — the
        common-random-numbers design the paper-style experiments use to make
        scheduler comparisons paired (same drops, same traffic sample paths).
        ``None`` gives every point its own group (fully independent points).
    """

    def __init__(
        self,
        name: str,
        runner: Runner,
        points: Sequence[Mapping[str, object]],
        replications: int = 1,
        root_seed: int = 0,
        metadata: Optional[Mapping[str, object]] = None,
        seed_groups: Optional[Sequence[int]] = None,
    ) -> None:
        if not points:
            raise ValueError("points must not be empty")
        if replications < 1:
            raise ValueError("replications must be at least 1")
        self.name = str(name)
        self.runner = runner
        self.points = [dict(p) for p in points]
        self.replications = int(replications)
        self.root_seed = int(root_seed)
        self.metadata = dict(metadata or {})
        if seed_groups is None:
            self.seed_groups = list(range(len(self.points)))
        else:
            if len(seed_groups) != len(self.points):
                raise ValueError("seed_groups must match points in length")
            self.seed_groups = [int(g) for g in seed_groups]

    # -- checkpointing -----------------------------------------------------------
    @staticmethod
    def _stable_repr(value: object) -> str:
        """A repr of a point param that survives process restarts.

        ``repr`` of a function or bound method embeds a memory address, which
        would change the fingerprint on every run and make checkpoints of
        campaigns with callable scheduler specs unresumable — so callables
        are identified by their qualified name instead.
        """
        if callable(value):
            module = getattr(value, "__module__", "")
            name = getattr(value, "__qualname__", None) or getattr(
                value, "__name__", None
            )
            if name is not None:
                return f"<callable {module}.{name}>"
            return f"<callable {type(value).__qualname__}>"
        return repr(value)

    def fingerprint(self) -> str:
        """Stable digest of the campaign shape (grid, replications, seed)."""
        parts = [
            self.name,
            str(self.root_seed),
            str(self.replications),
            str(len(self.points)),
            repr(self.seed_groups),
        ]
        for point in self.points:
            parts.append(
                repr(sorted((str(k), self._stable_repr(v)) for k, v in point.items()))
            )
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]

    def _load_checkpoint(self, path: str) -> Dict[str, MetricDict]:
        if not os.path.exists(path):
            return {}
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("fingerprint") != self.fingerprint():
            raise ValueError(
                f"checkpoint {path!r} was written by a different campaign "
                f"(name/grid/replications/root seed changed); refusing to resume"
            )
        return {str(k): dict(v) for k, v in payload.get("completed", {}).items()}

    def _write_checkpoint(
        self, path: str, completed: Mapping[str, MetricDict], fingerprint: str
    ) -> None:
        payload = {
            "campaign": self.name,
            "root_seed": self.root_seed,
            "replications": self.replications,
            "num_points": len(self.points),
            "fingerprint": fingerprint,
            "completed": completed,
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)

    # -- execution ---------------------------------------------------------------
    def tasks(self) -> List[Tuple[int, int]]:
        """All ``(point_index, replication)`` coordinates of the campaign."""
        return [
            (point_index, replication)
            for point_index in range(len(self.points))
            for replication in range(self.replications)
        ]

    def run(
        self,
        workers: int = 1,
        checkpoint_path: Optional[str] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> CampaignResult:
        """Execute the campaign and aggregate the results.

        Parameters
        ----------
        workers:
            Worker processes; ``1`` runs in-process (no pool, no pickling
            requirements).  Any value yields bit-identical aggregates for a
            fixed root seed — sharding only changes wall-clock time.
        checkpoint_path:
            JSON file updated after every completed replication; an existing
            checkpoint of the same campaign is resumed (completed
            replications are loaded, not recomputed).
        progress:
            Optional ``progress(done, total)`` callback.
        """
        if workers < 1:
            raise ValueError("workers must be at least 1")
        started = time.perf_counter()
        # Hashing the whole grid is O(points); do it once per run, not once
        # per checkpoint write.
        fingerprint = self.fingerprint() if checkpoint_path else ""
        completed: Dict[str, MetricDict] = {}
        if checkpoint_path:
            completed = self._load_checkpoint(checkpoint_path)
        reused = len(completed)

        pending = [
            (point_index, replication)
            for point_index, replication in self.tasks()
            if f"{point_index}/{replication}" not in completed
        ]
        total = len(self.points) * self.replications
        done = total - len(pending)

        def store(point_index: int, replication: int, metrics: MetricDict) -> None:
            nonlocal done
            completed[f"{point_index}/{replication}"] = metrics
            done += 1
            if checkpoint_path:
                self._write_checkpoint(checkpoint_path, completed, fingerprint)
            if progress is not None:
                progress(done, total)

        if workers == 1 or not pending:
            for point_index, replication in pending:
                seed = replication_seed(
                    self.root_seed, self.seed_groups[point_index], replication
                )
                metrics = self.runner(self.points[point_index], seed)
                store(
                    point_index,
                    replication,
                    {str(k): float(v) for k, v in metrics.items()},
                )
        else:
            import multiprocessing as mp

            method = "fork" if "fork" in mp.get_all_start_methods() else None
            ctx = mp.get_context(method)
            payloads = [
                (self.runner, self.points[pi], self.root_seed, pi, rep,
                 self.seed_groups[pi])
                for pi, rep in pending
            ]
            with ctx.Pool(processes=workers) as pool:
                for point_index, replication, metrics in pool.imap_unordered(
                    _execute_task, payloads, chunksize=1
                ):
                    store(point_index, replication, metrics)

        points = [
            PointResult(index=index, params=dict(params))
            for index, params in enumerate(self.points)
        ]
        for key, metrics in completed.items():
            point_index, replication = (int(part) for part in key.split("/"))
            points[point_index].replications[replication] = metrics
        return CampaignResult(
            name=self.name,
            root_seed=self.root_seed,
            replications=self.replications,
            points=points,
            reused_replications=reused,
            elapsed_s=time.perf_counter() - started,
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv=None) -> int:  # pragma: no cover - CLI entry point
    """Run one of the ported experiments as a sharded campaign.

    Example (the CI smoke grid)::

        python -m repro.experiments --experiment coverage \\
            --loads 4 8 --schedulers "JABA-SD(J1)" FCFS \\
            --num-drops 2 --replications 1 --workers 2
    """
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--experiment",
        choices=["coverage", "delay", "capacity", "objectives"],
        default="coverage",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--replications", type=int, default=1,
                        help="replications (seeds) per grid point")
    parser.add_argument("--loads", type=int, nargs="+", default=None,
                        help="data users per cell swept by the grid")
    parser.add_argument("--schedulers", nargs="+", default=None,
                        help="scheduler labels (e.g. 'JABA-SD(J1)' FCFS)")
    parser.add_argument("--num-drops", type=int, default=None,
                        help="coverage only: Monte-Carlo drops per replication "
                             "(default 30)")
    parser.add_argument("--duration", type=float, default=6.0,
                        help="dynamic experiments: simulated seconds per run")
    parser.add_argument("--warmup", type=float, default=1.0,
                        help="dynamic experiments: warm-up seconds per run")
    parser.add_argument("--root-seed", type=int, default=None,
                        help="seed-tree root (default: the experiment default)")
    parser.add_argument("--checkpoint", default=None,
                        help="JSON checkpoint path (resumes if it exists)")
    args = parser.parse_args(argv)

    # Flags that a given experiment would silently drop are rejected instead.
    if args.experiment != "coverage" and args.num_drops is not None:
        parser.error("--num-drops only applies to --experiment coverage")
    if args.experiment == "objectives" and (args.loads or args.schedulers):
        parser.error(
            "--loads/--schedulers do not apply to --experiment objectives "
            "(it sweeps the J2 delay-penalty weight at one load)"
        )

    from repro.experiments.capacity import run_capacity
    from repro.experiments.common import paper_scenario
    from repro.experiments.coverage import run_coverage
    from repro.experiments.delay_vs_load import run_delay_vs_load
    from repro.experiments.objectives_tradeoff import run_objectives_tradeoff

    factories = None
    if args.schedulers:
        factories = {label: label for label in args.schedulers}
    common = dict(workers=args.workers, checkpoint_path=args.checkpoint)
    if args.experiment == "coverage":
        kwargs = dict(
            loads=args.loads,
            num_drops=args.num_drops if args.num_drops is not None else 30,
            num_replications=args.replications,
            scheduler_factories=factories,
            **common,
        )
        if args.root_seed is not None:
            kwargs["seed"] = args.root_seed
        result = run_coverage(**kwargs)
    else:
        scenario = paper_scenario(duration_s=args.duration, warmup_s=args.warmup)
        if args.root_seed is not None:
            scenario = scenario.with_seed(args.root_seed)
        if args.experiment == "delay":
            result = run_delay_vs_load(
                loads=args.loads,
                scenario=scenario,
                scheduler_factories=factories,
                num_seeds=args.replications,
                **common,
            )
        elif args.experiment == "capacity":
            result = run_capacity(
                loads=args.loads,
                scenario=scenario,
                scheduler_factories=factories,
                num_seeds=args.replications,
                **common,
            )
        else:
            result = run_objectives_tradeoff(
                scenario=scenario, num_seeds=args.replications, **common
            )
    print(result.to_table())
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
