"""Parallel Monte-Carlo campaign engine.

The paper's headline numbers (capacity, coverage, delay-vs-load, objective
trade-offs) are Monte-Carlo estimates: every experiment point must be
replicated over independent seeds before a mean and a confidence interval
mean anything.  This module turns the fast single-run simulator into a
production-scale estimator:

* a :class:`Campaign` is a declarative grid of experiment points (scenario ×
  load × scheduler …), each replicated ``replications`` times;
* every replication draws its randomness from a **deterministic seed tree**:
  leaf ``(point, replication)`` of root seed ``s`` is
  ``SeedSequence(entropy=s, spawn_key=(point, replication))``, so the stream
  a replication sees depends only on its coordinates — never on execution
  order, worker count or process identity;
* execution is delegated to a pluggable **executor**
  (:mod:`repro.experiments.executors`): in-process (``workers=1``), a
  :mod:`multiprocessing` pool, or the fault-tolerant
  :class:`~repro.experiments.executors.ResilientExecutor` with per-task
  timeouts, retry/backoff, dead-worker respawn, speculative straggler
  re-issue and poisoned-task quarantine; because of the seed-tree contract
  the aggregated results are **bit-identical for any executor, worker count
  and retry history** (a re-executed task recomputes exactly the same
  bytes);
* completed replications are checkpointed to JSON after every result, so a
  killed campaign resumes without recomputing finished work; a corrupt
  (e.g. mid-write-truncated) checkpoint is quarantined to ``<path>.corrupt``
  instead of crashing the resume, and SIGINT/SIGTERM flush a final
  checkpoint and terminate the workers promptly;
* quarantined (permanently failing) replications degrade only their grid
  point: the failure count is carried on :class:`PointResult` /
  :class:`MetricSummary` and the experiment reducers flag the degraded
  cells, the campaign itself completes;
* a seeded chaos harness (:mod:`repro.experiments.faults`) injects worker
  crashes, runner exceptions and delays at chosen ``(point, replication)``
  coordinates so the fault-tolerance layer is provable, not assumed;
* per-point aggregation (mean / CI half-width / extremes) goes through
  :mod:`repro.utils.stats`, and the same module's hypothesis-test battery
  certifies that the seed tree produces independent streams.

The engine is deliberately simulator-agnostic: a *runner* is any picklable
module-level callable ``runner(params, seed_sequence) -> dict[str, float]``.
The experiment modules (:mod:`repro.experiments.coverage`,
:mod:`repro.experiments.delay_vs_load`, …) each expose such a runner plus a
reducer that turns the campaign result back into the paper-style table.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.experiments.executors import (
    Executor,
    PoolExecutor,
    ResilientExecutor,
    SerialExecutor,
    TaskSpec,
)
from repro.experiments.journal import CheckpointJournal, _atomic_write
from repro.experiments.swarm import SwarmExecutor
from repro.utils.hooks import SimHooks, resolve_hooks
from repro.utils.recorder import (
    EventRecorder,
    JsonlSink,
    RecorderHooks,
    use_recorder,
)
from repro.utils.rng import AntitheticRng
from repro.utils.stats import (
    confidence_interval,
    paired_confidence_interval,
    unpaired_confidence_interval,
)

__all__ = [
    "replication_seed",
    "seed_sequence_to_int",
    "AntitheticSeedSequence",
    "is_antithetic",
    "rng_for_leaf",
    "grid_points",
    "MetricSummary",
    "DeltaSummary",
    "PointResult",
    "CampaignResult",
    "Campaign",
    "main",
]

#: An executor may be passed as an instance or by name (``"serial"``,
#: ``"pool"``, ``"resilient"``); names are resolved against the campaign's
#: ``workers`` argument at run time.
ExecutorSpec = Union[str, Executor]

MetricDict = Dict[str, float]
Runner = Callable[[Mapping[str, object], np.random.SeedSequence], MetricDict]


# ---------------------------------------------------------------------------
# Deterministic seed tree
# ---------------------------------------------------------------------------
class AntitheticSeedSequence(np.random.SeedSequence):
    """A seed-tree leaf whose stream must be *reflected*, not consumed as-is.

    It seeds a generator to the exact same state as the plain leaf with the
    same coordinates; the ``antithetic`` marker tells the runner (through
    :func:`rng_for_leaf`) to wrap that generator in
    :class:`repro.utils.rng.AntitheticRng`, which mirrors every draw.
    Runners that ignore the marker would silently break the negative
    coupling, so :func:`seed_sequence_to_int` refuses antithetic leaves.
    """

    antithetic = True


def is_antithetic(sequence: np.random.SeedSequence) -> bool:
    """Whether a seed-tree leaf requests the antithetic (mirrored) stream."""
    return bool(getattr(sequence, "antithetic", False))


def rng_for_leaf(sequence: np.random.SeedSequence):
    """Build the generator a runner should draw from for this leaf.

    Plain leaves give an ordinary :class:`numpy.random.Generator`; leaves
    marked antithetic give an :class:`repro.utils.rng.AntitheticRng` whose
    underlying generator is seeded identically to the primary replication of
    the pair, so every draw is the primary draw reflected.  Runners that
    opt in to antithetic campaigns must obtain their generator through this
    helper instead of ``np.random.default_rng(seed)``.
    """
    if is_antithetic(sequence):
        primary = np.random.SeedSequence(
            entropy=sequence.entropy, spawn_key=tuple(sequence.spawn_key)
        )
        return AntitheticRng(np.random.default_rng(primary))
    return np.random.default_rng(sequence)


def replication_seed(
    root_seed: int, seed_group: int, replication: int, antithetic: bool = False
) -> np.random.SeedSequence:
    """Seed-tree leaf for replication ``replication`` of group ``seed_group``.

    The leaf is addressed purely by its coordinates via the ``spawn_key``
    mechanism of :class:`numpy.random.SeedSequence`, so any shard of any
    worker reconstructs exactly the same stream without coordination — the
    determinism contract the campaign engine is built on.  Points sharing a
    seed group (common-random-numbers designs) share leaves; distinct
    ``(seed_group, replication)`` coordinates give provably independent
    streams.  ``antithetic=True`` returns the same coordinates marked as an
    :class:`AntitheticSeedSequence` — the mirror stream of the plain leaf.
    """
    if seed_group < 0 or replication < 0:
        raise ValueError("seed_group and replication must be non-negative")
    cls = AntitheticSeedSequence if antithetic else np.random.SeedSequence
    return cls(
        entropy=int(root_seed), spawn_key=(int(seed_group), int(replication))
    )


def seed_sequence_to_int(sequence: np.random.SeedSequence) -> int:
    """Collapse a seed-tree leaf to a 64-bit integer master seed.

    Used to drive components whose configuration takes a plain integer seed
    (e.g. :attr:`repro.simulation.scenario.ScenarioConfig.seed`); the mapping
    is injective enough in practice that distinct leaves keep distinct
    streams (certified by the collision tests in the campaign test suite).

    Antithetic leaves are refused: an integer master seed reconstructs the
    *primary* stream, which would silently drop the reflection and destroy
    the negative coupling the pair exists for.  Runners that support
    antithetic campaigns must draw through :func:`rng_for_leaf` instead.
    """
    if is_antithetic(sequence):
        raise ValueError(
            "antithetic seed leaf cannot be collapsed to an integer seed; "
            "the runner must build its generator with rng_for_leaf() to "
            "honour the mirrored stream"
        )
    return int(sequence.generate_state(1, np.uint64)[0])


def grid_points(
    axes: Mapping[str, Sequence[object]],
    paired: Sequence[str] = ("scheduler",),
) -> Tuple[List[Dict[str, object]], List[int]]:
    """Cartesian-product grid with common-random-numbers seed groups.

    ``axes`` maps axis name to its values; the returned points enumerate the
    full product (in ``itertools.product`` order, first axis slowest).  The
    returned seed groups make every point that differs only in the ``paired``
    axes share a group — the CRN design that makes *policy* comparisons
    paired: with ``paired=("scheduler",)``, every scheduler sees the same
    replication streams at each load, exactly as the hand-built delay and
    coverage grids arrange.  Feed both lists to :class:`Campaign`::

        points, groups = grid_points(
            {"load": [6, 12], "scheduler": ["JABA-SD(J1)", "proportional-fair"]}
        )
        Campaign(..., points=points, seed_groups=groups)
    """
    names = list(axes)
    unknown = [name for name in paired if name not in names]
    if unknown:
        raise ValueError(
            f"paired axes {unknown} are not grid axes; axes: {names}"
        )
    points: List[Dict[str, object]] = []
    seed_groups: List[int] = []
    group_of: Dict[Tuple[str, ...], int] = {}
    for combo in itertools.product(*(list(axes[name]) for name in names)):
        point = dict(zip(names, combo))
        key = tuple(
            Campaign._stable_repr(point[name]) for name in names if name not in paired
        )
        seed_groups.append(group_of.setdefault(key, len(group_of)))
        points.append(point)
    return points, seed_groups


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric over the replications of one point.

    ``failed`` counts replications of the point that were quarantined by a
    fault-tolerant executor and therefore contribute no sample — a non-zero
    value marks a *degraded* cell whose mean/CI rest on fewer replications
    than the campaign requested.  ``non_finite`` counts replications that
    *did* complete but produced a NaN/inf value for this metric; they are
    excluded from the aggregates and flag the cell as degraded the same way
    ``failed`` does (a mean quietly computed over fewer samples than the
    campaign ran would otherwise look clean).
    """

    count: int
    mean: float
    ci_half_width: float
    std: float
    min: float
    max: float
    failed: int = 0
    non_finite: int = 0

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], confidence: float = 0.95, failed: int = 0
    ) -> "MetricSummary":
        """Summarise ``samples`` with a Student-t confidence interval."""
        arr = np.asarray(list(samples), dtype=float)
        finite = arr[np.isfinite(arr)]
        non_finite = int(arr.size - finite.size)
        if finite.size == 0:
            return cls(
                0,
                math.nan,
                math.nan,
                math.nan,
                math.nan,
                math.nan,
                failed=failed,
                non_finite=non_finite,
            )
        mean, half = confidence_interval(finite, confidence)
        std = float(finite.std(ddof=1)) if finite.size > 1 else 0.0
        return cls(
            count=int(finite.size),
            mean=mean,
            ci_half_width=half,
            std=std,
            min=float(finite.min()),
            max=float(finite.max()),
            failed=failed,
            non_finite=non_finite,
        )


@dataclass(frozen=True)
class DeltaSummary:
    """Paired difference of one metric between two grid points under CRN.

    ``delta`` is ``mean_a - mean_b`` over the ``count`` replication pairs
    the two points share; ``ci_half_width`` is the paired-t interval on the
    per-pair differences, while ``unpaired_ci_half_width`` is the Welch
    interval that ignores the pairing — quoting both makes the variance
    reduction bought by common random numbers visible.  ``non_finite``
    counts pairs dropped because either side was NaN/inf.
    """

    count: int
    mean_a: float
    mean_b: float
    delta: float
    ci_half_width: float
    unpaired_ci_half_width: float
    non_finite: int = 0


@dataclass
class PointResult:
    """All replications of one grid point, keyed by replication index.

    ``failures`` maps the replication indices that a fault-tolerant executor
    quarantined (exhausted retries) to the last failure reason; those
    replications are absent from ``replications`` and the point's summaries
    are computed over the survivors only.

    When the campaign ran with ``antithetic=True``, replication ``2k + 1``
    is the mirrored stream of replication ``2k``; the statistical unit is
    then the *pair*, and :meth:`samples` returns within-pair averages
    (pairs with a missing member are dropped — half a pair is not an
    unbiased draw of the pair mean).
    """

    index: int
    params: Dict[str, object]
    replications: Dict[int, MetricDict] = field(default_factory=dict)
    failures: Dict[int, str] = field(default_factory=dict)
    antithetic: bool = False
    seed_group: Optional[int] = None

    def metric_names(self) -> List[str]:
        """Union of metric names over the replications, insertion-ordered."""
        names: Dict[str, None] = {}
        for rep in sorted(self.replications):
            for key in self.replications[rep]:
                names.setdefault(key, None)
        return list(names)

    def sample_map(self, metric: str) -> Dict[int, float]:
        """The metric's samples keyed by statistical unit.

        Plain campaigns key by replication index; antithetic campaigns key
        by pair index ``k`` with the within-pair average of replications
        ``2k`` and ``2k + 1`` as the value.  The keys are what makes CRN
        deltas between two points pair the *same* streams (see
        :meth:`CampaignResult.compare_points`).
        """
        if not self.antithetic:
            return {
                rep: float(self.replications[rep][metric])
                for rep in sorted(self.replications)
                if metric in self.replications[rep]
            }
        pairs: Dict[int, float] = {}
        for rep in sorted(self.replications):
            if rep % 2 or (rep + 1) not in self.replications:
                continue
            primary = self.replications[rep]
            mirror = self.replications[rep + 1]
            if metric in primary and metric in mirror:
                pairs[rep // 2] = 0.5 * (
                    float(primary[metric]) + float(mirror[metric])
                )
        return pairs

    def samples(self, metric: str) -> List[float]:
        """The metric's samples in replication order (determinism anchor)."""
        sample_map = self.sample_map(metric)
        return [sample_map[key] for key in sorted(sample_map)]

    def non_finite_replications(self) -> List[int]:
        """Replications that completed but produced any NaN/inf metric."""
        return [
            rep
            for rep in sorted(self.replications)
            if any(
                not math.isfinite(float(value))
                for value in self.replications[rep].values()
            )
        ]

    def summary(self, confidence: float = 0.95) -> Dict[str, MetricSummary]:
        """Per-metric aggregate over the replications."""
        return {
            name: MetricSummary.from_samples(
                self.samples(name), confidence, failed=len(self.failures)
            )
            for name in self.metric_names()
        }


@dataclass
class CampaignResult:
    """Outcome of a campaign run.

    ``executor_name`` / ``executor_stats`` record which back-end executed the
    run and its fault-tolerance accounting (retries, timeouts, respawns,
    speculative re-issues, quarantines — all zero for the serial and pool
    executors).  Sequential-stopping campaigns additionally record the
    realised per-point replication counts (``realised_replications``), the
    number of issuance waves and the stopping rule (``ci_target`` /
    ``ci_metric``); fixed-count campaigns leave them at their defaults.
    """

    name: str
    root_seed: int
    replications: int
    points: List[PointResult]
    reused_replications: int = 0
    elapsed_s: float = 0.0
    executor_name: str = "serial"
    executor_stats: Dict[str, int] = field(default_factory=dict)
    seed_groups: List[int] = field(default_factory=list)
    antithetic: bool = False
    realised_replications: Optional[List[int]] = None
    waves: int = 1
    ci_target: Optional[float] = None
    ci_metric: Optional[str] = None

    @property
    def completed_replications(self) -> int:
        """Total number of completed replications across all points."""
        return sum(len(p.replications) for p in self.points)

    @property
    def failed_replications(self) -> int:
        """Total number of quarantined replications across all points."""
        return sum(len(p.failures) for p in self.points)

    def degraded_points(self) -> List[PointResult]:
        """Points that lost at least one replication to quarantine."""
        return [point for point in self.points if point.failures]

    def summaries(self, confidence: float = 0.95) -> List[Dict[str, MetricSummary]]:
        """Per-point summaries in grid order."""
        return [point.summary(confidence) for point in self.points]

    def compare_points(
        self, index_a: int, index_b: int, confidence: float = 0.95
    ) -> Dict[str, DeltaSummary]:
        """Per-metric paired deltas (point ``a`` minus point ``b``) under CRN.

        The two points must share a seed group: replication ``r`` of either
        point then consumed the *same* random streams, so the differences
        ``a_r - b_r`` are genuinely paired and their paired-t interval is
        (under the positive correlation CRN induces) strictly tighter than
        the Welch interval on the same samples.  Pairs where either side is
        missing (quarantined) or non-finite are dropped and counted in
        ``non_finite``; in antithetic campaigns the pairing unit is the
        antithetic pair average.
        """
        point_a = self.points[index_a]
        point_b = self.points[index_b]
        if self.seed_groups:
            group_a = self.seed_groups[index_a]
            group_b = self.seed_groups[index_b]
            if group_a != group_b:
                raise ValueError(
                    f"points {index_a} and {index_b} are in different seed "
                    f"groups ({group_a} vs {group_b}): their replications "
                    f"drew independent streams, so a paired delta would be "
                    f"meaningless — compare points sharing a seed group, or "
                    f"use the unpaired Welch interval directly"
                )
        names_b = set(point_b.metric_names())
        deltas: Dict[str, DeltaSummary] = {}
        for name in point_a.metric_names():
            if name not in names_b:
                continue
            map_a = point_a.sample_map(name)
            map_b = point_b.sample_map(name)
            common = sorted(set(map_a) & set(map_b))
            arr_a = np.asarray([map_a[key] for key in common], dtype=float)
            arr_b = np.asarray([map_b[key] for key in common], dtype=float)
            finite = np.isfinite(arr_a) & np.isfinite(arr_b)
            non_finite = int(len(common) - int(finite.sum()))
            arr_a = arr_a[finite]
            arr_b = arr_b[finite]
            if arr_a.size == 0:
                deltas[name] = DeltaSummary(
                    0,
                    math.nan,
                    math.nan,
                    math.nan,
                    math.nan,
                    math.nan,
                    non_finite=non_finite,
                )
                continue
            delta, half = paired_confidence_interval(arr_a, arr_b, confidence)
            _, unpaired_half = unpaired_confidence_interval(
                arr_a, arr_b, confidence
            )
            deltas[name] = DeltaSummary(
                count=int(arr_a.size),
                mean_a=float(arr_a.mean()),
                mean_b=float(arr_b.mean()),
                delta=delta,
                ci_half_width=half,
                unpaired_ci_half_width=unpaired_half,
                non_finite=non_finite,
            )
        return deltas


# ---------------------------------------------------------------------------
# Worker entry point (module level so it pickles by reference)
# ---------------------------------------------------------------------------
def _execute_task(payload) -> MetricDict:
    """Run one replication; the executing process may be anywhere.

    ``payload`` is ``(runner, params, root_seed, point_index, replication,
    seed_group, fault_plan, trace_dir, antithetic)``.  In antithetic mode
    the odd replication ``2k + 1`` is executed on the *mirror* of
    replication ``2k``'s seed leaf (same coordinates, marked antithetic), so
    the pair is negatively coupled draw for draw.  The optional fault plan
    fires
    *before* the runner, so an injected fault can fail or delay the attempt
    but can never alter the metrics of a successful one — which is what
    makes chaos runs bit-identical to clean ones.

    When ``trace_dir`` is set, the replication records a per-replication
    event trace to ``<trace_dir>/point<PI>_rep<R>.jsonl``: an ambient
    recorder (:func:`repro.utils.recorder.use_recorder`) wraps the runner
    call so any :class:`~repro.simulation.dynamic.DynamicSystemSimulator`
    the runner builds traces into it automatically.  The sink is atomic
    (write-aside + rename on close), so a speculative duplicate racing on
    the same path publishes one complete file.  Tracing only observes — the
    returned metrics are bit-identical to an untraced run.
    """
    (
        runner,
        params,
        root_seed,
        point_index,
        replication,
        seed_group,
        plan,
        trace_dir,
        antithetic,
    ) = payload
    if plan is not None:
        plan.apply(point_index, replication)
    if antithetic and replication % 2:
        seed = replication_seed(
            root_seed, seed_group, replication - 1, antithetic=True
        )
    else:
        seed = replication_seed(root_seed, seed_group, replication)
    if trace_dir is None:
        metrics = runner(params, seed)
    else:
        path = os.path.join(
            trace_dir, f"point{point_index:03d}_rep{replication:03d}.jsonl"
        )
        with EventRecorder(JsonlSink(path, atomic=True)) as recorder:
            recorder.record(
                "replication_start",
                point_index=point_index,
                replication=replication,
                seed_group=seed_group,
            )
            with use_recorder(recorder):
                metrics = runner(params, seed)
            recorder.record(
                "replication_end",
                point_index=point_index,
                replication=replication,
                num_metrics=len(metrics),
            )
    return {str(key): float(value) for key, value in metrics.items()}


# ---------------------------------------------------------------------------
# Campaign
# ---------------------------------------------------------------------------
class Campaign:
    """A sharded multi-replication Monte-Carlo experiment.

    Parameters
    ----------
    name:
        Campaign identifier (recorded in checkpoints; a checkpoint written by
        a differently shaped campaign is refused).
    runner:
        Module-level callable ``runner(params, seed_sequence) -> dict`` that
        executes one replication and returns scalar metrics.  It must be
        picklable (importable by name) for multi-worker runs, and must draw
        **all** of its randomness from the passed seed sequence.
    points:
        The experiment grid: one params mapping per point.  Params must be
        picklable for multi-worker runs.
    replications:
        Independent replications per point.
    root_seed:
        Root of the deterministic seed tree.
    metadata:
        Free-form information carried to the reducers (titles, thresholds).
    seed_groups:
        Optional per-point seed-group indices (same length as ``points``).
        Points sharing a group draw the **same** replication streams — the
        common-random-numbers design the paper-style experiments use to make
        scheduler comparisons paired (same drops, same traffic sample paths).
        ``None`` gives every point its own group (fully independent points).
    antithetic:
        Pair replication ``2k`` with the antithetic (mirrored) stream as
        replication ``2k + 1`` and average within pairs before summarising.
        Requires an even replication count and a runner that draws through
        :func:`rng_for_leaf` (runners collapsing the leaf with
        :func:`seed_sequence_to_int` fail loudly).  Only helps metrics that
        respond monotonically to the underlying uniforms.
    ci_target / ci_metric / max_replications / wave_size:
        Sequential stopping (see :meth:`configure_sequential`): run
        replication waves until the ``confidence``-level CI half-width of
        ``ci_metric`` is at most ``ci_target`` at every point (or
        ``max_replications`` is reached).
    """

    def __init__(
        self,
        name: str,
        runner: Runner,
        points: Sequence[Mapping[str, object]],
        replications: int = 1,
        root_seed: int = 0,
        metadata: Optional[Mapping[str, object]] = None,
        seed_groups: Optional[Sequence[int]] = None,
        antithetic: bool = False,
        ci_target: Optional[float] = None,
        ci_metric: Optional[str] = None,
        max_replications: Optional[int] = None,
        wave_size: Optional[int] = None,
    ) -> None:
        if not points:
            raise ValueError("points must not be empty")
        if replications < 1:
            raise ValueError("replications must be at least 1")
        self.name = str(name)
        self.runner = runner
        self.points = [dict(p) for p in points]
        self.replications = int(replications)
        self.root_seed = int(root_seed)
        self.metadata = dict(metadata or {})
        if seed_groups is None:
            self.seed_groups = list(range(len(self.points)))
        else:
            if len(seed_groups) != len(self.points):
                raise ValueError("seed_groups must match points in length")
            self.seed_groups = [int(g) for g in seed_groups]
        self.antithetic = bool(antithetic)
        if self.antithetic and self.replications % 2:
            raise ValueError(
                "antithetic campaigns need an even replication count "
                "(replication 2k+1 is the mirror of replication 2k)"
            )
        self.ci_target: Optional[float] = None
        self.ci_metric: Optional[str] = None
        self.max_replications: Optional[int] = None
        self.wave_size: Optional[int] = None
        if ci_target is not None:
            self.configure_sequential(
                ci_target, ci_metric, max_replications, wave_size
            )

    def configure_sequential(
        self,
        ci_target: Optional[float],
        ci_metric: Optional[str],
        max_replications: Optional[int] = None,
        wave_size: Optional[int] = None,
    ) -> "Campaign":
        """Enable sequential stopping: replicate until the CI is tight enough.

        Instead of a fixed replication count, :meth:`run` issues tasks in
        waves: the initial ``replications`` first, then ``wave_size`` more
        per point (default: another ``replications``) until the
        ``ci_target`` half-width of ``ci_metric`` is met at that point or
        its realised count reaches ``max_replications`` (default
        ``8 * replications``).  The stopping decisions are deterministic
        functions of the completed samples, so aggregates stay bit-identical
        for any worker count or executor, and a resumed run replays the
        same wave schedule from the checkpoint without recomputing anything.

        ``ci_target=None`` is a no-op (keeps the fixed-count behaviour),
        letting run wrappers pass CLI flags through unconditionally.
        """
        if ci_target is None:
            return self
        if ci_target <= 0.0:
            raise ValueError("ci_target must be positive")
        if not ci_metric:
            raise ValueError("ci_target requires ci_metric (the watched metric)")
        self.ci_target = float(ci_target)
        self.ci_metric = str(ci_metric)
        self.max_replications = (
            int(max_replications)
            if max_replications is not None
            else 8 * self.replications
        )
        self.wave_size = (
            int(wave_size) if wave_size is not None else self.replications
        )
        if self.max_replications < self.replications:
            raise ValueError("max_replications must be at least replications")
        if self.wave_size < 1:
            raise ValueError("wave_size must be at least 1")
        if self.antithetic and (self.wave_size % 2 or self.max_replications % 2):
            raise ValueError(
                "antithetic campaigns need even wave_size and max_replications"
            )
        return self

    # -- checkpointing -----------------------------------------------------------
    @staticmethod
    def _stable_repr(value: object) -> str:
        """A repr of a point param that survives process restarts.

        ``repr`` of a function or bound method embeds a memory address, which
        would change the fingerprint on every run and make checkpoints of
        campaigns with callable scheduler specs unresumable — so callables
        are identified by their qualified name instead.
        """
        if callable(value):
            module = getattr(value, "__module__", "")
            name = getattr(value, "__qualname__", None) or getattr(
                value, "__name__", None
            )
            if name is not None:
                return f"<callable {module}.{name}>"
            return f"<callable {type(value).__qualname__}>"
        return repr(value)

    def fingerprint(self) -> str:
        """Stable digest of the campaign shape (grid, replications, seed).

        The sequential-stopping parameters are deliberately *excluded*: the
        wave schedule is a pure function of the completed samples, so a
        checkpoint from a fixed-count run resumes cleanly into a sequential
        one (and vice versa) — the task keys are the same coordinates.
        ``antithetic`` *is* included (only when on, keeping historic
        fingerprints valid): it changes what every odd replication computes.
        """
        parts = [
            self.name,
            str(self.root_seed),
            str(self.replications),
            str(len(self.points)),
            repr(self.seed_groups),
        ]
        if self.antithetic:
            parts.append("antithetic=True")
        for point in self.points:
            parts.append(
                repr(sorted((str(k), self._stable_repr(v)) for k, v in point.items()))
            )
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]

    def _load_checkpoint(self, path: str) -> Dict[str, MetricDict]:
        if not os.path.exists(path):
            return {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("checkpoint root is not a JSON object")
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            # A checkpoint truncated by a crash mid-write (or otherwise
            # mangled) must not kill the resume: quarantine the file for
            # post-mortem and recompute from scratch.
            quarantine = f"{path}.corrupt"
            os.replace(path, quarantine)
            warnings.warn(
                f"checkpoint {path!r} is corrupt ({exc}); moved it to "
                f"{quarantine!r} and starting fresh",
                RuntimeWarning,
                stacklevel=2,
            )
            return {}
        if payload.get("fingerprint") != self.fingerprint():
            raise ValueError(
                f"checkpoint {path!r} was written by a different campaign "
                f"(name/grid/replications/root seed changed); refusing to resume"
            )
        return {str(k): dict(v) for k, v in payload.get("completed", {}).items()}

    def _write_checkpoint(
        self, path: str, completed: Mapping[str, MetricDict], fingerprint: str
    ) -> None:
        payload = {
            "campaign": self.name,
            "root_seed": self.root_seed,
            "replications": self.replications,
            "num_points": len(self.points),
            "fingerprint": fingerprint,
            "completed": completed,
        }
        # fsync before the atomic rename: without it a power loss can
        # publish an empty/partial file from the page cache, which the
        # corrupt-checkpoint quarantine would then discard — losing
        # *completed* work.
        _atomic_write(path, json.dumps(payload))

    # -- execution ---------------------------------------------------------------
    def tasks(self) -> List[Tuple[int, int]]:
        """All ``(point_index, replication)`` coordinates of the campaign."""
        return [
            (point_index, replication)
            for point_index in range(len(self.points))
            for replication in range(self.replications)
        ]

    def _stopping_half_width(
        self, point_index: int, completed: Mapping[str, MetricDict], realised: int
    ) -> float:
        """CI half-width of the stopping metric over one point's samples.

        A deterministic function of the completed replications below
        ``realised`` — the property that makes the wave schedule replayable
        on resume.  Returns ``nan`` (never "converged") with fewer than two
        finite samples.
        """
        values: Dict[int, float] = {}
        available: set = set()
        have_completed = False
        for rep in range(realised):
            metrics = completed.get(f"{point_index}/{rep}")
            if metrics is None:
                continue
            have_completed = True
            available.update(metrics)
            if self.ci_metric in metrics:
                values[rep] = float(metrics[self.ci_metric])
        if have_completed and not values:
            raise ValueError(
                f"ci_metric {self.ci_metric!r} is not among the runner's "
                f"metrics; available: {sorted(available)}"
            )
        if self.antithetic:
            samples = [
                0.5 * (values[rep] + values[rep + 1])
                for rep in range(0, realised - 1, 2)
                if rep in values and rep + 1 in values
            ]
        else:
            samples = [values[rep] for rep in sorted(values)]
        samples = [sample for sample in samples if math.isfinite(sample)]
        if len(samples) < 2:
            return math.nan
        return confidence_interval(samples)[1]

    def _resolve_executor(
        self, executor: Optional[ExecutorSpec], workers: int
    ) -> Executor:
        """Turn an executor spec (name, instance or ``None``) into an instance."""
        if executor is None:
            backend: Executor = (
                SerialExecutor() if workers == 1 else PoolExecutor(workers)
            )
        elif isinstance(executor, str):
            if executor == "serial":
                backend = SerialExecutor()
            elif executor == "pool":
                backend = PoolExecutor(max(workers, 1))
            elif executor == "resilient":
                backend = ResilientExecutor(workers=max(workers, 1))
            elif executor == "swarm":
                backend = SwarmExecutor(workers=max(workers, 1))
            else:
                raise ValueError(
                    f"unknown executor {executor!r}; expected 'serial', 'pool', "
                    f"'resilient', 'swarm' or an Executor instance"
                )
        else:
            backend = executor
        # backoff_seed=None means "derive from the campaign root seed":
        # retry jitter stays reproducible per campaign while distinct
        # campaigns de-synchronise their retry storms.
        if getattr(backend, "backoff_seed", 0) is None:
            backend.backoff_seed = self.root_seed
        return backend

    def run(
        self,
        workers: int = 1,
        checkpoint_path: Optional[str] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        executor: Optional[ExecutorSpec] = None,
        fault_plan=None,
        hooks: Optional[SimHooks] = None,
        trace_dir: Optional[str] = None,
    ) -> CampaignResult:
        """Execute the campaign and aggregate the results.

        Parameters
        ----------
        workers:
            Worker processes; ``1`` runs in-process (no pool, no pickling
            requirements).  Any value yields bit-identical aggregates for a
            fixed root seed — sharding only changes wall-clock time.
        checkpoint_path:
            Checkpoint location.  Every completed replication is durably
            appended (fsync'd) to the write-ahead journal ``<path>.wal``,
            which is periodically — and on exit — compacted into the
            historic JSON format at ``<path>``; an existing checkpoint of
            the same campaign is resumed (completed replications are loaded
            from JSON ∪ WAL, not recomputed), a torn WAL tail from a
            mid-append kill is dropped, and a corrupt JSON is quarantined to
            ``<path>.corrupt`` instead of crashing.
        progress:
            Optional ``progress(done, total)`` callback.
        executor:
            Execution back-end: an :class:`~repro.experiments.executors.
            Executor` instance or one of the names ``"serial"``, ``"pool"``,
            ``"resilient"``, ``"swarm"``.  ``None`` keeps the historic
            behaviour (in-process at ``workers=1``, pool above).  All
            executors produce bit-identical aggregates; the resilient one
            survives worker crashes, hangs and poisoned tasks, and the swarm
            one extends that over independently spawned (or remote) worker
            processes with leases, heartbeats and work stealing.
        fault_plan:
            Optional :class:`~repro.experiments.faults.FaultPlan` injected
            into the task payloads (chaos testing).
        hooks:
            Optional :class:`repro.utils.hooks.SimHooks` observer of the
            executor's task lifecycle (issue / completion / retry /
            quarantine).
        trace_dir:
            When set, the campaign writes structured telemetry under this
            directory (created if needed): ``campaign.jsonl`` with the
            campaign envelope and every task-lifecycle event, plus one
            ``point<PI>_rep<R>.jsonl`` per replication carrying the events
            of that replication's simulation (see
            :mod:`repro.utils.recorder`).  Tracing only observes; the
            aggregated results are bit-identical to an untraced run.

        A SIGINT/SIGTERM received while running flushes a final checkpoint,
        terminates the workers promptly and re-raises ``KeyboardInterrupt``,
        so a checkpointed campaign killed from the outside loses no completed
        replication and leaves no orphan processes.
        """
        if workers < 1:
            raise ValueError("workers must be at least 1")
        backend = self._resolve_executor(executor, workers)
        campaign_recorder: Optional[EventRecorder] = None
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            campaign_recorder = EventRecorder(
                JsonlSink(os.path.join(trace_dir, "campaign.jsonl"))
            )
            campaign_recorder.record(
                "campaign_start",
                campaign=self.name,
                root_seed=self.root_seed,
                num_points=len(self.points),
                replications=self.replications,
                executor=backend.name,
            )
            hooks = resolve_hooks(hooks, RecorderHooks(campaign_recorder))
        backend.hooks = resolve_hooks(backend.hooks, hooks)
        started = time.perf_counter()
        # Hashing the whole grid is O(points); do it once per run, not once
        # per checkpoint write.
        fingerprint = self.fingerprint() if checkpoint_path else ""
        completed: Dict[str, MetricDict] = {}
        journal: Optional[CheckpointJournal] = None
        if checkpoint_path:
            # Durability is journal-shaped: each completed replication is one
            # fsync'd O(1) append to <path>.wal; the historic JSON format is
            # produced by compaction (periodic and on close), so a
            # coordinator killed at any byte offset resumes without losing
            # completed work — and without rewriting the whole checkpoint
            # per result.
            journal = CheckpointJournal(
                checkpoint_path,
                fingerprint,
                meta={
                    "campaign": self.name,
                    "root_seed": self.root_seed,
                    "replications": self.replications,
                    "num_points": len(self.points),
                },
            )
            completed = journal.load()
        reused = len(completed)

        sequential = self.ci_target is not None
        realised = [self.replications] * len(self.points)
        total = sum(realised)
        done = len(completed)
        failed: Dict[str, str] = {}

        def wave_tasks() -> List[TaskSpec]:
            return [
                TaskSpec(
                    point_index=pi,
                    replication=rep,
                    payload=(
                        self.runner,
                        self.points[pi],
                        self.root_seed,
                        pi,
                        rep,
                        self.seed_groups[pi],
                        fault_plan,
                        trace_dir,
                        self.antithetic,
                    ),
                )
                for pi in range(len(self.points))
                for rep in range(realised[pi])
                if f"{pi}/{rep}" not in completed and f"{pi}/{rep}" not in failed
            ]

        def store(key: str, metrics: MetricDict) -> None:
            nonlocal done
            completed[key] = metrics
            done += 1
            if journal is not None:
                journal.append(key, metrics)
            if progress is not None:
                progress(done, total)

        owner_pid = os.getpid()

        def raise_interrupt(signum, frame):  # pragma: no cover - signal path
            # Forked workers inherit this handler; in them the signal must
            # keep its default meaning (die quietly), not unwind the worker
            # loop with a spurious traceback.
            if os.getpid() != owner_pid:
                signal.signal(signum, signal.SIG_DFL)
                os.kill(os.getpid(), signum)
                return
            raise KeyboardInterrupt(f"campaign interrupted by signal {signum}")

        previous_handlers = {}
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous_handlers[signum] = signal.signal(signum, raise_interrupt)
                except (ValueError, OSError):  # pragma: no cover - exotic host
                    pass
        # Sequential stopping issues tasks in waves; keep the executor's
        # workers alive between them instead of tearing the fleet down and
        # respawning it every wave.
        backend.keep_alive = sequential
        waves = 0
        try:
            while True:
                waves += 1
                for outcome in backend.run(_execute_task, wave_tasks()):
                    if outcome.metrics is not None:
                        store(outcome.task.key, outcome.metrics)
                    else:
                        failed[outcome.task.key] = outcome.error or "unknown failure"
                if not sequential:
                    break
                # The stopping rule between waves: grow every point whose CI
                # is still too wide.  Decisions depend only on the completed
                # samples, so any executor/worker topology — and any resumed
                # run — walks the exact same wave schedule.
                grew = False
                for pi in range(len(self.points)):
                    if realised[pi] >= self.max_replications:
                        continue
                    half = self._stopping_half_width(pi, completed, realised[pi])
                    if half <= self.ci_target:  # nan compares False: keep going
                        continue
                    realised[pi] = min(
                        self.max_replications, realised[pi] + self.wave_size
                    )
                    grew = True
                if journal is not None:
                    journal.append_note(
                        {
                            "wave": waves,
                            "realised": list(realised),
                            "converged": not grew,
                        }
                    )
                if not grew:
                    break
                total = sum(realised)
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
            # Prompt worker teardown (idempotent; crucial on the interrupt
            # path, where the executor's generator may be left suspended).
            backend.keep_alive = False
            backend.stop()
            if journal is not None:
                # Compacts the WAL into the historic JSON checkpoint layout
                # and removes the (now redundant) WAL — on the interrupt path
                # too, so SIGINT/SIGTERM leave a complete JSON behind.
                journal.close()
            if campaign_recorder is not None:
                campaign_recorder.record(
                    "campaign_end",
                    completed=len(completed),
                    failed=len(failed),
                    executor_stats=backend.stats.as_dict(),
                )
                campaign_recorder.close()

        points = [
            PointResult(
                index=index,
                params=dict(params),
                antithetic=self.antithetic,
                seed_group=self.seed_groups[index],
            )
            for index, params in enumerate(self.points)
        ]
        for key, metrics in completed.items():
            point_index, replication = (int(part) for part in key.split("/"))
            points[point_index].replications[replication] = metrics
        for key, reason in failed.items():
            point_index, replication = (int(part) for part in key.split("/"))
            points[point_index].failures[replication] = reason
        return CampaignResult(
            name=self.name,
            root_seed=self.root_seed,
            replications=self.replications,
            points=points,
            reused_replications=reused,
            elapsed_s=time.perf_counter() - started,
            executor_name=backend.name,
            executor_stats=backend.stats.as_dict(),
            seed_groups=list(self.seed_groups),
            antithetic=self.antithetic,
            realised_replications=list(realised) if sequential else None,
            waves=waves,
            ci_target=self.ci_target,
            ci_metric=self.ci_metric,
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv=None) -> int:  # pragma: no cover - CLI entry point
    """Run one of the ported experiments as a sharded campaign.

    Example (the CI smoke grid)::

        python -m repro.experiments --experiment coverage \\
            --loads 4 8 --schedulers "JABA-SD(J1)" FCFS \\
            --num-drops 2 --replications 1 --workers 2

    Schedulers can also come from the component registry —
    ``--scheduler proportional-fair --scheduler jaba-sd:objective=J2`` — and a
    whole scenario from a declarative TOML/JSON spec file via
    ``--scenario-spec`` (see :mod:`repro.registry`).  ``python -m
    repro.experiments report [...]`` forwards to the consolidated report CLI
    (:mod:`repro.experiments.report`).
    """
    import argparse
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "report":
        from repro.experiments.report import main as report_main

        return report_main(argv[1:])

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--experiment",
        choices=["coverage", "delay", "capacity", "objectives"],
        default="coverage",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--replications", type=int, default=1,
                        help="replications (seeds) per grid point")
    parser.add_argument("--loads", type=int, nargs="+", default=None,
                        help="data users per cell swept by the grid")
    parser.add_argument("--schedulers", nargs="+", default=None,
                        help="scheduler labels (e.g. 'JABA-SD(J1)' FCFS)")
    parser.add_argument("--scheduler", action="append", default=None,
                        metavar="NAME[:k=v,...]", dest="scheduler_specs",
                        help="add one registered scheduler to the grid, with "
                             "optional kwargs (e.g. 'proportional-fair', "
                             "'jaba-sd:objective=J2,solver=greedy'); "
                             "repeatable, combines with --schedulers")
    parser.add_argument("--scenario-spec", default=None, metavar="FILE",
                        help="dynamic experiments: build the base scenario "
                             "(and, unless --scheduler/--schedulers override "
                             "it, the policy) from a declarative TOML/JSON "
                             "spec file")
    parser.add_argument("--num-drops", type=int, default=None,
                        help="coverage only: Monte-Carlo drops per replication "
                             "(default 30)")
    parser.add_argument("--duration", type=float, default=None,
                        help="dynamic experiments: simulated seconds per run "
                             "(default 6.0, or the --scenario-spec value)")
    parser.add_argument("--warmup", type=float, default=None,
                        help="dynamic experiments: warm-up seconds per run "
                             "(default 1.0, or the --scenario-spec value)")
    parser.add_argument("--root-seed", type=int, default=None,
                        help="seed-tree root (default: the experiment default)")
    parser.add_argument("--checkpoint", default=None,
                        help="JSON checkpoint path (resumes if it exists)")
    parser.add_argument("--executor",
                        choices=["serial", "pool", "resilient", "swarm"],
                        default=None,
                        help="execution back-end (default: serial at "
                             "--workers 1, pool above; 'resilient' adds "
                             "retries, timeouts and straggler re-issue; "
                             "'swarm' runs a lease-based worker swarm that "
                             "remote workers can join)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="resilient executor only: seconds before a "
                             "replication is killed and re-issued")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="resilient/swarm executors: failed attempts "
                             "re-issued before a task is quarantined "
                             "(default 2)")
    parser.add_argument("--num-workers", type=int, default=None,
                        help="swarm executor only: worker processes the "
                             "coordinator spawns (default: --workers; 0 with "
                             "--swarm-dir waits for external workers)")
    parser.add_argument("--lease-timeout", type=float, default=None,
                        help="swarm executor only: seconds without heartbeat "
                             "or result before a lease is reclaimed and its "
                             "tasks re-issued (default 15)")
    parser.add_argument("--swarm-dir", default=None,
                        help="swarm executor only: shared protocol directory "
                             "so workers on other machines can attach via "
                             "'python -m repro.experiments.worker'")
    parser.add_argument("--trace-dir", default=None,
                        help="record structured telemetry (campaign.jsonl + "
                             "one JSONL trace per replication) under this "
                             "directory")
    parser.add_argument("--ci-target", type=float, default=None,
                        help="sequential stopping: issue replications in "
                             "waves of --replications until the 95%% CI "
                             "half-width of --ci-metric is at most this at "
                             "every grid point (bit-identical for any worker "
                             "count and executor)")
    parser.add_argument("--ci-metric", default=None,
                        help="metric watched by --ci-target (default: the "
                             "experiment's headline metric — 'coverage' for "
                             "--experiment coverage, 'mean_delay_s' "
                             "otherwise)")
    parser.add_argument("--max-replications", type=int, default=None,
                        help="sequential-stopping replication cap per point "
                             "(default: 8x --replications)")
    args = parser.parse_args(argv)

    # Flags that a given experiment would silently drop are rejected instead.
    if args.experiment != "coverage" and args.num_drops is not None:
        parser.error("--num-drops only applies to --experiment coverage")
    if args.experiment == "objectives" and (
        args.loads or args.schedulers or args.scheduler_specs
    ):
        parser.error(
            "--loads/--schedulers/--scheduler do not apply to --experiment "
            "objectives (it sweeps the J2 delay-penalty weight at one load)"
        )
    if args.experiment == "coverage" and args.scenario_spec is not None:
        parser.error(
            "--scenario-spec applies to the dynamic experiments "
            "(delay/capacity/objectives); coverage is snapshot-based"
        )
    if args.task_timeout is not None and args.executor != "resilient":
        parser.error("--task-timeout requires --executor resilient")
    for flag, value in (
        ("--num-workers", args.num_workers),
        ("--lease-timeout", args.lease_timeout),
        ("--swarm-dir", args.swarm_dir),
    ):
        if value is not None and args.executor != "swarm":
            parser.error(f"{flag} requires --executor swarm")
    if args.ci_target is None and (
        args.ci_metric is not None or args.max_replications is not None
    ):
        parser.error("--ci-metric/--max-replications require --ci-target")

    executor = None
    if args.executor == "resilient":
        executor = ResilientExecutor(
            workers=max(args.workers, 1),
            task_timeout_s=args.task_timeout,
            max_retries=args.max_retries,
        )
    elif args.executor == "swarm":
        executor = SwarmExecutor(
            workers=(
                args.num_workers
                if args.num_workers is not None
                else max(args.workers, 1)
            ),
            swarm_dir=args.swarm_dir,
            lease_timeout_s=(
                args.lease_timeout if args.lease_timeout is not None else 15.0
            ),
            max_retries=args.max_retries,
        )
    elif args.executor is not None:
        executor = args.executor

    from dataclasses import replace as dc_replace

    from repro.experiments.capacity import run_capacity
    from repro.experiments.common import paper_scenario, scheduler_from_spec
    from repro.experiments.coverage import run_coverage
    from repro.experiments.delay_vs_load import run_delay_vs_load
    from repro.experiments.objectives_tradeoff import run_objectives_tradeoff
    from repro.registry import RegistryError, build_scenario, load_scenario_spec

    # Every scheduler spec (legacy label or registered name with kwargs) is
    # resolved once up front, so a typo dies with the registry's
    # did-you-mean error instead of inside a worker process.
    labels = list(args.schedulers or []) + list(args.scheduler_specs or [])
    factories = None
    if labels:
        for label in labels:
            try:
                scheduler_from_spec(label)
            except (RegistryError, ValueError) as exc:
                parser.error(str(exc))
        factories = {label: label for label in labels}

    spec_scenario = None
    spec_scheduler_section = None
    if args.scenario_spec is not None:
        try:
            built = build_scenario(load_scenario_spec(args.scenario_spec))
        except (OSError, RegistryError, ValueError) as exc:
            parser.error(f"--scenario-spec {args.scenario_spec}: {exc}")
        spec_scenario = built.scenario
        if "scheduler" in built.spec:
            spec_scheduler_section = built.scheduler_section
    if factories is None and spec_scheduler_section is not None:
        # The spec names a policy: sweep just that one unless the command
        # line adds more.
        name = spec_scheduler_section["name"]
        kwargs = {k: v for k, v in spec_scheduler_section.items() if k != "name"}
        label = name if not kwargs else (
            name + ":" + ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
        )
        factories = {label: spec_scheduler_section}

    common = dict(
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        executor=executor,
        trace_dir=args.trace_dir,
    )
    if args.ci_target is not None:
        default_metric = (
            "coverage" if args.experiment == "coverage" else "mean_delay_s"
        )
        common.update(
            ci_target=args.ci_target,
            ci_metric=args.ci_metric or default_metric,
            max_replications=args.max_replications,
        )
    if args.experiment == "coverage":
        kwargs = dict(
            loads=args.loads,
            num_drops=args.num_drops if args.num_drops is not None else 30,
            num_replications=args.replications,
            scheduler_factories=factories,
            **common,
        )
        if args.root_seed is not None:
            kwargs["seed"] = args.root_seed
        result = run_coverage(**kwargs)
    else:
        if spec_scenario is not None:
            scenario = spec_scenario
            if args.duration is not None:
                scenario = dc_replace(scenario, duration_s=args.duration)
            if args.warmup is not None:
                scenario = dc_replace(scenario, warmup_s=args.warmup)
        else:
            scenario = paper_scenario(
                duration_s=args.duration if args.duration is not None else 6.0,
                warmup_s=args.warmup if args.warmup is not None else 1.0,
            )
        if args.root_seed is not None:
            scenario = scenario.with_seed(args.root_seed)
        if args.experiment == "delay":
            result = run_delay_vs_load(
                loads=args.loads,
                scenario=scenario,
                scheduler_factories=factories,
                num_seeds=args.replications,
                **common,
            )
        elif args.experiment == "capacity":
            result = run_capacity(
                loads=args.loads,
                scenario=scenario,
                scheduler_factories=factories,
                num_seeds=args.replications,
                **common,
            )
        else:
            result = run_objectives_tradeoff(
                scenario=scenario, num_seeds=args.replications, **common
            )
    print(result.to_table())
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
