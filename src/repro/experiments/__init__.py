"""Evaluation harness: regenerates every table and figure of the reproduction.

The paper's own evaluation section defers the numeric results to a companion
technical report, but it states the evaluation methodology (dynamic
simulations with user mobility, power control and soft hand-off) and the
reported metrics (average packet delay, data user capacity, coverage).  Each
module here regenerates one of the experiments defined in DESIGN.md §3:

========  ==================================================================
ID        Module
========  ==================================================================
F1        :mod:`repro.experiments.phy_throughput`
F2 / F3   :mod:`repro.experiments.delay_vs_load`
F4        :mod:`repro.experiments.coverage`
F5        :mod:`repro.experiments.objectives_tradeoff`
F6        :mod:`repro.experiments.solver_ablation`
T1        :mod:`repro.experiments.capacity`
T2        :mod:`repro.experiments.delay_vs_load` (admission statistics)
T3        :mod:`repro.experiments.handoff_ablation`
========  ==================================================================

Every module exposes a ``run_*`` function returning an
:class:`~repro.experiments.common.ExperimentResult` and a ``main()`` that
prints the paper-style table; the corresponding pytest-benchmark lives in
``benchmarks/``.
"""

from repro.experiments.campaign import (
    AntitheticSeedSequence,
    Campaign,
    CampaignResult,
    DeltaSummary,
    MetricSummary,
    is_antithetic,
    replication_seed,
    rng_for_leaf,
    seed_sequence_to_int,
)
from repro.experiments.common import (
    ExperimentResult,
    default_scheduler_factories,
    default_scheduler_specs,
    flag_degraded,
    paper_scenario,
    paper_traffic,
    scheduler_from_spec,
)
from repro.experiments.executors import (
    PoolExecutor,
    ResilientExecutor,
    SerialExecutor,
)
from repro.experiments.faults import (
    FaultPlan,
    FaultSpec,
    MessageFaultPlan,
    MessageFaults,
)
from repro.experiments.journal import CheckpointJournal
from repro.experiments.swarm import SwarmExecutor
from repro.experiments.phy_throughput import run_phy_throughput
from repro.experiments.compare import compare_schedulers, run_scheduler_comparison
from repro.experiments.delay_vs_load import run_delay_vs_load, run_admission_statistics
from repro.experiments.capacity import run_capacity
from repro.experiments.coverage import run_coverage
from repro.experiments.objectives_tradeoff import run_objectives_tradeoff
from repro.experiments.solver_ablation import run_solver_ablation
from repro.experiments.handoff_ablation import run_handoff_ablation

__all__ = [
    "AntitheticSeedSequence",
    "Campaign",
    "CampaignResult",
    "DeltaSummary",
    "MetricSummary",
    "is_antithetic",
    "replication_seed",
    "rng_for_leaf",
    "seed_sequence_to_int",
    "scheduler_from_spec",
    "ExperimentResult",
    "flag_degraded",
    "SerialExecutor",
    "PoolExecutor",
    "ResilientExecutor",
    "SwarmExecutor",
    "CheckpointJournal",
    "FaultPlan",
    "FaultSpec",
    "MessageFaults",
    "MessageFaultPlan",
    "default_scheduler_factories",
    "default_scheduler_specs",
    "paper_scenario",
    "paper_traffic",
    "run_phy_throughput",
    "compare_schedulers",
    "run_scheduler_comparison",
    "run_delay_vs_load",
    "run_admission_statistics",
    "run_capacity",
    "run_coverage",
    "run_objectives_tradeoff",
    "run_solver_ablation",
    "run_handoff_ablation",
]
