"""Experiment T1 — data user capacity at a delay target.

"Data user capacity" is the largest number of high-speed data users per cell
for which the average packet-call delay stays below a target.  The experiment
walks the same load axis as F2/F3 and, per scheduler, reports the largest
load meeting the target together with the delays observed at every probed
load (so the capacity estimate can be audited).

Expected shape: JABA-SD supports the most data users per cell, equal-share is
second and FCFS last, mirroring the delay curves.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    SchedulerFactory,
    default_scheduler_factories,
    paper_scenario,
)
from repro.simulation.runner import average_results, run_scenario
from repro.simulation.scenario import ScenarioConfig

__all__ = ["run_capacity", "main"]


def run_capacity(
    delay_target_s: float = 1.0,
    loads: Optional[Sequence[int]] = None,
    scenario: Optional[ScenarioConfig] = None,
    scheduler_factories: Optional[Mapping[str, SchedulerFactory]] = None,
    num_seeds: int = 1,
) -> ExperimentResult:
    """Estimate the per-cell data-user capacity of every scheduler.

    Parameters
    ----------
    delay_target_s:
        Mean packet-call delay that still counts as acceptable service.
    loads:
        Increasing data-user populations probed (default 6, 12, 18, 24, 30).
    scenario / scheduler_factories / num_seeds:
        As in :func:`repro.experiments.delay_vs_load.run_delay_vs_load`.
    """
    if delay_target_s <= 0.0:
        raise ValueError("delay_target_s must be positive")
    loads = sorted(loads) if loads is not None else [6, 12, 18, 24, 30]
    scenario = scenario if scenario is not None else paper_scenario()
    factories = dict(scheduler_factories or default_scheduler_factories())

    result = ExperimentResult(
        experiment_id="T1",
        title=(
            f"Data user capacity per cell (largest load with mean packet delay "
            f"<= {delay_target_s:g} s)"
        ),
    )
    for label, factory in factories.items():
        capacity = 0
        probed = {}
        for load in loads:
            runs = run_scenario(scenario.with_load(int(load)), factory, num_seeds)
            summary = average_results(runs)
            delay = summary.mean_packet_delay_s
            probed[int(load)] = delay
            if not math.isnan(delay) and delay <= delay_target_s:
                capacity = int(load)
            elif not math.isnan(delay) and delay > delay_target_s:
                # Delays are monotone in load apart from noise; once the
                # target is exceeded there is no need to probe heavier loads.
                break
        record = {"scheduler": label, "capacity_users_per_cell": capacity}
        for load, delay in probed.items():
            record[f"delay@{load}"] = delay
        result.add(**record)
    result.notes = (
        "Capacity = largest probed load whose mean delay met the target; the "
        "delay@<load> columns record the probes used for the estimate."
    )
    return result


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_capacity().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
