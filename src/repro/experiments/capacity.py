"""Experiment T1 — data user capacity at a delay target.

"Data user capacity" is the largest number of high-speed data users per cell
for which the average packet-call delay stays below a target.  The experiment
walks the same load axis as F2/F3 and, per scheduler, reports the largest
load meeting the target together with the delays observed at every probed
load (so the capacity estimate can be audited).

The probing is a :class:`~repro.experiments.campaign.Campaign` over the full
(load × scheduler) grid — replications shard across workers — and the
capacity estimate is a pure reducer over the aggregated delays (the
hand-rolled sequential early-break loop became a reducer-side scan, so the
whole grid parallelises).

Expected shape: JABA-SD supports the most data users per cell, equal-share is
second and FCFS last, mirroring the delay curves.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence

from repro.experiments.campaign import CampaignResult
from repro.experiments.common import ExperimentResult, SchedulerSpec, flag_degraded
from repro.experiments.delay_vs_load import build_delay_campaign
from repro.simulation.scenario import ScenarioConfig

__all__ = ["run_capacity", "main"]


def reduce_capacity(
    campaign_result: CampaignResult, delay_target_s: float
) -> ExperimentResult:
    """Scan the aggregated delay grid for each scheduler's capacity."""
    result = ExperimentResult(
        experiment_id="T1",
        title=(
            f"Data user capacity per cell (largest load with mean packet delay "
            f"<= {delay_target_s:g} s; {campaign_result.replications} seed "
            f"replications per probe)"
        ),
    )
    by_scheduler: Dict[str, Dict[int, Dict[str, float]]] = {}
    for point in campaign_result.points:
        summary = point.summary()
        delay = summary["mean_delay_s"]
        by_scheduler.setdefault(str(point.params["scheduler"]), {})[
            int(point.params["load"])
        ] = {"delay": delay.mean, "ci": delay.ci_half_width, "n": delay.count}
    for label, probes in by_scheduler.items():
        capacity = 0
        record: Dict[str, object] = {"scheduler": label}
        n_seeds = 0
        for load in sorted(probes):
            probe = probes[load]
            delay = probe["delay"]
            record[f"delay@{load}"] = delay
            record[f"delay_ci@{load}"] = probe["ci"]
            n_seeds = max(n_seeds, int(probe["n"]))
            if not math.isnan(delay) and delay <= delay_target_s:
                capacity = load
            elif not math.isnan(delay) and delay > delay_target_s:
                # Delays are monotone in load apart from noise; heavier
                # probes past the first target violation do not inform the
                # capacity estimate (they were still run — the grid is
                # declarative — but are omitted from the audit columns).
                break
        record["capacity_users_per_cell"] = capacity
        record["n_seeds"] = n_seeds
        result.add(**record)
    result.notes = (
        "Capacity = largest probed load whose mean delay met the target; the "
        "delay@<load> / delay_ci@<load> columns record the probes (mean and "
        "95% CI half-width over n_seeds replications) used for the estimate."
    )
    return flag_degraded(result, campaign_result)


def run_capacity(
    delay_target_s: float = 1.0,
    loads: Optional[Sequence[int]] = None,
    scenario: Optional[ScenarioConfig] = None,
    scheduler_factories: Optional[Mapping[str, SchedulerSpec]] = None,
    num_seeds: int = 1,
    workers: int = 1,
    checkpoint_path: Optional[str] = None,
    executor=None,
    trace_dir: Optional[str] = None,
    ci_target: Optional[float] = None,
    ci_metric: Optional[str] = None,
    max_replications: Optional[int] = None,
) -> ExperimentResult:
    """Estimate the per-cell data-user capacity of every scheduler.

    Parameters
    ----------
    delay_target_s:
        Mean packet-call delay that still counts as acceptable service.
    loads:
        Increasing data-user populations probed (default 6, 12, 18, 24, 30).
    scenario / scheduler_factories / num_seeds / workers / checkpoint_path /
    executor / trace_dir / ci_target / ci_metric / max_replications:
        As in :func:`repro.experiments.delay_vs_load.run_delay_vs_load`
        (sequential stopping watches ``mean_delay_s`` by default — the metric
        the capacity scan thresholds).
    """
    if delay_target_s <= 0.0:
        raise ValueError("delay_target_s must be positive")
    loads = sorted(loads) if loads is not None else [6, 12, 18, 24, 30]
    campaign = build_delay_campaign(
        loads=loads,
        scenario=scenario,
        scheduler_factories=scheduler_factories,
        num_seeds=num_seeds,
    )
    campaign.name = "T1-capacity"
    campaign.configure_sequential(
        ci_target,
        ci_metric if ci_metric is not None else "mean_delay_s",
        max_replications=max_replications,
    )
    outcome = campaign.run(
        workers=workers,
        checkpoint_path=checkpoint_path,
        executor=executor,
        trace_dir=trace_dir,
    )
    return reduce_capacity(outcome, delay_target_s)


def main() -> None:  # pragma: no cover - CLI entry point
    print(run_capacity().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
