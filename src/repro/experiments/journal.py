"""Crash-consistent checkpoint journal: compacted JSON + append-only WAL.

The campaign engine checkpoints after *every* completed replication.  The
historic implementation rewrote the whole JSON checkpoint each time, which
has two failure modes at scale:

* the rewrite is O(completed) per result, so a long campaign spends
  quadratic time serialising its own history;
* a crash (power loss, SIGKILL) in the window between truncating/creating
  the temp file and the atomic rename — or an un-fsynced rename picked up
  by a dirty page-cache loss — can publish an empty or partial file, which
  the corrupt-checkpoint quarantine then discards, losing *completed* work.

:class:`CheckpointJournal` replaces that with the classic write-ahead-log
shape:

* ``<path>`` stays the compacted JSON checkpoint in the historic format
  (``{"fingerprint": ..., "completed": {...}}``) — readers and resume
  tooling keep working unchanged;
* ``<path>.wal`` is an append-only journal: one fingerprinted line per
  completed replication, ``crc32<space>json-body``, flushed **and
  fsync'd** before :meth:`append` returns.  A coordinator killed at any
  byte offset leaves at most one torn tail line, which replay detects (bad
  CRC / missing newline) and drops;
* :meth:`compact` folds the WAL into the JSON checkpoint atomically
  (write temp → flush → **fsync** → rename → fsync directory) and then
  resets the WAL the same way.  A crash between the two steps merely
  leaves WAL records that duplicate JSON entries — replay is idempotent
  (dict union), so resume is correct from every intermediate state;
* :meth:`load` reads the JSON (quarantining a corrupt file to
  ``<path>.corrupt`` exactly like the historic loader), replays the valid
  WAL prefix on top, and truncates any torn tail so subsequent appends
  start on a clean line boundary.

Every WAL starts with a header line carrying the campaign fingerprint; a
WAL written by a differently shaped campaign is refused, mirroring the
JSON fingerprint check.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from typing import Dict, List, Optional, Tuple

__all__ = ["CheckpointJournal"]

MetricDict = Dict[str, float]

#: Journal format version stamped into the WAL header line.
WAL_VERSION = 1


def _fsync_dir(path: str) -> None:
    """fsync the directory containing ``path`` (durability of renames)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - directory fsync unsupported
        pass
    finally:
        os.close(fd)


def _atomic_write(path: str, data: str) -> None:
    """Publish ``data`` at ``path`` durably: temp → flush → fsync → rename."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path)


def _encode_line(body: str) -> str:
    """One WAL line: ``crc32-hex<space>body``; the CRC covers the body."""
    return f"{zlib.crc32(body.encode('utf-8')):08x} {body}\n"


def _decode_line(line: bytes) -> Optional[dict]:
    """Decode one complete WAL line; ``None`` if torn or corrupt."""
    if not line.endswith(b"\n"):
        return None  # torn tail: the write never completed
    try:
        text = line.decode("utf-8")
        crc_hex, body = text[:-1].split(" ", 1)
        if int(crc_hex, 16) != zlib.crc32(body.encode("utf-8")):
            return None
        payload = json.loads(body)
    except (ValueError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


class CheckpointJournal:
    """Durable ``(key -> metrics)`` store behind the campaign checkpoint.

    Parameters
    ----------
    path:
        The JSON checkpoint path (the WAL lives at ``<path>.wal``).
    fingerprint:
        Campaign shape digest; a checkpoint or WAL carrying a different
        fingerprint is refused (``ValueError``) instead of silently mixing
        incompatible replications.
    meta:
        Extra fields recorded in the compacted JSON (campaign name, root
        seed, ...), for human readers — the loader only trusts
        ``fingerprint`` and ``completed``.
    compact_every:
        Fold the WAL into the JSON after this many appended records (the
        WAL stays small and resume replay stays fast).  ``None`` compacts
        only on :meth:`close`.
    fsync:
        Fsync every append (the durability contract).  Disable only for
        throwaway runs where losing the tail on power loss is acceptable.
    """

    def __init__(
        self,
        path: str,
        fingerprint: str,
        meta: Optional[Dict[str, object]] = None,
        compact_every: Optional[int] = 128,
        fsync: bool = True,
    ) -> None:
        if compact_every is not None and compact_every < 1:
            raise ValueError("compact_every must be positive (or None)")
        self.path = str(path)
        self.wal_path = f"{self.path}.wal"
        self.fingerprint = str(fingerprint)
        self.meta = dict(meta or {})
        self.compact_every = compact_every
        self.fsync = bool(fsync)
        self._completed: Dict[str, MetricDict] = {}
        self.notes: List[dict] = []
        self._wal_records = 0  # records in the WAL since the last compaction
        self._handle = None
        self._loaded = False

    # -- load / replay -----------------------------------------------------------
    def _load_json(self) -> Dict[str, MetricDict]:
        if not os.path.exists(self.path):
            return {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("checkpoint root is not a JSON object")
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            # A checkpoint truncated by a crash mid-write (or otherwise
            # mangled) must not kill the resume: quarantine the file for
            # post-mortem and recompute from the WAL / from scratch.
            quarantine = f"{self.path}.corrupt"
            os.replace(self.path, quarantine)
            warnings.warn(
                f"checkpoint {self.path!r} is corrupt ({exc}); moved it to "
                f"{quarantine!r} and starting fresh",
                RuntimeWarning,
                stacklevel=3,
            )
            return {}
        if payload.get("fingerprint") != self.fingerprint:
            raise ValueError(
                f"checkpoint {self.path!r} was written by a different campaign "
                f"(name/grid/replications/root seed changed); refusing to resume"
            )
        notes = payload.get("notes", [])
        if isinstance(notes, list):
            self.notes = [dict(note) for note in notes if isinstance(note, dict)]
        return {str(k): dict(v) for k, v in payload.get("completed", {}).items()}

    def _replay_wal(self) -> Tuple[Dict[str, MetricDict], int]:
        """Replay the valid WAL prefix; return ``(records, valid_bytes)``."""
        records: Dict[str, MetricDict] = {}
        if not os.path.exists(self.wal_path):
            return records, 0
        with open(self.wal_path, "rb") as handle:
            raw = handle.read()
        offset = 0
        first = True
        while offset < len(raw):
            end = raw.find(b"\n", offset)
            line = raw[offset:] if end < 0 else raw[offset : end + 1]
            payload = _decode_line(line)
            if payload is None:
                break  # torn/corrupt line: everything after it is unreliable
            if first:
                first = False
                if payload.get("wal") != WAL_VERSION:
                    break  # unknown header: treat the whole file as foreign
                if payload.get("fingerprint") != self.fingerprint:
                    raise ValueError(
                        f"journal {self.wal_path!r} was written by a different "
                        f"campaign; refusing to resume"
                    )
            elif "key" in payload:
                records[str(payload["key"])] = dict(payload.get("metrics", {}))
            elif "note" in payload and isinstance(payload["note"], dict):
                self.notes.append(dict(payload["note"]))
            offset += len(line)
        return records, offset

    def load(self) -> Dict[str, MetricDict]:
        """Recover the completed map: compacted JSON ∪ valid WAL prefix.

        Also truncates any torn WAL tail (so appends resume on a clean line
        boundary) and opens the WAL for appending.  Must be called exactly
        once, before :meth:`append`.
        """
        if self._loaded:
            raise RuntimeError("load() must be called exactly once")
        self._loaded = True
        self._completed = self._load_json()
        replayed, valid_bytes = self._replay_wal()
        if os.path.exists(self.wal_path):
            size = os.path.getsize(self.wal_path)
            if valid_bytes < size:
                with open(self.wal_path, "rb+") as handle:
                    handle.truncate(valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
        self._completed.update(replayed)
        self._wal_records = len(replayed)
        self._open_wal(create_header=valid_bytes == 0)
        return dict(self._completed)

    # -- append ------------------------------------------------------------------
    def _open_wal(self, create_header: bool) -> None:
        self._handle = open(self.wal_path, "ab")
        if create_header:
            header = {
                "wal": WAL_VERSION,
                "fingerprint": self.fingerprint,
                **{k: v for k, v in self.meta.items() if k != "completed"},
            }
            self._write_line(json.dumps(header, separators=(",", ":")))

    def _write_line(self, body: str) -> None:
        self._handle.write(_encode_line(body).encode("utf-8"))
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def append(self, key: str, metrics: MetricDict) -> None:
        """Durably record one completed replication (O(1), fsync'd)."""
        if not self._loaded:
            raise RuntimeError("call load() before append()")
        self._completed[str(key)] = dict(metrics)
        self._write_line(
            json.dumps({"key": str(key), "metrics": metrics}, separators=(",", ":"))
        )
        self._wal_records += 1
        if self.compact_every is not None and self._wal_records >= self.compact_every:
            self.compact()

    def append_note(self, note: dict) -> None:
        """Durably record one free-form annotation (wave schedules, ...).

        Notes ride the same fsync'd WAL (and survive compaction into the
        JSON under ``"notes"``) but are pure observability: the resume
        loader only trusts ``fingerprint`` and ``completed``, so a foreign
        or missing notes list never changes what gets recomputed.
        """
        if not self._loaded:
            raise RuntimeError("call load() before append_note()")
        self.notes.append(dict(note))
        self._write_line(json.dumps({"note": dict(note)}, separators=(",", ":")))
        self._wal_records += 1
        if self.compact_every is not None and self._wal_records >= self.compact_every:
            self.compact()

    # -- compaction --------------------------------------------------------------
    def compact(self) -> None:
        """Fold the WAL into the JSON checkpoint; both steps are atomic.

        Order matters for crash consistency: the JSON (containing every WAL
        record) is published first, the WAL reset second.  A crash in
        between leaves WAL records that duplicate JSON entries, which
        replay merges idempotently.
        """
        if not self._loaded:
            raise RuntimeError("call load() before compact()")
        payload = {
            **self.meta,
            "fingerprint": self.fingerprint,
            "completed": self._completed,
        }
        if self.notes:
            payload["notes"] = self.notes
        _atomic_write(self.path, json.dumps(payload))
        if self._handle is not None:
            self._handle.close()
        # Reset the WAL to a fresh header (atomically: a crash mid-reset
        # leaves either the old WAL, whose records now duplicate the JSON,
        # or the new header-only WAL — both resume correctly).
        header = {
            "wal": WAL_VERSION,
            "fingerprint": self.fingerprint,
            **{k: v for k, v in self.meta.items() if k != "completed"},
        }
        _atomic_write(self.wal_path, _encode_line(json.dumps(header, separators=(",", ":"))))
        self._wal_records = 0
        self._handle = open(self.wal_path, "ab")

    def close(self) -> None:
        """Compact (when anything was recorded) and release the WAL handle.

        After a clean close the checkpoint is a complete JSON file and the
        WAL is removed — the historic on-disk layout, byte-compatible with
        pre-journal readers.
        """
        if not self._loaded:
            return
        if self._completed or os.path.exists(self.path):
            self.compact()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        # The compacted JSON now owns every record; a header-only WAL is
        # pure noise, so a clean shutdown removes it.
        if os.path.exists(self.wal_path) and self._wal_records == 0:
            os.remove(self.wal_path)
            _fsync_dir(self.wal_path)
        self._loaded = False

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
